"""Schema reasoning over uncertain documents (Theorem 5 in practice).

An uncertain product catalog is checked against a DTD three ways:

* *satisfiability* — could the document be valid in at least one world?
* *validity* — is it valid in every world?
* *restriction* — build a new prob-tree representing only the valid worlds.

The example also runs the paper's SAT reduction, showing how a propositional
formula turns into a DTD-satisfiability question on a prob-tree (which is why
the problem is NP-complete in the number of event variables).

Run with ``python examples/schema_validation.py``.
"""

from repro import CNF, DTD, ChildConstraint, ProbXMLWarehouse, tree
from repro.dtd.probtree_dtd import dtd_restriction_probtree, dtd_satisfiable
from repro.dtd.reductions import sat_to_dtd_satisfiability
from repro.formulas.sat import is_satisfiable


def build_catalog() -> ProbXMLWarehouse:
    warehouse = ProbXMLWarehouse("catalog")
    warehouse.insert("/catalog", tree("product", tree("name", "laptop"), tree("price", "999")), confidence=0.95)
    warehouse.insert("/catalog", tree("product", tree("name", "mouse")), confidence=0.8)
    # A dubious extraction: a second price for the same product.
    warehouse.insert("/catalog/product/name/laptop", tree("discount", "10%"), confidence=0.3)
    return warehouse


def main() -> None:
    warehouse = build_catalog()
    print("Uncertain catalog:")
    print(warehouse.probtree.pretty())
    print()

    schema = DTD(
        {
            "catalog": [ChildConstraint.at_least_one("product")],
            "product": [
                ChildConstraint.exactly("name", 1),
                ChildConstraint.optional("price"),
            ],
            "name": [
                ChildConstraint.optional("laptop"),
                ChildConstraint.optional("mouse"),
            ],
        }
    )

    print("Schema checks:")
    print(f"  satisfiable (some world valid) : {warehouse.dtd_satisfiable(schema)}")
    print(f"  valid       (every world valid): {warehouse.dtd_valid(schema)}")
    print(f"  P(document is valid)           : {warehouse.dtd_probability(schema):.3f}")
    print()

    restricted = dtd_restriction_probtree(warehouse.probtree, schema)
    print("Prob-tree restricted to the valid worlds (lost mass on the bare root):")
    print(restricted.pretty())
    print()

    # --- The Theorem 5 reduction ------------------------------------------------
    theta = CNF.of(["x1", "x2"], ["not x1", "x3"], ["not x2", "not x3"])
    instance, dtd = sat_to_dtd_satisfiability(theta)
    print("Theorem 5 reduction:")
    print(f"  CNF formula            : {theta}")
    print(f"  SAT (propositional)    : {is_satisfiable(theta)}")
    print(f"  DTD-satisfiable instance: {dtd_satisfiable(instance, dtd)}")
    print("  (the two answers always coincide — DTD satisfiability is NP-complete)")


if __name__ == "__main__":
    main()
