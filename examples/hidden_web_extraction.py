"""Hidden-web information extraction — the paper's motivating scenario.

A crawler discovers data sources; imprecise extractors annotate them with
entities (movies, people, …) at various confidence levels; curators sometimes
retract annotations.  The warehouse ingests everything as probabilistic
updates, and analysts query the uncertain result.

The example replays a synthetic extraction stream on both engines — the
factorized prob-tree warehouse and the explicit possible-worlds baseline —
and shows that they agree on every answer while their state sizes diverge
(the conciseness argument of the paper's Section 2 / Proposition 1).

Run with ``python examples/hidden_web_extraction.py``.
"""

from repro import PossibleWorldsEngine, ProbXMLWarehouse
from repro.queries.evaluation import answers_isomorphic
from repro.workloads.scenarios import HiddenWebScenario


def main() -> None:
    scenario = HiddenWebScenario(source_count=3, event_count=14, deletion_ratio=0.15, seed=2007)

    warehouse = ProbXMLWarehouse(scenario.initial_document())
    baseline = PossibleWorldsEngine(scenario.initial_document())

    print("Replaying the extraction stream:")
    for step, event in enumerate(scenario.events(), start=1):
        warehouse.apply(event.update)
        baseline.apply(event.update)
        print(f"  [{step:02d}] {event.description}")
    print()

    print("Engine state after ingestion:")
    print(f"  prob-tree warehouse : {warehouse.document.node_count()} nodes, "
          f"{warehouse.event_count()} events, size {warehouse.size()}")
    print(f"  explicit PW baseline: {baseline.world_count()} worlds, "
          f"total size {baseline.size()} nodes")
    print()

    print("Analyst queries (both engines must agree):")
    for description, query in scenario.queries():
        warehouse_answers = warehouse.query(query)
        baseline_answers = baseline.query(query)
        agree = answers_isomorphic(warehouse_answers, baseline_answers)
        probability = warehouse.probability(query)
        print(f"  {description:35s}  P(non-empty) = {probability:.3f}  "
              f"answers = {len(warehouse_answers):2d}  agree with baseline: {agree}")
    print()

    print("Most probable states of the warehouse:")
    for world, probability in warehouse.most_probable_worlds(3):
        print(f"  p = {probability:.4f}  {world.node_count()} nodes")

    # Rank one query's answers by probability (the conclusion's ranking usage).
    description, query = scenario.queries()[-1]
    print()
    print(f"Top answers for: {description}")
    for answer in warehouse.top_answers(query, count=3):
        print(f"  p = {answer.probability:.3f}  {answer.tree.to_nested()}")


if __name__ == "__main__":
    main()
