"""Quickstart: an uncertain movie catalog as a probabilistic XML warehouse.

Run with ``python examples/quickstart.py`` (after ``pip install -e .`` or with
``PYTHONPATH=src``).  The example walks through the core workflow of the
prob-tree model:

1. start from a certain document,
2. apply probabilistic updates (each carrying the extractor's confidence),
3. query the uncertain document and read answer probabilities,
4. inspect the possible worlds and prune the improbable ones,
5. serialize the warehouse to XML and back.

Engine selection: every probabilistic question (query probability, DTD
satisfaction, thresholding, world ranking) goes through a pluggable
probability engine.  ``ProbXMLWarehouse(doc, engine="formula")`` — the
default — compiles questions into event formulas evaluated by Shannon
expansion with a shared per-document cache and never materializes possible
worlds; ``engine="enumerate"`` is the paper's literal exponential semantics,
kept as a cross-checking oracle.  The same choice is available on the CLI
(``python -m repro.cli probability doc.xml //movie --engine formula``) and on
the underlying functions (``boolean_probability(query, probtree,
engine="enumerate")``).
"""

from repro import ProbXMLWarehouse, probtree_to_xml, tree


def main() -> None:
    # 1. An empty catalog (a certain, single-node document).  The default
    #    engine="formula" answers every probability question below without
    #    enumerating possible worlds.
    warehouse = ProbXMLWarehouse("catalog", engine="formula")

    # 2. Imprecise knowledge arrives as probabilistic insertions.  Each update
    #    introduces an independent event variable holding its confidence.
    warehouse.insert(
        "/catalog",
        tree("movie", tree("title", "Solaris"), tree("year", "1972")),
        confidence=0.9,
    )
    warehouse.insert(
        "/catalog",
        tree("movie", tree("title", "Stalker"), tree("year", "1979")),
        confidence=0.7,
    )
    # A second extractor disagrees about Solaris' year.
    warehouse.insert("/catalog/movie/title/Solaris", tree("note", "festival-cut"), confidence=0.4)

    print("Prob-tree after three probabilistic insertions:")
    print(warehouse.probtree.pretty())
    print()

    # 3. Queries return sub-documents together with their probability.
    print("Movie titles and their probabilities:")
    for answer in warehouse.query("/catalog/movie/title/*"):
        title = [
            answer.tree.label(node)
            for node in answer.tree.nodes()
            if not answer.tree.children(node)
        ][0]
        print(f"  {title:10s}  p = {answer.probability:.2f}")
    print(f"P(catalog has at least one movie) = {warehouse.probability('/catalog/movie'):.3f}")
    print()

    # 4. The possible-world semantics is always available explicitly.
    print("Three most probable worlds:")
    for world, probability in warehouse.most_probable_worlds(3):
        print(f"  p = {probability:.3f}  {world.to_nested()}")
    print()

    # Keep only worlds with probability at least 0.2 (the lost mass moves to
    # a bare-root world, per the paper's Definition 3).
    warehouse.prune_below(0.2)
    print("After pruning worlds below probability 0.2:")
    for world, probability in warehouse.most_probable_worlds(3):
        print(f"  p = {probability:.3f}  {world.to_nested()}")
    print()

    # 5. The warehouse serializes to plain XML.
    print("XML serialization (truncated):")
    print("\n".join(probtree_to_xml(warehouse.probtree).splitlines()[:12]))


if __name__ == "__main__":
    main()
