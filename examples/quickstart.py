"""Quickstart: an uncertain movie warehouse with a session execution context.

Run with ``python examples/quickstart.py`` (after ``pip install -e .`` or with
``PYTHONPATH=src``).  The example walks through the core workflow of the
prob-tree model:

1. start from a certain document,
2. apply probabilistic updates (each carrying the extractor's confidence),
3. query the uncertain document and read answer probabilities,
4. hold several documents in one warehouse and query the whole corpus,
5. inspect the possible worlds, prune the improbable ones, serialize to XML.

**Execution context.**  Every probabilistic question (query probability, DTD
satisfaction, thresholding, world ranking) and every pattern match runs
under an :class:`repro.ExecutionContext` — a session object owning

* the **policy**: ``engine="formula"`` (default; Shannon expansion over
  event formulas, never materializes possible worlds) or ``"enumerate"``
  (the paper's literal exponential semantics, kept as an oracle), and
  ``matcher="indexed"`` (default; compiled plans over a structural index),
  ``"naive"`` (backtracking oracle) or ``"auto"`` (cost-model choice);
* the **caches**: per-document Shannon tables, structural indexes, and an
  answer-set cache that makes repeated queries on an unchanged document
  near-free (any update invalidates it automatically);
* observable **stats** counters (cache hits, plans compiled, formulas
  evaluated).

``ProbXMLWarehouse(...)`` builds its own context; pass ``context=`` to share
one across warehouses, or legacy ``engine=`` / ``matcher=`` strings for an
ad-hoc policy.  Per-call overrides always win:
``warehouse.probability(q, engine="enumerate")``.  The same knobs exist on
the CLI (``python -m repro.cli probability doc.xml //movie --engine formula
--matcher auto --stats``) and on the underlying functions
(``boolean_probability(query, probtree, context=ctx)``).
"""

from repro import ExecutionContext, ProbXMLWarehouse, probtree_to_xml, tree


def main() -> None:
    # 1. An empty catalog (a certain, single-node document).  The warehouse
    #    creates a session ExecutionContext; matcher="auto" lets its cost
    #    model pick the embedding strategy per pattern.
    context = ExecutionContext(engine="formula", matcher="auto")
    warehouse = ProbXMLWarehouse("catalog", context=context)

    # 2. Imprecise knowledge arrives as probabilistic insertions.  Each update
    #    introduces an independent event variable holding its confidence.
    warehouse.insert(
        "/catalog",
        tree("movie", tree("title", "Solaris"), tree("year", "1972")),
        confidence=0.9,
    )
    warehouse.insert(
        "/catalog",
        tree("movie", tree("title", "Stalker"), tree("year", "1979")),
        confidence=0.7,
    )
    # A second extractor disagrees about Solaris' year.
    warehouse.insert("/catalog/movie/title/Solaris", tree("note", "festival-cut"), confidence=0.4)

    print("Prob-tree after three probabilistic insertions:")
    print(warehouse.probtree.pretty())
    print()

    # 3. Queries return sub-documents together with their probability.  A
    #    repeated query is served from the context's answer cache — check
    #    warehouse.stats afterwards.
    print("Movie titles and their probabilities:")
    for answer in warehouse.query("/catalog/movie/title/*"):
        title = [
            answer.tree.label(node)
            for node in answer.tree.nodes()
            if not answer.tree.children(node)
        ][0]
        print(f"  {title:10s}  p = {answer.probability:.2f}")
    print(f"P(catalog has at least one movie) = {warehouse.probability('/catalog/movie'):.3f}")
    warehouse.query("/catalog/movie/title/*")  # identical query: a cache hit
    print(f"context stats: {warehouse.stats.as_dict()}")
    print()

    # 4. The warehouse is a corpus: add more documents under their own names
    #    and fan a query out across all of them — one shared context, one
    #    set of caches.
    warehouse.add_document("archive", "archive")
    warehouse.insert(
        "/archive",
        tree("movie", tree("title", "Mirror"), tree("year", "1975")),
        confidence=0.8,
        name="archive",
    )
    print(f"Corpus documents: {warehouse.names()}")
    for name, probability in warehouse.probability_all("//movie").items():
        print(f"  P({name} has a movie) = {probability:.3f}")
    print()

    # 5. The possible-world semantics is always available explicitly.
    print("Three most probable worlds of the default document:")
    for world, probability in warehouse.most_probable_worlds(3):
        print(f"  p = {probability:.3f}  {world.to_nested()}")
    print()

    # Keep only worlds with probability at least 0.2 (the lost mass moves to
    # a bare-root world, per the paper's Definition 3).
    warehouse.prune_below(0.2)
    print("After pruning worlds below probability 0.2:")
    for world, probability in warehouse.most_probable_worlds(3):
        print(f"  p = {probability:.3f}  {world.to_nested()}")
    print()

    # The warehouse serializes to plain XML — and parses it back: passing an
    # XML string to ProbXMLWarehouse / add_document re-reads the document
    # instead of treating the markup as a root label.
    xml_text = probtree_to_xml(warehouse.probtree)
    print("XML serialization (truncated):")
    print("\n".join(xml_text.splitlines()[:12]))
    roundtripped = ProbXMLWarehouse(xml_text, context=context)
    print(f"round-tripped document nodes: {roundtripped.document.node_count()}")


if __name__ == "__main__":
    main()
