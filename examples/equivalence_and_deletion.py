"""Equivalence testing and the cost of deletions.

Two themes from the paper's Sections 3 and 4:

1. *Structural equivalence* — the randomized polynomial-time test of
   Figure 3 against the exhaustive world enumeration, on prob-trees that are
   equivalent for a non-obvious reason (count-preserving refinements).
2. *Deletion blow-up* — the Theorem 3 family, where the innocuous-looking
   update "if the root has a C-child, delete all B-children" forces an
   exponentially larger prob-tree, and the Section 5 formula-condition
   variant where the same update stays linear (but queries get expensive).

Run with ``python examples/equivalence_and_deletion.py``.
"""

import time

from repro import (
    Condition,
    DataTree,
    ProbTree,
    ProbabilityDistribution,
    structurally_equivalent_exhaustive,
    structurally_equivalent_randomized,
)
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.variants.formula_probtree import FormulaProbTree
from repro.workloads.constructions import theorem3_deletion, theorem3_probtree


def refinement_pair():
    """B[w1] versus B[w1∧w2] + B[w1∧¬w2] — equivalent, but not syntactically."""
    left_tree = DataTree("A")
    b = left_tree.add_child(left_tree.root, "B")
    left = ProbTree(
        left_tree,
        ProbabilityDistribution({"w1": 0.5, "w2": 0.5}),
        {b: Condition.of("w1")},
    )

    right_tree = DataTree("A")
    b1 = right_tree.add_child(right_tree.root, "B")
    b2 = right_tree.add_child(right_tree.root, "B")
    right = ProbTree(
        right_tree,
        ProbabilityDistribution({"w1": 0.5, "w2": 0.5}),
        {b1: Condition.of("w1", "w2"), b2: Condition.of("w1", "not w2")},
    )
    return left, right


def main() -> None:
    # --- 1. Equivalence -----------------------------------------------------
    left, right = refinement_pair()
    print("Structural equivalence of a condition refinement:")
    print(f"  exhaustive world enumeration : {structurally_equivalent_exhaustive(left, right)}")
    print(f"  randomized Figure 3 algorithm: {structurally_equivalent_randomized(left, right, seed=0)}")

    damaged = right.copy()
    extra = damaged.add_child(damaged.tree.root, "B", Condition.of("w2"))
    print("After adding a third conditional B child (no longer equivalent):")
    print(f"  exhaustive : {structurally_equivalent_exhaustive(left, damaged)}")
    print(f"  randomized : {structurally_equivalent_randomized(left, damaged, seed=0)}")
    print()

    # --- 2. Deletion blow-up --------------------------------------------------
    print("Theorem 3 deletion blow-up (d0 = 'if a C child exists, delete the B children'):")
    print(f"{'n':>3} {'input size':>11} {'conjunctive output':>19} {'formula-variant output':>23}")
    for n in (2, 4, 6, 8):
        probtree = theorem3_probtree(n)
        start = time.perf_counter()
        conjunctive = apply_update_to_probtree(probtree, theorem3_deletion())
        conjunctive_time = time.perf_counter() - start

        formula_tree = FormulaProbTree.from_probtree(probtree)
        with_formulas = formula_tree.apply_update(theorem3_deletion())

        print(
            f"{n:>3} {probtree.size():>11} "
            f"{conjunctive.size():>12} ({conjunctive_time * 1000:6.1f} ms) "
            f"{with_formulas.size():>16}"
        )
    print()
    print("The conjunctive model pays an exponential price on updates (Theorem 3);")
    print("the arbitrary-formula variant keeps updates linear but, as the paper")
    print("notes, moves the exponential cost to query evaluation instead.")


if __name__ == "__main__":
    main()
