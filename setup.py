"""Setup shim for environments without PEP 517 build isolation.

The canonical metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on offline machines whose setuptools
predates wheel-based editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Probabilistic XML (prob-tree) engine reproducing Senellart & Abiteboul, PODS 2007"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
