"""Unordered labeled data trees (Definition 1) and their basic algorithms.

* :mod:`repro.trees.datatree` — the :class:`DataTree` structure itself;
* :mod:`repro.trees.isomorphism` — linear-time unordered labeled tree
  isomorphism via canonical encodings (the Aho–Hopcroft–Ullman technique the
  paper cites for Proposition 3 / Theorem 2);
* :mod:`repro.trees.subdatatree` — the sub-datatree partial order of
  Definition 5;
* :mod:`repro.trees.builders` — convenient literal-style construction of
  trees from nested tuples;
* :mod:`repro.trees.index` — structural indexes (preorder intervals, label
  posting lists, cached depths) backing the compiled query matcher;
* :mod:`repro.trees.columnar` — the flat struct-of-arrays snapshot
  (:class:`ColumnarTree`) behind ``matcher="columnar"``: numpy-backed when
  available, mmap-able to disk, zero-copy on load.
"""

from repro.trees.columnar import ColumnarTree, columnar_tree
from repro.trees.datatree import DataTree
from repro.trees.index import TreeIndex, tree_index
from repro.trees.isomorphism import canonical_encoding, isomorphic
from repro.trees.subdatatree import (
    is_sub_datatree,
    enumerate_sub_datatrees,
    sub_datatree_count,
)
from repro.trees.builders import tree, leaf

__all__ = [
    "ColumnarTree",
    "columnar_tree",
    "DataTree",
    "TreeIndex",
    "tree_index",
    "canonical_encoding",
    "isomorphic",
    "is_sub_datatree",
    "enumerate_sub_datatrees",
    "sub_datatree_count",
    "tree",
    "leaf",
]
