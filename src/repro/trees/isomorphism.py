"""Isomorphism of unordered labeled trees (Definition 1).

Two data trees are isomorphic when there is a root-preserving,
label-preserving bijection between their nodes that preserves the edge
relation.  For unordered trees this can be decided in linear time with the
classical Aho–Hopcroft–Ullman canonical-encoding technique, which the paper
relies on (proof of Proposition 3 and the algorithm of Figure 3).

Because the data model has multiset semantics, the canonical encoding of a
node keeps *all* children encodings, duplicates included; the set-semantics
variant of Section 5 is obtained by deduplicating them
(``set_semantics=True``), and is used by
:mod:`repro.variants.set_semantics`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.trees.datatree import DataTree, NodeId


def canonical_encoding(
    tree: DataTree,
    node: Optional[NodeId] = None,
    set_semantics: bool = False,
) -> str:
    """Canonical string encoding of the subtree of *tree* rooted at *node*.

    Two subtrees have equal encodings iff they are isomorphic (multiset
    semantics by default).  The encoding of a node is
    ``label ( sorted child encodings )`` computed bottom-up iteratively to
    avoid recursion limits on deep trees.
    """
    if node is None:
        node = tree.root
    encodings: Dict[NodeId, str] = {}
    # Post-order traversal without recursion.
    stack: list = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if expanded:
            children = [encodings[c] for c in tree.children(current)]
            if set_semantics:
                children = sorted(set(children))
            else:
                children.sort()
            label = tree.label(current).replace("\\", "\\\\").replace("(", "\\(").replace(")", "\\)")
            encodings[current] = label + "(" + ",".join(children) + ")"
        else:
            stack.append((current, True))
            for child in tree.children(current):
                stack.append((child, False))
    return encodings[node]


def isomorphic(left: DataTree, right: DataTree, set_semantics: bool = False) -> bool:
    """Decide isomorphism of two data trees (Definition 1).

    With ``set_semantics=True`` the Section 5 set-semantics notion is used
    instead (duplicate sibling subtrees collapse).
    """
    if not set_semantics and left.node_count() != right.node_count():
        return False
    if left.root_label != right.root_label:
        return False
    return canonical_encoding(left, set_semantics=set_semantics) == canonical_encoding(
        right, set_semantics=set_semantics
    )


def canonical_children_encodings(
    tree: DataTree, node: NodeId, set_semantics: bool = False
) -> Tuple[str, ...]:
    """Sorted canonical encodings of the children subtrees of *node*.

    Helper for DTD validation and the equivalence algorithms which need to
    group children by isomorphism class.
    """
    encodings = [canonical_encoding(tree, child, set_semantics) for child in tree.children(node)]
    if set_semantics:
        return tuple(sorted(set(encodings)))
    return tuple(sorted(encodings))


__all__ = ["canonical_encoding", "isomorphic", "canonical_children_encodings"]
