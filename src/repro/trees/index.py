"""Structural indexes over data trees.

A :class:`TreeIndex` snapshots the structure of a :class:`~repro.trees.datatree.DataTree`
into a handful of flat maps that turn the navigation primitives query
evaluation hammers on into O(1) / O(log n) operations:

* **preorder interval numbering** — every node gets a preorder rank and the
  largest rank occurring in its subtree, so ``is_ancestor`` (and therefore
  every structural join of the compiled pattern matcher) is two integer
  comparisons instead of a parent-chain walk;
* a **label → nodes inverted index**, in preorder order, replacing the
  linear scan of :meth:`DataTree.nodes_with_label` (the compiled matcher
  seeds its candidate sets from it);
* cached **depths** (one dict lookup instead of an ancestor walk), plus
  lazily-built **children-by-label** maps and per-label preorder-rank lists
  for direct structural lookups (:meth:`TreeIndex.children_with_label`,
  :meth:`TreeIndex.descendants_with_label`).

Indexes are maintained *incrementally*: the tree carries a mutation
:attr:`~repro.trees.datatree.DataTree.version` counter and a bounded
**mutation journal** (:meth:`DataTree.mutations_since
<repro.trees.datatree.DataTree.mutations_since>`) recording every
``add_child`` / ``add_subtree`` / ``delete_subtree`` / ``set_label``.
:func:`tree_index` — the only way callers should obtain an index — hands back
the cached snapshot while its version still matches; when stale, it first
tries :meth:`TreeIndex.patch`, which replays the journal suffix in place
(interval renumbering confined to the affected subtree plus suffix shifts,
posting-list deltas, depth and parent fix-ups), and falls back to a full
O(n) rebuild only when the journal is unavailable or longer than the
:data:`PATCH_JOURNAL_LIMIT` cost-model threshold.  Holding on to a stale
:class:`TreeIndex` is therefore impossible through the public entry point;
:meth:`TreeIndex.is_fresh` exposes the staleness check for tests, and
:meth:`TreeIndex.structural_state` the canonical internal state the
differential harness compares against a fresh rebuild.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.trees.datatree import DataTree, NodeId
from repro.utils.faults import fire

#: Above this many pending journal entries, replaying loses to rebuilding:
#: each replayed entry shifts a preorder suffix (O(n) worst case, ~n/2 on
#: average), while a rebuild is one O(n) DFS with a larger constant — so the
#: break-even point is a small, size-independent entry count.
PATCH_JOURNAL_LIMIT = 16


class TreeIndex:
    """The structural index of one data tree, maintained incrementally.

    Build through :func:`tree_index` so snapshots are shared and kept in
    sync with the tree's mutation counter.  The index is NOT an immutable
    snapshot: when the tree mutates, the next :func:`tree_index` call
    replays the mutation journal onto this same object (:meth:`patch`), so
    a held handle describes the *current* tree after any interleaved
    ``tree_index`` call — don't rely on it staying stale.
    """

    __slots__ = (
        "_tree",
        "_version",
        "_pre",
        "_last",
        "_depth",
        "_order",
        "_by_label",
        "_parent_of",
        "_label_of",
        "_pres_by_label",
        "_children_by_label",
    )

    def __init__(self, tree: DataTree) -> None:
        self._tree = tree
        self._version = tree.version
        pre: Dict[NodeId, int] = {}
        last: Dict[NodeId, int] = {}
        depth: Dict[NodeId, int] = {}
        order: List[NodeId] = []
        by_label: Dict[str, List[NodeId]] = {}
        parent_of: Dict[NodeId, Optional[NodeId]] = {}
        label_of: Dict[NodeId, str] = {}
        counter = 0
        # Iterative DFS (documents are routinely thousands of nodes deep);
        # the second visit of a node closes its preorder interval.
        stack: List[Tuple[NodeId, bool]] = [(tree.root, True)]
        while stack:
            node, enter = stack.pop()
            if not enter:
                last[node] = counter - 1
                continue
            pre[node] = counter
            counter += 1
            order.append(node)
            parent = tree.parent(node)
            parent_of[node] = parent
            depth[node] = 0 if parent is None else depth[parent] + 1
            label = tree.label(node)
            label_of[node] = label
            by_label.setdefault(label, []).append(node)
            stack.append((node, False))
            for child in reversed(tree.children(node)):
                stack.append((child, True))
        self._pre = pre
        self._last = last
        self._depth = depth
        self._order = tuple(order)
        self._by_label = {label: tuple(nodes) for label, nodes in by_label.items()}
        # Snapshot parent/label maps let patch() replay journal entries that
        # mention nodes the live tree has since deleted.
        self._parent_of = parent_of
        self._label_of = label_of
        # Lazy caches: per-label preorder-rank lists and per-node
        # children-by-label maps are only materialized when first queried.
        self._pres_by_label: Dict[str, List[int]] = {}
        self._children_by_label: Dict[NodeId, Dict[str, Tuple[NodeId, ...]]] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def tree(self) -> DataTree:
        return self._tree

    @property
    def version(self) -> int:
        """The tree version this snapshot was built at."""
        return self._version

    def is_fresh(self) -> bool:
        """Whether the tree has not been mutated since this index was built."""
        return self._version == self._tree.version

    def patch(self) -> bool:
        """Replay the tree's mutation journal, bringing this index up to date.

        Returns ``True`` when the index now matches the tree's version
        (including when it already did), ``False`` when patching is not
        possible or not worthwhile — the journal has been trimmed past this
        index's version, or the pending suffix exceeds
        :data:`PATCH_JOURNAL_LIMIT` (a full rebuild is then cheaper).

        Replay is sequential: after applying entry *i*, the index mirrors
        exactly the tree as it stood after mutation *i*, which is what makes
        each entry's bookkeeping local — an ``add_child`` inserts one rank
        and shifts the preorder suffix, a ``delete_subtree`` drops one
        contiguous rank interval, a ``set_label`` moves one posting.  The
        patched index is structurally identical to a fresh rebuild (the
        incremental-index differential harness asserts exactly that).

        Exception safety: replay mutates the index in place, so an exception
        mid-entry (see the ``index.patch`` fault site) would leave it
        half-shifted.  The index then **poisons itself** — its version drops
        to ``-1``, which no journal reaches — before re-raising, so the next
        :func:`tree_index` call discards it and rebuilds instead of serving
        (or re-patching) torn interval maps.
        """
        tree = self._tree
        if self._version == tree.version:
            return True
        entries = tree.mutations_since(self._version)
        if entries is None or len(entries) > PATCH_JOURNAL_LIMIT:
            return False
        try:
            return self._replay(entries, tree)
        except BaseException:
            self._version = -1
            raise

    def _replay(self, entries, tree: DataTree) -> bool:
        pre = self._pre
        last = self._last
        depth = self._depth
        parent_of = self._parent_of
        label_of = self._label_of
        children_by_label = self._children_by_label
        order = list(self._order)
        postings = self._by_label
        unfrozen: set = set()

        def posting(label: str) -> List[NodeId]:
            lst = postings.get(label)
            if lst is None:
                lst = []
                postings[label] = lst
                unfrozen.add(label)
            elif label not in unfrozen:
                lst = list(lst)
                postings[label] = lst
                unfrozen.add(label)
            return lst

        def rank_position(lst: List[NodeId], rank: int) -> int:
            """Leftmost position in *lst* (preorder-sorted) with rank ≥ *rank*."""
            lo, hi = 0, len(lst)
            while lo < hi:
                mid = (lo + hi) // 2
                if pre[lst[mid]] < rank:
                    lo = mid + 1
                else:
                    hi = mid
            return lo

        for op, node, payload in entries:
            fire("index.patch")
            if op == "add_child":
                parent, label = payload
                rank = last[parent] + 1
                # Suffix shift: everything at or after the insertion point
                # moves one rank right; ancestors grow their intervals.
                for moved in order[rank:]:
                    pre[moved] += 1
                    last[moved] += 1
                walk = parent
                while walk is not None:
                    last[walk] += 1
                    walk = parent_of[walk]
                order.insert(rank, node)
                pre[node] = rank
                last[node] = rank
                depth[node] = depth[parent] + 1
                parent_of[node] = parent
                label_of[node] = label
                lst = posting(label)
                lst.insert(rank_position(lst, rank), node)
                children_by_label.pop(parent, None)
            elif op == "set_label":
                old, new = payload
                if old == new:
                    continue
                lst = posting(old)
                lst.pop(rank_position(lst, pre[node]))
                lst = posting(new)
                lst.insert(rank_position(lst, pre[node]), node)
                label_of[node] = new
                children_by_label.pop(parent_of[node], None)
            else:  # delete_subtree
                parent = payload[0]
                lo, hi = pre[node], last[node]
                size = hi - lo + 1
                removed = order[lo : hi + 1]
                by_removed_label: Dict[str, set] = {}
                for dead in removed:
                    by_removed_label.setdefault(label_of[dead], set()).add(dead)
                for label, dead_set in by_removed_label.items():
                    lst = posting(label)
                    lst[:] = [n for n in lst if n not in dead_set]
                for moved in order[hi + 1 :]:
                    pre[moved] -= size
                    last[moved] -= size
                walk = parent
                while walk is not None:
                    last[walk] -= size
                    walk = parent_of[walk]
                del order[lo : hi + 1]
                for dead in removed:
                    del pre[dead]
                    del last[dead]
                    del depth[dead]
                    del parent_of[dead]
                    del label_of[dead]
                    children_by_label.pop(dead, None)
                children_by_label.pop(parent, None)

        self._order = tuple(order)
        for label in unfrozen:
            lst = postings[label]
            if lst:
                postings[label] = tuple(lst)
            else:
                del postings[label]
        # Ranks shifted wholesale: drop the lazy per-label rank lists (they
        # are rebuilt on demand from the patched postings).
        self._pres_by_label = {}
        self._version = tree.version
        return True

    def structural_state(self) -> Dict[str, object]:
        """Canonical snapshot of every eager internal structure.

        Two indexes over the same tree are interchangeable iff their
        structural states are equal; the incremental-maintenance differential
        harness compares a patched index against a fresh rebuild with this.
        """
        return {
            "pre": dict(self._pre),
            "last": dict(self._last),
            "depth": dict(self._depth),
            "order": tuple(self._order),
            "parent": dict(self._parent_of),
            "labels": dict(self._label_of),
            "postings": {label: tuple(nodes) for label, nodes in self._by_label.items()},
        }

    # -- structural predicates ---------------------------------------------

    def preorder(self, node: NodeId) -> int:
        """Preorder rank of *node* (root is 0)."""
        return self._pre[node]

    def subtree_interval(self, node: NodeId) -> Tuple[int, int]:
        """``(lo, hi)`` preorder ranks: the subtree of *node* is exactly
        the nodes with rank in ``[lo, hi]`` (strict descendants: ``(lo, hi]``)."""
        return self._pre[node], self._last[node]

    def is_ancestor(self, ancestor: NodeId, node: NodeId, strict: bool = True) -> bool:
        """O(1) ancestor test via interval containment."""
        lo = self._pre[ancestor]
        rank = self._pre[node]
        if strict and rank == lo:
            return False
        return lo <= rank <= self._last[ancestor]

    def depth(self, node: NodeId) -> int:
        """Cached depth (edges to the root)."""
        return self._depth[node]

    def subtree_size(self, node: NodeId) -> int:
        """Number of nodes in the subtree of *node* (itself included)."""
        return self._last[node] - self._pre[node] + 1

    def preorder_map(self) -> Dict[NodeId, int]:
        """The node → preorder rank map (treat as read-only; hot loops only)."""
        return self._pre

    def subtree_last_map(self) -> Dict[NodeId, int]:
        """The node → last-subtree-rank map (treat as read-only; hot loops only)."""
        return self._last

    # -- label access ------------------------------------------------------

    def nodes_in_preorder(self) -> Tuple[NodeId, ...]:
        """All node identifiers, in preorder."""
        return self._order

    def nodes_with_label(self, label: str) -> Tuple[NodeId, ...]:
        """Nodes carrying *label*, in preorder (O(1) lookup)."""
        return self._by_label.get(label, ())

    def labels(self) -> Tuple[str, ...]:
        """The distinct labels occurring in the tree."""
        return tuple(self._by_label)

    def descendants_with_label(self, node: NodeId, label: str) -> List[NodeId]:
        """Strict descendants of *node* carrying *label*, in preorder.

        Resolved as a binary search over the label's preorder-sorted posting
        list restricted to the node's subtree interval — O(log n + answers).
        """
        nodes = self._by_label.get(label)
        if not nodes:
            return []
        pres = self._pres_by_label.get(label)
        if pres is None:
            pre = self._pre
            pres = [pre[n] for n in nodes]
            self._pres_by_label[label] = pres
        lo, hi = self._pre[node], self._last[node]
        start = bisect_right(pres, lo)
        stop = bisect_right(pres, hi)
        return list(nodes[start:stop])

    def children_with_label(self, node: NodeId, label: str) -> Tuple[NodeId, ...]:
        """Children of *node* carrying *label* (cached per node)."""
        cached = self._children_by_label.get(node)
        if cached is None:
            cached = {}
            for child in self._tree.children(node):
                child_label = self._tree.label(child)
                cached.setdefault(child_label, []).append(child)
            cached = {lbl: tuple(children) for lbl, children in cached.items()}
            self._children_by_label[node] = cached
        return cached.get(label, ())

    def __repr__(self) -> str:
        return (
            f"TreeIndex(nodes={len(self._order)}, labels={len(self._by_label)}, "
            f"version={self._version}, fresh={self.is_fresh()})"
        )


def tree_index(tree: DataTree) -> TreeIndex:
    """The shared :class:`TreeIndex` of *tree*, patched or rebuilt when stale.

    The snapshot is cached on the tree itself and compared against the
    tree's mutation version on every call, so callers never observe an index
    describing a structure that no longer exists.  A stale snapshot is first
    *patched in place* by replaying the tree's mutation journal
    (:meth:`TreeIndex.patch`) — mixed update/query workloads therefore pay
    O(journal · suffix) instead of a full O(n) rebuild per mutation — and
    rebuilt from scratch only when the journal is gone or longer than
    :data:`PATCH_JOURNAL_LIMIT`.  Batch APIs that evaluate many queries
    against one tree still pay the build exactly once.
    """
    cached = tree._index_cache
    if cached is not None and (cached.is_fresh() or cached.patch()):
        return cached
    index = TreeIndex(tree)
    tree._index_cache = index
    return index


__all__ = ["TreeIndex", "tree_index", "PATCH_JOURNAL_LIMIT"]
