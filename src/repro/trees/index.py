"""Structural indexes over data trees.

A :class:`TreeIndex` snapshots the structure of a :class:`~repro.trees.datatree.DataTree`
into a handful of flat maps that turn the navigation primitives query
evaluation hammers on into O(1) / O(log n) operations:

* **preorder interval numbering** — every node gets a preorder rank and the
  largest rank occurring in its subtree, so ``is_ancestor`` (and therefore
  every structural join of the compiled pattern matcher) is two integer
  comparisons instead of a parent-chain walk;
* a **label → nodes inverted index**, in preorder order, replacing the
  linear scan of :meth:`DataTree.nodes_with_label` (the compiled matcher
  seeds its candidate sets from it);
* cached **depths** (one dict lookup instead of an ancestor walk), plus
  lazily-built **children-by-label** maps and per-label preorder-rank lists
  for direct structural lookups (:meth:`TreeIndex.children_with_label`,
  :meth:`TreeIndex.descendants_with_label`).

Indexes are immutable snapshots.  They are invalidated *automatically*: the
tree carries a mutation :attr:`~repro.trees.datatree.DataTree.version`
counter bumped by ``add_child`` / ``add_subtree`` / ``delete_subtree`` /
``set_label``, and :func:`tree_index` — the only way callers should obtain an
index — hands back the cached snapshot only while its version still matches,
rebuilding otherwise.  Holding on to a stale :class:`TreeIndex` is therefore
impossible through the public entry point; :meth:`TreeIndex.is_fresh` exposes
the staleness check for tests.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple

from repro.trees.datatree import DataTree, NodeId


class TreeIndex:
    """An immutable structural snapshot of one data tree.

    Build through :func:`tree_index` so snapshots are shared and invalidated
    with the tree's mutation counter.
    """

    __slots__ = (
        "_tree",
        "_version",
        "_pre",
        "_last",
        "_depth",
        "_order",
        "_by_label",
        "_pres_by_label",
        "_children_by_label",
    )

    def __init__(self, tree: DataTree) -> None:
        self._tree = tree
        self._version = tree.version
        pre: Dict[NodeId, int] = {}
        last: Dict[NodeId, int] = {}
        depth: Dict[NodeId, int] = {}
        order: List[NodeId] = []
        by_label: Dict[str, List[NodeId]] = {}
        counter = 0
        # Iterative DFS (documents are routinely thousands of nodes deep);
        # the second visit of a node closes its preorder interval.
        stack: List[Tuple[NodeId, bool]] = [(tree.root, True)]
        while stack:
            node, enter = stack.pop()
            if not enter:
                last[node] = counter - 1
                continue
            pre[node] = counter
            counter += 1
            order.append(node)
            parent = tree.parent(node)
            depth[node] = 0 if parent is None else depth[parent] + 1
            by_label.setdefault(tree.label(node), []).append(node)
            stack.append((node, False))
            for child in reversed(tree.children(node)):
                stack.append((child, True))
        self._pre = pre
        self._last = last
        self._depth = depth
        self._order = tuple(order)
        self._by_label = {label: tuple(nodes) for label, nodes in by_label.items()}
        # Lazy caches: per-label preorder-rank lists and per-node
        # children-by-label maps are only materialized when first queried.
        self._pres_by_label: Dict[str, List[int]] = {}
        self._children_by_label: Dict[NodeId, Dict[str, Tuple[NodeId, ...]]] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def tree(self) -> DataTree:
        return self._tree

    @property
    def version(self) -> int:
        """The tree version this snapshot was built at."""
        return self._version

    def is_fresh(self) -> bool:
        """Whether the tree has not been mutated since this index was built."""
        return self._version == self._tree.version

    # -- structural predicates ---------------------------------------------

    def preorder(self, node: NodeId) -> int:
        """Preorder rank of *node* (root is 0)."""
        return self._pre[node]

    def subtree_interval(self, node: NodeId) -> Tuple[int, int]:
        """``(lo, hi)`` preorder ranks: the subtree of *node* is exactly
        the nodes with rank in ``[lo, hi]`` (strict descendants: ``(lo, hi]``)."""
        return self._pre[node], self._last[node]

    def is_ancestor(self, ancestor: NodeId, node: NodeId, strict: bool = True) -> bool:
        """O(1) ancestor test via interval containment."""
        lo = self._pre[ancestor]
        rank = self._pre[node]
        if strict and rank == lo:
            return False
        return lo <= rank <= self._last[ancestor]

    def depth(self, node: NodeId) -> int:
        """Cached depth (edges to the root)."""
        return self._depth[node]

    def subtree_size(self, node: NodeId) -> int:
        """Number of nodes in the subtree of *node* (itself included)."""
        return self._last[node] - self._pre[node] + 1

    def preorder_map(self) -> Dict[NodeId, int]:
        """The node → preorder rank map (treat as read-only; hot loops only)."""
        return self._pre

    def subtree_last_map(self) -> Dict[NodeId, int]:
        """The node → last-subtree-rank map (treat as read-only; hot loops only)."""
        return self._last

    # -- label access ------------------------------------------------------

    def nodes_in_preorder(self) -> Tuple[NodeId, ...]:
        """All node identifiers, in preorder."""
        return self._order

    def nodes_with_label(self, label: str) -> Tuple[NodeId, ...]:
        """Nodes carrying *label*, in preorder (O(1) lookup)."""
        return self._by_label.get(label, ())

    def labels(self) -> Tuple[str, ...]:
        """The distinct labels occurring in the tree."""
        return tuple(self._by_label)

    def descendants_with_label(self, node: NodeId, label: str) -> List[NodeId]:
        """Strict descendants of *node* carrying *label*, in preorder.

        Resolved as a binary search over the label's preorder-sorted posting
        list restricted to the node's subtree interval — O(log n + answers).
        """
        nodes = self._by_label.get(label)
        if not nodes:
            return []
        pres = self._pres_by_label.get(label)
        if pres is None:
            pre = self._pre
            pres = [pre[n] for n in nodes]
            self._pres_by_label[label] = pres
        lo, hi = self._pre[node], self._last[node]
        start = bisect_right(pres, lo)
        stop = bisect_right(pres, hi)
        return list(nodes[start:stop])

    def children_with_label(self, node: NodeId, label: str) -> Tuple[NodeId, ...]:
        """Children of *node* carrying *label* (cached per node)."""
        cached = self._children_by_label.get(node)
        if cached is None:
            cached = {}
            for child in self._tree.children(node):
                child_label = self._tree.label(child)
                cached.setdefault(child_label, []).append(child)
            cached = {lbl: tuple(children) for lbl, children in cached.items()}
            self._children_by_label[node] = cached
        return cached.get(label, ())

    def __repr__(self) -> str:
        return (
            f"TreeIndex(nodes={len(self._order)}, labels={len(self._by_label)}, "
            f"version={self._version}, fresh={self.is_fresh()})"
        )


def tree_index(tree: DataTree) -> TreeIndex:
    """The shared :class:`TreeIndex` of *tree*, rebuilt when stale.

    The snapshot is cached on the tree itself and compared against the
    tree's mutation version on every call, so callers never observe an index
    describing a structure that no longer exists; batch APIs that evaluate
    many queries against one tree pay the O(n) build exactly once.
    """
    cached = tree._index_cache
    if cached is not None and cached.is_fresh():
        return cached
    index = TreeIndex(tree)
    tree._index_cache = index
    return index


__all__ = ["TreeIndex", "tree_index"]
