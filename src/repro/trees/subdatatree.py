"""The sub-datatree partial order (Definition 5).

A sub-datatree of ``t`` is obtained by pruning some branches of ``t`` while
keeping its root: formally a subset of nodes that is closed under taking
parents, with the induced edges and labels.  Queries (Definition 6) return
sets of sub-datatrees, and *locally monotone* queries are characterized
through this order, so these helpers are used throughout the query and
equivalence machinery.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set

from repro.trees.datatree import DataTree, NodeId


def is_sub_datatree(candidate: DataTree, tree: DataTree) -> bool:
    """Whether *candidate* ≤ *tree* in the sense of Definition 5.

    The two trees must share node identifiers (sub-datatrees are literally
    induced substructures, conditions (i)–(v) of the definition).
    """
    if candidate.root != tree.root:
        return False
    for node in candidate.nodes():
        if not tree.has_node(node):
            return False
        if candidate.label(node) != tree.label(node):
            return False
        candidate_parent = candidate.parent(node)
        tree_parent = tree.parent(node)
        if candidate_parent != tree_parent:
            return False
        # Edges of the candidate must be edges of the tree restricted to the
        # candidate's nodes: guaranteed by the parent check plus the next one.
        if not set(candidate.children(node)) <= set(tree.children(node)):
            return False
    # Condition (iii) also requires every tree edge between retained nodes to
    # be present in the candidate.
    retained = set(candidate.nodes())
    for node in retained:
        expected = {c for c in tree.children(node) if c in retained}
        if expected != set(candidate.children(node)):
            return False
    return True


def enumerate_sub_datatrees(tree: DataTree) -> Iterator[DataTree]:
    """Enumerate every sub-datatree of *tree* (the set ``Sub(t)``).

    The number of sub-datatrees is exponential in general (it is the number
    of antichain-closed prunings), so this is meant for tests and small
    oracles only.  Enumeration is deterministic.
    """
    for nodes in _enumerate_closed_sets(tree, tree.root):
        yield tree.restrict(nodes)


def sub_datatree_count(tree: DataTree) -> int:
    """Number of sub-datatrees of *tree*, computed bottom-up in linear time.

    For a node with children ``c1 … ck`` whose subtree counts are ``n1 … nk``,
    the number of prunings keeping that node is ``∏ (ni + 1)`` (each child
    subtree is either fully pruned or replaced by one of its own prunings).
    """
    counts = {}
    # Process nodes in reverse preorder so children are done before parents.
    order = list(tree.nodes())
    for node in reversed(order):
        product = 1
        for child in tree.children(node):
            product *= counts[child] + 1
        counts[node] = product
    return counts[tree.root]


def _enumerate_closed_sets(tree: DataTree, node: NodeId) -> Iterator[FrozenSet[NodeId]]:
    """Enumerate ancestor-closed node sets of the subtree at *node* that contain *node*."""
    child_options: List[List[FrozenSet[NodeId]]] = []
    for child in tree.children(node):
        options = [frozenset()]  # prune the child entirely
        options.extend(_enumerate_closed_sets(tree, child))
        child_options.append(options)
    for combination in _product(child_options):
        result: Set[NodeId] = {node}
        for part in combination:
            result |= part
        yield frozenset(result)


def _product(option_lists: List[List[FrozenSet[NodeId]]]) -> Iterator[tuple]:
    if not option_lists:
        yield ()
        return
    head, *tail = option_lists
    for choice in head:
        for rest in _product(tail):
            yield (choice,) + rest


__all__ = ["is_sub_datatree", "enumerate_sub_datatrees", "sub_datatree_count"]
