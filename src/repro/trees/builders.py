"""Literal-style construction helpers for data trees.

Writing test fixtures and examples with ``DataTree.add_child`` calls is
verbose; these helpers let callers build trees from nested calls::

    doc = tree("A", tree("B"), tree("C", "D"))

which mirrors the figures of the paper (e.g. Figure 1's underlying data
tree).  A child can be an already-built :class:`DataTree` (grafted as a deep
copy) or a bare label string (which becomes a leaf).
"""

from __future__ import annotations

from typing import Union

from repro.trees.datatree import DataTree

ChildSpec = Union[DataTree, str]


def tree(label: str, *children: ChildSpec) -> DataTree:
    """Build a :class:`DataTree` with the given root label and children."""
    result = DataTree(str(label))
    for child in children:
        if isinstance(child, DataTree):
            result.add_subtree(result.root, child)
        else:
            result.add_child(result.root, str(child))
    return result


def leaf(label: str) -> DataTree:
    """Build a single-node tree (convenience alias of ``tree(label)``)."""
    return tree(label)


__all__ = ["tree", "leaf", "ChildSpec"]
