"""The data tree model (Definition 1 of the paper).

A data tree is an unordered, rooted tree whose nodes carry labels drawn from
an arbitrary countable set (we use Python strings).  The model deliberately
ignores XML ordering, attributes and the text/element distinction, and it has
**multiset semantics**: a root with two identically-labeled children is a
different tree from a root with a single such child.

Nodes are identified by integers allocated by the tree.  Node identity
matters beyond structure because queries return *sub-datatrees* that share
nodes with the queried tree (Definition 5), and updates address nodes through
query matches; all algorithms in this library therefore pass node ids around
rather than paths or labels.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.utils.errors import InvalidTreeError, NodeNotFoundError, TransactionError
from repro.utils.faults import fire

NodeId = int

#: Maximum number of retained mutation-journal entries per tree.  When the
#: cap is exceeded the oldest half is dropped (and the journal base version
#: advances), so consumers holding state older than the new base fall back to
#: a full rebuild / wholesale invalidation instead of an incremental replay.
JOURNAL_LIMIT = 256


class DataTree:
    """An unordered labeled tree with integer node identifiers.

    The root always exists and cannot be deleted.  Child lists are kept in
    insertion order for determinism, but no algorithm in the library gives
    that order any meaning.
    """

    # __weakref__ lets the ExecutionContext answer-set cache key entries by
    # tree object without keeping dead trees alive.
    __slots__ = (
        "_labels",
        "_children",
        "_parent",
        "_root",
        "_next_id",
        "_version",
        "_index_cache",
        "_columnar_cache",
        "_journal",
        "_journal_base",
        "_undo",
        "_snapshot_pins",
        "__weakref__",
    )

    def __init__(self, root_label: str) -> None:
        self._labels: Dict[NodeId, str] = {0: str(root_label)}
        self._children: Dict[NodeId, List[NodeId]] = {0: []}
        self._parent: Dict[NodeId, Optional[NodeId]] = {0: None}
        self._root: NodeId = 0
        self._next_id: NodeId = 1
        self._version: int = 0
        self._index_cache = None  # managed by repro.trees.index.tree_index
        self._columnar_cache = None  # managed by repro.trees.columnar.columnar_tree
        # Mutation journal: entry i describes the mutation taking the tree
        # from version (_journal_base + i) to (_journal_base + i + 1).
        self._journal: List[Tuple[str, NodeId, tuple]] = []
        self._journal_base: int = 0
        # Undo log: None outside transactions; a list of inverse records
        # while a repro.core.transactions.Transaction is open on this tree.
        self._undo = None
        self._snapshot_pins = None  # managed by repro.core.snapshot

    # -- basic accessors ---------------------------------------------------

    @property
    def root(self) -> NodeId:
        """Identifier of the root node."""
        return self._root

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every structural or label change.

        :func:`repro.trees.index.tree_index` compares this against the
        version a :class:`~repro.trees.index.TreeIndex` was built at; a
        stale index is *patched* forward by replaying the mutation journal
        (see :meth:`mutations_since`) and rebuilt only when the journal is
        unavailable or replaying would cost more than a rebuild.
        """
        return self._version

    def mutations_since(self, version: int) -> Optional[List[Tuple[str, NodeId, tuple]]]:
        """The journal entries taking the tree from *version* to the present.

        Each entry is ``(op, node, payload)``:

        * ``("add_child", node, (parent, label))`` — *node* was appended as
          the last child of *parent*, labeled *label*;
        * ``("set_label", node, (old_label, new_label))`` — *node* was
          relabeled;
        * ``("delete_subtree", node, (parent, removed_labels))`` — the whole
          subtree of *node* (a child of *parent*) was removed;
          ``removed_labels`` is the frozen set of labels it carried.

        ``add_subtree`` grafts appear as one ``add_child`` entry per copied
        node.  Returns ``None`` when *version* predates the retained journal
        (entries are capped at :data:`JOURNAL_LIMIT`) — consumers must then
        fall back to a full rebuild / wholesale invalidation.  The returned
        list slice must be treated as read-only.
        """
        if version < self._journal_base or version > self._version:
            return None
        return self._journal[version - self._journal_base :]

    def journal_reaches(self, version: int) -> bool:
        """Whether the retained journal still covers mutations since *version*.

        O(1): one journal entry is recorded per version bump, so the suffix
        :meth:`mutations_since` would return has length ``self.version -
        version`` exactly when this is true.  Cost models (the
        journal-aware ``matcher="auto"``) size a pending patch from the
        version arithmetic alone instead of copying the entries out.
        """
        return self._journal_base <= version <= self._version

    def mutation_touch_since(
        self, version: int
    ) -> Optional[Tuple[FrozenSet[str], FrozenSet[NodeId]]]:
        """``(touched_labels, relabeled_nodes)`` for every mutation since *version*.

        The single source of truth for what a journal suffix can have
        affected: an added node touches its label, a relabel touches the old
        and new labels (and records the node, so caches holding that node
        can retire), a subtree deletion touches every removed label.
        No-op relabels (old == new) touch nothing.  Returns ``None`` when
        the journal no longer reaches back to *version*.
        """
        entries = self.mutations_since(version)
        if entries is None:
            return None
        labels: Set[str] = set()
        relabeled: Set[NodeId] = set()
        for op, node, payload in entries:
            if op == "add_child":
                labels.add(payload[1])
            elif op == "set_label":
                old, new = payload
                if old != new:
                    labels.add(old)
                    labels.add(new)
                    relabeled.add(node)
            else:  # delete_subtree
                labels.update(payload[1])
        return frozenset(labels), frozenset(relabeled)

    def labels_mutated_since(self, version: int) -> Optional[FrozenSet[str]]:
        """The labels touched by every mutation since *version* (or ``None``)."""
        touch = self.mutation_touch_since(version)
        return None if touch is None else touch[0]

    @property
    def root_label(self) -> str:
        return self._labels[self._root]

    def label(self, node: NodeId) -> str:
        """Label of *node*."""
        self._require(node)
        return self._labels[node]

    def set_label(self, node: NodeId, label: str) -> None:
        """Relabel *node*.

        Validation and label coercion happen before any state changes, and
        the journal/version record is written only after the mutation landed,
        so a raising ``str(label)`` leaves the tree (and its journal)
        untouched.
        """
        self._require(node)
        old = self._labels[node]
        new = str(label)
        self._notify_write()
        undo = self._undo
        if undo is not None:
            undo.append(("label", node, old))
        self._labels[node] = new
        fire("datatree.set_label")
        self._record("set_label", node, (old, new))

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Identifiers of the children of *node* (order is not meaningful)."""
        self._require(node)
        return tuple(self._children[node])

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Identifier of the parent of *node*, or ``None`` for the root."""
        self._require(node)
        return self._parent[node]

    def has_node(self, node: NodeId) -> bool:
        return node in self._labels

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node identifiers in preorder (root first)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def node_count(self) -> int:
        """Number of nodes, the size ``|t|`` used throughout the paper."""
        return len(self._labels)

    def __len__(self) -> int:
        return self.node_count()

    def __contains__(self, node: object) -> bool:
        return node in self._labels

    # -- navigation --------------------------------------------------------

    def descendants(self, node: NodeId, include_self: bool = False) -> Iterator[NodeId]:
        """Iterate over (strict by default) descendants of *node* in preorder."""
        self._require(node)
        stack = list(self._children[node]) if not include_self else [node]
        if include_self:
            while stack:
                current = stack.pop()
                yield current
                stack.extend(reversed(self._children[current]))
            return
        stack = list(reversed(self._children[node]))
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self._children[current]))

    def ancestors(self, node: NodeId, include_self: bool = False) -> Iterator[NodeId]:
        """Iterate over ancestors of *node*, closest first (root last)."""
        self._require(node)
        current = node if include_self else self._parent[node]
        while current is not None:
            yield current
            current = self._parent[current]

    def depth(self, node: NodeId) -> int:
        """Number of edges between *node* and the root."""
        return sum(1 for _ in self.ancestors(node))

    def height(self) -> int:
        """Longest root-to-leaf path length (in edges)."""
        best = 0
        for node in self.nodes():
            if not self._children[node]:
                best = max(best, self.depth(node))
        return best

    def leaves(self) -> Iterator[NodeId]:
        """Iterate over leaf node identifiers."""
        for node in self.nodes():
            if not self._children[node]:
                yield node

    def nodes_with_label(self, label: str) -> Iterator[NodeId]:
        """Iterate over the nodes carrying *label*."""
        for node in self.nodes():
            if self._labels[node] == label:
                yield node

    def children_with_label(self, node: NodeId, label: str) -> Tuple[NodeId, ...]:
        """Children of *node* carrying *label* (used by DTD validation)."""
        return tuple(c for c in self.children(node) if self._labels[c] == label)

    # -- construction ------------------------------------------------------

    def add_child(self, parent: NodeId, label: str) -> NodeId:
        """Create a new node labeled *label* under *parent*; return its id.

        Label coercion happens before the id counter moves or any map is
        touched, and the journal/version record is written last — a raising
        ``str(label)`` leaves the tree byte-identical, and a fault between
        the node maps and the parent link can never produce a journal entry
        for a mutation that did not fully land.
        """
        self._require(parent)
        coerced = str(label)
        self._notify_write()
        node = self._next_id
        undo = self._undo
        if undo is not None:
            undo.append(("next_id", node))
            undo.append(("children", parent, list(self._children[parent])))
            undo.append(("forget_node", node))
        self._next_id = node + 1
        self._labels[node] = coerced
        self._children[node] = []
        self._parent[node] = parent
        fire("datatree.add_child")
        self._children[parent].append(node)
        self._record("add_child", node, (parent, coerced))
        return node

    def add_subtree(self, parent: NodeId, subtree: "DataTree") -> Dict[NodeId, NodeId]:
        """Graft a deep copy of *subtree* under *parent*.

        Returns the mapping from node ids of *subtree* to the freshly
        allocated ids in this tree (the subtree's root included).
        """
        self._require(parent)
        mapping: Dict[NodeId, NodeId] = {}
        order = list(subtree.nodes())
        for source in order:
            source_parent = subtree.parent(source)
            target_parent = parent if source_parent is None else mapping[source_parent]
            mapping[source] = self.add_child(target_parent, subtree.label(source))
        return mapping

    def add_subtree_bulk(
        self, parent: NodeId, nodes: Sequence[Tuple[int, str]]
    ) -> List[NodeId]:
        """Append a whole batch of nodes under *parent* in one pass.

        *nodes* is a flat preorder spec: entry ``i`` is ``(slot, label)``
        where ``slot`` is ``-1`` to attach under *parent* or the index of an
        **earlier** batch entry to attach under that new node.  Returns the
        freshly allocated identifiers, one per entry, in batch order.

        The bulk-ingest fast path behind streaming ``insert`` batches and
        :func:`repro.xmlio.parse.datatree_from_xml`: observationally
        identical to calling :meth:`add_child` per entry (same identifiers,
        same per-node ``add_child`` journal entries, same version
        arithmetic — so journal consumers like
        :meth:`~repro.trees.columnar.ColumnarTree.patch` cannot tell the
        difference), but validation, undo bookkeeping and the fault site are
        paid once per batch instead of once per node.
        """
        self._require(parent)
        spec: List[Tuple[int, str]] = []
        for position, (slot, label) in enumerate(nodes):
            slot = int(slot)
            if not -1 <= slot < position:
                raise InvalidTreeError(
                    f"bulk entry {position} references slot {slot}; slots "
                    f"must be -1 (the batch parent) or an earlier entry"
                )
            spec.append((slot, str(label)))
        if not spec:
            return []
        self._notify_write()
        base = self._next_id
        undo = self._undo
        if undo is not None:
            undo.append(("next_id", base))
            undo.append(("children", parent, list(self._children[parent])))
            for position in range(len(spec)):
                undo.append(("forget_node", base + position))
        fire("datatree.add_subtree_bulk")
        labels, children, parents = self._labels, self._children, self._parent
        journal = self._journal
        self._next_id = base + len(spec)
        for position, (slot, label) in enumerate(spec):
            node = base + position
            target = parent if slot < 0 else base + slot
            labels[node] = label
            children[node] = []
            parents[node] = target
            children[target].append(node)
            journal.append(("add_child", node, (target, label)))
        self._version += len(spec)
        if self._undo is None:
            self._trim_journal()
        return [base + position for position in range(len(spec))]

    def delete_subtree(self, node: NodeId) -> Set[NodeId]:
        """Remove *node* and all its descendants; return the removed ids.

        The root cannot be deleted (a data tree always has a root).
        """
        self._require(node)
        if node == self._root:
            raise InvalidTreeError("the root of a data tree cannot be deleted")
        removed = {node} | set(self.descendants(node))
        parent = self._parent[node]
        assert parent is not None
        removed_labels = frozenset(self._labels[r] for r in removed)
        self._notify_write()
        undo = self._undo
        if undo is not None:
            undo.append(("children", parent, list(self._children[parent])))
            undo.append(
                (
                    "restore_nodes",
                    {r: self._labels[r] for r in removed},
                    {r: list(self._children[r]) for r in removed},
                    {r: self._parent[r] for r in removed},
                )
            )
        self._children[parent].remove(node)
        fire("datatree.delete_subtree")
        for removed_node in removed:
            del self._labels[removed_node]
            del self._children[removed_node]
            del self._parent[removed_node]
        self._record("delete_subtree", node, (parent, removed_labels))
        return removed

    # -- copies and restrictions -------------------------------------------

    def copy(self) -> "DataTree":
        """Deep copy preserving node identifiers."""
        clone = DataTree.__new__(DataTree)
        clone._labels = dict(self._labels)
        clone._children = {node: list(children) for node, children in self._children.items()}
        clone._parent = dict(self._parent)
        clone._root = self._root
        clone._next_id = self._next_id
        clone._version = 0
        clone._index_cache = None
        clone._columnar_cache = None
        clone._journal = []
        clone._journal_base = 0
        clone._undo = None
        clone._snapshot_pins = None
        return clone

    def subtree_copy(self, node: NodeId) -> "DataTree":
        """A new tree whose root is a copy of *node* and its descendants.

        Node identifiers are re-allocated starting from 0 in the new tree.
        """
        self._require(node)
        result = DataTree(self._labels[node])
        mapping = {node: result.root}
        for current in self.descendants(node):
            parent = self._parent[current]
            assert parent is not None
            mapping[current] = result.add_child(mapping[parent], self._labels[current])
        return result

    def is_ancestor_closed(self, nodes: Iterable[NodeId]) -> bool:
        """Whether *nodes* is closed under taking parents (and contains the root if non-empty)."""
        node_set = set(nodes)
        for node in node_set:
            self._require(node)
            parent = self._parent[node]
            if parent is not None and parent not in node_set:
                return False
        return True

    def ancestor_closure(self, nodes: Iterable[NodeId]) -> FrozenSet[NodeId]:
        """Smallest ancestor-closed superset of *nodes* (always contains the root)."""
        closure: Set[NodeId] = {self._root}
        for node in nodes:
            self._require(node)
            closure.add(node)
            closure.update(self.ancestors(node))
        return frozenset(closure)

    def restrict(self, nodes: Iterable[NodeId]) -> "DataTree":
        """The sub-datatree induced by an ancestor-closed node set.

        This realizes Definition 5: the result shares node identifiers with
        this tree, keeps only edges between retained nodes, has the same root
        and the restriction of the labeling.  Raises if the set is not
        ancestor-closed or does not contain the root.
        """
        node_set = set(nodes)
        if self._root not in node_set:
            raise InvalidTreeError("a sub-datatree must contain the root")
        if not self.is_ancestor_closed(node_set):
            raise InvalidTreeError("node set is not closed under parents")
        clone = DataTree.__new__(DataTree)
        clone._labels = {n: self._labels[n] for n in node_set}
        clone._children = {
            n: [c for c in self._children[n] if c in node_set] for n in node_set
        }
        clone._parent = {n: self._parent[n] for n in node_set}
        clone._root = self._root
        clone._next_id = self._next_id
        clone._version = 0
        clone._index_cache = None
        clone._columnar_cache = None
        clone._journal = []
        clone._journal_base = 0
        clone._undo = None
        clone._snapshot_pins = None
        return clone

    def prune_where(self, should_remove) -> "DataTree":
        """Copy of the tree with every node satisfying *should_remove* pruned.

        Pruning a node removes its whole subtree (as in Definition 4 where
        nodes with false conditions disappear together with their
        descendants).  The root is never pruned.  ``should_remove`` is a
        callable taking a node id.
        """
        kept: Set[NodeId] = {self._root}
        stack = [c for c in self._children[self._root] if not should_remove(c)]
        while stack:
            node = stack.pop()
            kept.add(node)
            stack.extend(c for c in self._children[node] if not should_remove(c))
        return self.restrict(kept)

    # -- conversions -------------------------------------------------------

    def to_nested(self, node: Optional[NodeId] = None) -> tuple:
        """Nested-tuple view ``(label, [child, ...])`` rooted at *node*.

        Children are sorted by their own nested representation so the output
        is canonical enough for debugging (but use
        :func:`repro.trees.isomorphism.canonical_encoding` for real
        comparisons).
        """
        if node is None:
            node = self._root
        self._require(node)
        children = sorted(self.to_nested(child) for child in self._children[node])
        return (self._labels[node], children)

    @staticmethod
    def from_nested(nested: Sequence) -> "DataTree":
        """Inverse of :meth:`to_nested` (also accepts a bare label string)."""
        if isinstance(nested, str):
            return DataTree(nested)
        label, children = nested
        result = DataTree(label)
        DataTree._attach_nested(result, result.root, children)
        return result

    @staticmethod
    def _attach_nested(result: "DataTree", parent: NodeId, children: Sequence) -> None:
        for child in children:
            if isinstance(child, str):
                result.add_child(parent, child)
                continue
            label, grandchildren = child
            node = result.add_child(parent, label)
            DataTree._attach_nested(result, node, grandchildren)

    # -- equality (identity of ids + labels + structure) ---------------------

    def same_tree(self, other: "DataTree") -> bool:
        """Exact equality: same node ids, labels and parent relation.

        This is *not* isomorphism; see :mod:`repro.trees.isomorphism` for the
        structural notion of Definition 1.
        """
        return (
            self._root == other._root
            and self._labels == other._labels
            and self._parent == other._parent
            and {n: set(c) for n, c in self._children.items()}
            == {n: set(c) for n, c in other._children.items()}
        )

    def __repr__(self) -> str:
        return f"DataTree({self.to_nested()!r})"

    # -- internal ----------------------------------------------------------

    def _require(self, node: NodeId) -> None:
        if node not in self._labels:
            raise NodeNotFoundError(f"node {node!r} does not belong to this tree")

    def _record(self, op: str, node: NodeId, payload: tuple) -> None:
        """Journal one mutation and bump the version.

        The cached :class:`~repro.trees.index.TreeIndex` is deliberately NOT
        dropped here: it stays attached (stale) so :func:`tree_index` can
        patch it forward by replaying the journal instead of rebuilding.
        """
        journal = self._journal
        journal.append((op, node, payload))
        if self._undo is None:
            # Trimming is deferred while a transaction is open so rollback
            # can truncate the journal back to its begin-mark without the
            # base version having moved underneath it.
            self._trim_journal()
        self._version += 1

    def _trim_journal(self) -> None:
        journal = self._journal
        if len(journal) > JOURNAL_LIMIT:
            drop = len(journal) - JOURNAL_LIMIT // 2
            del journal[:drop]
            self._journal_base += drop

    def _notify_write(self) -> None:
        """Give pinned snapshots their copy-on-write chance before mutating."""
        pins = self._snapshot_pins
        if pins is not None:
            pins.before_write()

    # -- transactions (undo log) -------------------------------------------
    #
    # Driven by repro.core.transactions.Transaction.  While ``_undo`` is a
    # list, every mutator pushes idempotent inverse records *before* touching
    # the structure it describes, so replaying the log in reverse restores
    # the maps byte for byte no matter where inside a mutator an exception
    # struck.

    def begin_undo(self) -> tuple:
        """Open an undo scope; returns the opaque rollback mark."""
        if self._undo is not None:
            raise TransactionError("this tree is already inside a transaction")
        self._undo = []
        return (self._version, len(self._journal), self._journal_base, self._next_id)

    def commit_undo(self) -> None:
        """Close the undo scope, keeping every mutation made inside it."""
        self._undo = None
        self._trim_journal()

    def rollback_undo(self, mark: tuple) -> None:
        """Close the undo scope, restoring the state captured by *mark*."""
        version, journal_length, journal_base, next_id = mark
        entries = self._undo
        self._undo = None
        if entries:
            for entry in reversed(entries):
                self._apply_undo(entry)
        assert self._journal_base == journal_base  # trim is deferred in-txn
        del self._journal[journal_length:]
        self._version = version
        self._next_id = next_id
        cached = self._index_cache
        if cached is not None and cached.version > self._version:
            # The index was patched past the restored version; the journal
            # entries anchoring it were rolled back, so drop it.  (An index
            # merely stale from before the transaction is still patchable
            # and stays; a mid-patch-poisoned one rebuilds on next access.)
            self._index_cache = None
        column = self._columnar_cache
        if column is not None and column.version > self._version:
            # Same hazard for the columnar snapshot: the version counter
            # rewinds, so a column stamped with a rolled-back version could
            # later collide with a *different* tree at the same number.
            self._columnar_cache = None

    def _apply_undo(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "children":
            self._children[entry[1]] = entry[2]
        elif kind == "forget_node":
            node = entry[1]
            self._labels.pop(node, None)
            self._children.pop(node, None)
            self._parent.pop(node, None)
        elif kind == "label":
            self._labels[entry[1]] = entry[2]
        elif kind == "next_id":
            self._next_id = entry[1]
        else:  # restore_nodes
            _, labels, children, parents = entry
            self._labels.update(labels)
            for node, child_list in children.items():
                self._children[node] = list(child_list)
            self._parent.update(parents)


__all__ = ["DataTree", "NodeId", "JOURNAL_LIMIT"]
