"""Columnar (struct-of-arrays) tree storage with a zero-copy disk format.

The object :class:`~repro.trees.datatree.DataTree` spends one Python object
and three dict entries per node; past ~100k nodes every whole-tree pass the
compiled matcher makes (candidate seeding, semijoin pruning) is dominated by
pointer chasing.  A :class:`ColumnarTree` stores the same structural facts
the :class:`~repro.trees.index.TreeIndex` derives — preorder intervals,
depths, parents, label postings — as **flat parallel arrays indexed by
preorder rank**:

* ``node_ids[r]``    — the :class:`DataTree` node identifier at rank ``r``;
* ``parent_ranks[r]`` — rank of the parent (``-1`` for the root);
* ``last_ranks[r]``  — the largest rank in the subtree of ``r`` (so the
  subtree of ``r`` is exactly the rank interval ``[r, last_ranks[r]]``);
* ``depths[r]``      — edges to the root;
* ``label_codes[r]`` — index into the sorted ``label_table``;
* per-label posting lists of ranks, concatenated into one array with a
  CSR-style offsets table.

Arrays are numpy ``int64`` when numpy is importable and stdlib
``array('q')`` otherwise — the same optionality shape as
:mod:`repro.formulas.sampling` (the library never *requires* numpy, it just
gets faster with it).  The columnar matcher (``matcher="columnar"``, see
:class:`repro.queries.plan.ColumnarPlan`) turns the per-node Python loops of
candidate seeding and descendant semijoins into vectorized interval merges
over these arrays.

The on-disk format (:meth:`ColumnarTree.save` / :meth:`ColumnarTree.load`)
is a JSON header followed by the raw native-endian arrays; :meth:`load`
memory-maps the file and builds **zero-copy views** into the mapping, so a
large corpus opens in O(header) time instead of re-parsing XML.

Staleness contract: a :class:`ColumnarTree` built from a live tree records
the tree's mutation :attr:`~repro.trees.datatree.DataTree.version` and is a
*snapshot* — it is never patched in place.  Use :func:`columnar_tree` (the
cached accessor, mirroring :func:`~repro.trees.index.tree_index`) to always
get a fresh column; a *held* handle whose source tree has mutated raises a
typed :class:`~repro.utils.errors.StaleColumnarTreeError` instead of serving
torn arrays.
"""

from __future__ import annotations

import json
import mmap
import os
import sys
import weakref
from array import array
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised through whichever backend is present
    import numpy as _np
except ImportError:  # pragma: no cover - pure-python fallback container
    _np = None

from repro.trees.datatree import DataTree, NodeId
from repro.utils.errors import ColumnarFormatError, StaleColumnarTreeError

#: File magic of the columnar disk format (version 1).
MAGIC = b"RPROCOL1"

#: The parallel arrays, in their fixed on-disk order.
_ARRAY_NAMES = (
    "node_ids",
    "parent_ranks",
    "last_ranks",
    "depths",
    "label_codes",
    "posting_ranks",
    "posting_offsets",
)

_ITEM_SIZE = 8  # int64 everywhere — simple, alignment-friendly, mmap-able


def have_numpy() -> bool:
    """Whether the numpy backend is active (module-level switch, test-patchable)."""
    return _np is not None


def _freeze(values: List[int]):
    """An int64 column from a built-up Python list (numpy or array fallback)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


class ColumnarTree:
    """One document's structure as flat parallel arrays (preorder-rank indexed).

    Build with :meth:`from_tree` (or the cached :func:`columnar_tree`
    accessor), persist with :meth:`save`, reopen with :meth:`load`.  The
    arrays are exposed directly (``last_ranks``, ``parent_ranks``, ...) for
    the vectorized matcher — treat them as read-only; a column is an
    immutable snapshot of one tree version.
    """

    __slots__ = (
        "node_ids",
        "parent_ranks",
        "last_ranks",
        "depths",
        "label_codes",
        "posting_ranks",
        "posting_offsets",
        "label_table",
        "version",
        "_source",
        "_code_of",
        "_nonroot",
        "_children_order",
        "_children_offsets",
        "_mmap",
    )

    def __init__(self) -> None:
        raise TypeError(
            "ColumnarTree cannot be built directly; use ColumnarTree.from_tree, "
            "ColumnarTree.load or the columnar_tree accessor"
        )

    @classmethod
    def _blank(cls) -> "ColumnarTree":
        self = cls.__new__(cls)
        self._source = None
        self._code_of = None
        self._nonroot = None
        self._children_order = None
        self._children_offsets = None
        self._mmap = None
        return self

    # -- construction --------------------------------------------------------

    @classmethod
    def from_tree(cls, tree: DataTree) -> "ColumnarTree":
        """Snapshot *tree* into columnar form (one O(n) DFS).

        The column records ``tree.version`` and keeps a weak reference to
        the source, so using it after the tree mutates raises
        :class:`StaleColumnarTreeError` (see :meth:`require_fresh`).
        """
        node_ids: List[int] = []
        parent_ranks: List[int] = []
        last_ranks: List[int] = []
        depths: List[int] = []
        labels: List[str] = []
        rank_of: Dict[NodeId, int] = {}
        # Iterative DFS in child insertion order — the same visit order as
        # TreeIndex, so sibling ranks ascend in insertion order and the
        # columnar matcher enumerates embeddings in the same order as the
        # object-plan matcher.
        stack: List[Tuple[NodeId, bool]] = [(tree.root, True)]
        while stack:
            node, enter = stack.pop()
            if not enter:
                last_ranks[rank_of[node]] = len(node_ids) - 1
                continue
            rank = len(node_ids)
            rank_of[node] = rank
            node_ids.append(node)
            parent = tree.parent(node)
            parent_rank = -1 if parent is None else rank_of[parent]
            parent_ranks.append(parent_rank)
            depths.append(0 if parent_rank < 0 else depths[parent_rank] + 1)
            labels.append(tree.label(node))
            last_ranks.append(rank)
            stack.append((node, False))
            for child in reversed(tree.children(node)):
                stack.append((child, True))

        label_table = tuple(sorted(set(labels)))
        code_of = {label: code for code, label in enumerate(label_table)}
        label_codes = [code_of[label] for label in labels]
        # CSR postings: ranks grouped by label code, each group ascending.
        counts = [0] * (len(label_table) + 1)
        for code in label_codes:
            counts[code + 1] += 1
        offsets = counts
        for index in range(1, len(offsets)):
            offsets[index] += offsets[index - 1]
        posting_ranks = [0] * len(label_codes)
        cursor = list(offsets)
        for rank, code in enumerate(label_codes):
            posting_ranks[cursor[code]] = rank
            cursor[code] += 1

        self = cls._blank()
        self.node_ids = _freeze(node_ids)
        self.parent_ranks = _freeze(parent_ranks)
        self.last_ranks = _freeze(last_ranks)
        self.depths = _freeze(depths)
        self.label_codes = _freeze(label_codes)
        self.posting_ranks = _freeze(posting_ranks)
        self.posting_offsets = _freeze(offsets)
        self.label_table = label_table
        self.version = tree.version
        self._source = weakref.ref(tree)
        return self

    # -- staleness -----------------------------------------------------------

    def is_fresh(self) -> bool:
        """Whether the source tree (if still alive) is at this column's version."""
        source = self._source() if self._source is not None else None
        return source is None or source.version == self.version

    def require_fresh(self) -> None:
        """Raise :class:`StaleColumnarTreeError` if the source tree has moved on.

        Columns are immutable snapshots — unlike a
        :class:`~repro.trees.index.TreeIndex` they are never patched in
        place, so a version mismatch means every rank, interval and posting
        may describe nodes that no longer exist.  Serving those arrays would
        silently return wrong (or phantom) matches; the typed error makes
        the broken handle loud.  Fresh columns come from
        :func:`columnar_tree`, never from holding on to an old one.
        """
        source = self._source() if self._source is not None else None
        if source is not None and source.version != self.version:
            raise StaleColumnarTreeError(
                f"this ColumnarTree snapshot was built at tree version "
                f"{self.version} but the tree is now at version "
                f"{source.version}; re-fetch it through columnar_tree()"
            )

    # -- basic accessors -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def root_label(self) -> str:
        return self.label_table[self.label_codes[0]]

    def label_of(self, rank: int) -> str:
        return self.label_table[self.label_codes[rank]]

    def label_code(self, label: str) -> int:
        """The code of *label* in this column's table, or ``-1`` when absent."""
        code_of = self._code_of
        if code_of is None:
            code_of = {lbl: code for code, lbl in enumerate(self.label_table)}
            self._code_of = code_of
        return code_of.get(label, -1)

    def postings(self, code: int):
        """Preorder-sorted ranks carrying label *code* (zero-copy slice)."""
        if code < 0:
            return self.posting_ranks[0:0]
        return self.posting_ranks[self.posting_offsets[code] : self.posting_offsets[code + 1]]

    def nonroot_ranks(self):
        """All ranks except the root, shared across calls (wildcard seeding)."""
        cached = self._nonroot
        if cached is None:
            if _np is not None:
                cached = _np.arange(1, self.node_count, dtype=_np.int64)
            else:
                cached = range(1, self.node_count)
            self._nonroot = cached
        return cached

    def children_of(self, rank: int):
        """Child ranks of *rank*, ascending (== child insertion order)."""
        offsets, order = self._children_offsets, self._children_order
        if offsets is None:
            order, offsets = self._build_children()
        return order[offsets[rank] : offsets[rank + 1]]

    def _build_children(self):
        """Lazy CSR of the child relation (ranks grouped by parent rank)."""
        n = self.node_count
        parents = self.parent_ranks
        if _np is not None:
            # Stable argsort keeps sibling ranks ascending within a parent;
            # the root's -1 parent sorts first and is skipped by the +1.
            order = _np.argsort(parents, kind="stable").astype(_np.int64)[1:]
            sorted_parents = parents[order] if len(order) else parents[:0]
            offsets = _np.searchsorted(
                sorted_parents, _np.arange(n + 1, dtype=_np.int64), side="left"
            ).astype(_np.int64)
        else:
            counts = [0] * (n + 1)
            for rank in range(1, n):
                counts[parents[rank] + 1] += 1
            for index in range(1, n + 1):
                counts[index] += counts[index - 1]
            offsets = counts
            order_list = [0] * (n - 1 if n else 0)
            cursor = list(offsets)
            for rank in range(1, n):
                parent = parents[rank]
                order_list[cursor[parent]] = rank
                cursor[parent] += 1
            order = array("q", order_list)
            offsets = array("q", offsets)
        self._children_order = order
        self._children_offsets = offsets
        return order, offsets

    # -- conversions ---------------------------------------------------------

    def to_tree(self) -> DataTree:
        """Materialize an object :class:`DataTree` (node identifiers preserved).

        The inverse of :meth:`from_tree` up to the journal (the result is a
        fresh tree at version 0).  Ranks ascend in sibling insertion order,
        so one pass rebuilds the child lists in their original order.
        """
        node_ids = self.node_ids
        parents = self.parent_ranks
        labels = {}
        children: Dict[NodeId, List[NodeId]] = {}
        parent_map: Dict[NodeId, Optional[NodeId]] = {}
        for rank in range(self.node_count):
            node = int(node_ids[rank])
            labels[node] = self.label_of(rank)
            children[node] = []
            parent_rank = parents[rank]
            if parent_rank < 0:
                parent_map[node] = None
            else:
                parent = int(node_ids[parent_rank])
                parent_map[node] = parent
                children[parent].append(node)
        tree = DataTree.__new__(DataTree)
        tree._labels = labels
        tree._children = children
        tree._parent = parent_map
        tree._root = int(node_ids[0])
        tree._next_id = (max(labels) + 1) if labels else 1
        tree._version = 0
        tree._index_cache = None
        tree._columnar_cache = None
        tree._journal = []
        tree._journal_base = 0
        tree._undo = None
        tree._snapshot_pins = None
        return tree

    def matches(self, pattern):
        """All embeddings of *pattern* against this column (no object tree).

        Convenience for columns loaded from disk: matching needs only the
        arrays, so a saved corpus can answer pattern/boolean queries without
        ever materializing :class:`DataTree` objects.
        """
        from repro.queries.plan import ColumnarPlan  # local: plan imports us

        return ColumnarPlan(pattern, self).matches()

    def structural_state(self) -> Dict[str, tuple]:
        """Canonical tuple snapshot of every column (differential/IO tests)."""
        state = {name: tuple(getattr(self, name)) for name in _ARRAY_NAMES}
        state["label_table"] = self.label_table
        state["version"] = self.version
        return state

    # -- disk format ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the column to *path* (native-endian int64 arrays + JSON header)."""
        arrays = {}
        blobs = []
        offset = 0
        for name in _ARRAY_NAMES:
            column = getattr(self, name)
            if _np is not None:
                blob = _np.ascontiguousarray(column, dtype=_np.int64).tobytes()
            else:
                blob = column.tobytes()
            arrays[name] = (offset, len(column))
            blobs.append(blob)
            offset += len(blob)
        header = json.dumps(
            {
                "node_count": self.node_count,
                "label_table": list(self.label_table),
                "version": self.version,
                "byteorder": sys.byteorder,
                "arrays": {name: list(span) for name, span in arrays.items()},
            }
        ).encode("utf-8")
        prefix = MAGIC + len(header).to_bytes(8, "little") + header
        padding = (-len(prefix)) % _ITEM_SIZE
        with open(path, "wb") as handle:
            handle.write(prefix + b"\0" * padding)
            for blob in blobs:
                handle.write(blob)

    @classmethod
    def load(cls, path) -> "ColumnarTree":
        """Memory-map *path*; array columns are zero-copy views into the map.

        O(header) — no per-node work at all: with numpy the columns are
        ``frombuffer`` views, without it ``memoryview.cast('q')`` slices,
        both directly over the OS page cache.  The mapping stays alive as
        long as the returned column (any views pin it).  Raises
        :class:`ColumnarFormatError` on a foreign or corrupt file, including
        an endianness mismatch (the format is native-endian by design —
        byte-swapping would forfeit the zero-copy load).
        """
        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # empty file cannot be mapped
                raise ColumnarFormatError(f"not a columnar tree file: {path}") from exc
        if mapped[: len(MAGIC)] != MAGIC:
            mapped.close()
            raise ColumnarFormatError(f"not a columnar tree file: {path}")
        try:
            header_length = int.from_bytes(mapped[len(MAGIC) : len(MAGIC) + 8], "little")
            header_start = len(MAGIC) + 8
            header = json.loads(mapped[header_start : header_start + header_length])
            if header["byteorder"] != sys.byteorder:
                raise ColumnarFormatError(
                    f"columnar file {path} was written on a "
                    f"{header['byteorder']}-endian machine; this machine is "
                    f"{sys.byteorder}-endian (the format is native-endian for "
                    f"zero-copy loads)"
                )
            base = header_start + header_length
            base += (-base) % _ITEM_SIZE
            self = cls._blank()
            view = memoryview(mapped)
            for name in _ARRAY_NAMES:
                offset, count = header["arrays"][name]
                start = base + offset
                stop = start + count * _ITEM_SIZE
                if stop > len(mapped):
                    raise ColumnarFormatError(
                        f"columnar file {path} is truncated ({name} ends at "
                        f"{stop}, file has {len(mapped)} bytes)"
                    )
                if _np is not None:
                    column = _np.frombuffer(
                        mapped, dtype=_np.int64, count=count, offset=start
                    )
                else:
                    column = view[start:stop].cast("q")
                setattr(self, name, column)
            self.label_table = tuple(header["label_table"])
            self.version = int(header["version"])
            self._mmap = mapped
            return self
        except ColumnarFormatError:
            raise
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            raise ColumnarFormatError(f"corrupt columnar tree file: {path}") from exc

    def __repr__(self) -> str:
        backend = "numpy" if _np is not None else "array"
        return (
            f"ColumnarTree(nodes={self.node_count}, "
            f"labels={len(self.label_table)}, version={self.version}, "
            f"backend={backend!r}, mmap={self._mmap is not None})"
        )


def columnar_tree(tree: DataTree) -> ColumnarTree:
    """The shared :class:`ColumnarTree` snapshot of *tree*, rebuilt when stale.

    Mirrors :func:`~repro.trees.index.tree_index`: the snapshot is cached on
    the tree and compared against the tree's mutation version on every call.
    Unlike the structural index there is no incremental patching — columns
    are flat arrays whose every suffix shifts on mutation, so a stale cache
    is simply rebuilt (one vectorizable O(n) pass).  Mixed update/query
    workloads should keep ``matcher="indexed"``; columnar wins on
    read-mostly large documents.
    """
    cached = tree._columnar_cache
    if cached is not None and cached.version == tree.version:
        return cached
    column = ColumnarTree.from_tree(tree)
    tree._columnar_cache = column
    return column


__all__ = ["ColumnarTree", "columnar_tree", "have_numpy", "MAGIC"]
