"""Columnar (struct-of-arrays) tree storage with a zero-copy disk format.

The object :class:`~repro.trees.datatree.DataTree` spends one Python object
and three dict entries per node; past ~100k nodes every whole-tree pass the
compiled matcher makes (candidate seeding, semijoin pruning) is dominated by
pointer chasing.  A :class:`ColumnarTree` stores the same structural facts
the :class:`~repro.trees.index.TreeIndex` derives — preorder intervals,
depths, parents, label postings — as **flat parallel arrays indexed by
preorder rank**:

* ``node_ids[r]``    — the :class:`DataTree` node identifier at rank ``r``;
* ``parent_ranks[r]`` — rank of the parent (``-1`` for the root);
* ``last_ranks[r]``  — the largest rank in the subtree of ``r`` (so the
  subtree of ``r`` is exactly the rank interval ``[r, last_ranks[r]]``);
* ``depths[r]``      — edges to the root;
* ``label_codes[r]`` — index into the sorted ``label_table``;
* per-label posting lists of ranks, concatenated into one array with a
  CSR-style offsets table.

Arrays are numpy ``int64`` when numpy is importable and stdlib
``array('q')`` otherwise — the same optionality shape as
:mod:`repro.formulas.sampling` (the library never *requires* numpy, it just
gets faster with it).  The columnar matcher (``matcher="columnar"``, see
:class:`repro.queries.plan.ColumnarPlan`) turns the per-node Python loops of
candidate seeding and descendant semijoins into vectorized interval merges
over these arrays.

The on-disk format (:meth:`ColumnarTree.save` / :meth:`ColumnarTree.load`)
is a JSON header followed by the raw native-endian arrays; :meth:`load`
memory-maps the file and builds **zero-copy views** into the mapping, so a
large corpus opens in O(header) time instead of re-parsing XML.

Staleness contract: a :class:`ColumnarTree` built from a live tree records
the tree's mutation :attr:`~repro.trees.datatree.DataTree.version` and is a
*snapshot* — it is never patched in place.  Use :func:`columnar_tree` (the
cached accessor, mirroring :func:`~repro.trees.index.tree_index`) to always
get a fresh column; a *held* handle whose source tree has mutated raises a
typed :class:`~repro.utils.errors.StaleColumnarTreeError` instead of serving
torn arrays.

Incremental maintenance: the accessor does **not** rebuild a stale cached
column from scratch when the pending mutations are few.  :meth:`ColumnarTree.patch`
replays the tree's mutation journal (``mutations_since``) over the stale
arrays as bounded splices — ``np.insert``/masked rank shifts confined to the
affected preorder interval on the numpy backend, the observationally
identical list splices on the fallback — and produces a **new** column at
the tree's current version.  Held snapshots are never touched (copy-on-patch
keeps the staleness contract intact); past
:data:`~repro.trees.index.PATCH_JOURNAL_LIMIT` pending entries a full
:meth:`ColumnarTree.from_tree` rebuild is cheaper and is what happens.

Bulk ingest: :meth:`ColumnarTree.from_xml` builds the flat arrays straight
from an XML document in one pass — no per-node :class:`DataTree` objects on
the hot path — producing a column byte-identical to
``ColumnarTree.from_tree(datatree_from_xml(text))``.
"""

from __future__ import annotations

import json
import mmap
import os
import sys
import weakref
from array import array
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised through whichever backend is present
    import numpy as _np
except ImportError:  # pragma: no cover - pure-python fallback container
    _np = None

from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import PATCH_JOURNAL_LIMIT
from repro.utils.errors import (
    ColumnarFormatError,
    InvalidTreeError,
    StaleColumnarTreeError,
)
from repro.utils.faults import fire

#: File magic of the columnar disk format (version 1).
MAGIC = b"RPROCOL1"

#: The parallel arrays, in their fixed on-disk order.
_ARRAY_NAMES = (
    "node_ids",
    "parent_ranks",
    "last_ranks",
    "depths",
    "label_codes",
    "posting_ranks",
    "posting_offsets",
)

_ITEM_SIZE = 8  # int64 everywhere — simple, alignment-friendly, mmap-able


def have_numpy() -> bool:
    """Whether the numpy backend is active (module-level switch, test-patchable)."""
    return _np is not None


def _freeze(values: List[int]):
    """An int64 column from a built-up Python list (numpy or array fallback)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


class ColumnarTree:
    """One document's structure as flat parallel arrays (preorder-rank indexed).

    Build with :meth:`from_tree` (or the cached :func:`columnar_tree`
    accessor), persist with :meth:`save`, reopen with :meth:`load`.  The
    arrays are exposed directly (``last_ranks``, ``parent_ranks``, ...) for
    the vectorized matcher — treat them as read-only; a column is an
    immutable snapshot of one tree version.
    """

    __slots__ = (
        "node_ids",
        "parent_ranks",
        "last_ranks",
        "depths",
        "label_codes",
        "posting_ranks",
        "posting_offsets",
        "label_table",
        "version",
        "_source",
        "_code_of",
        "_nonroot",
        "_children_order",
        "_children_offsets",
        "_mmap",
    )

    def __init__(self) -> None:
        raise TypeError(
            "ColumnarTree cannot be built directly; use ColumnarTree.from_tree, "
            "ColumnarTree.load or the columnar_tree accessor"
        )

    @classmethod
    def _blank(cls) -> "ColumnarTree":
        self = cls.__new__(cls)
        self._source = None
        self._code_of = None
        self._nonroot = None
        self._children_order = None
        self._children_offsets = None
        self._mmap = None
        return self

    # -- construction --------------------------------------------------------

    @classmethod
    def from_tree(cls, tree: DataTree) -> "ColumnarTree":
        """Snapshot *tree* into columnar form (one O(n) DFS).

        The column records ``tree.version`` and keeps a weak reference to
        the source, so using it after the tree mutates raises
        :class:`StaleColumnarTreeError` (see :meth:`require_fresh`).
        """
        node_ids: List[int] = []
        parent_ranks: List[int] = []
        last_ranks: List[int] = []
        depths: List[int] = []
        labels: List[str] = []
        rank_of: Dict[NodeId, int] = {}
        # Iterative DFS in child insertion order — the same visit order as
        # TreeIndex, so sibling ranks ascend in insertion order and the
        # columnar matcher enumerates embeddings in the same order as the
        # object-plan matcher.
        stack: List[Tuple[NodeId, bool]] = [(tree.root, True)]
        while stack:
            node, enter = stack.pop()
            if not enter:
                last_ranks[rank_of[node]] = len(node_ids) - 1
                continue
            rank = len(node_ids)
            rank_of[node] = rank
            node_ids.append(node)
            parent = tree.parent(node)
            parent_rank = -1 if parent is None else rank_of[parent]
            parent_ranks.append(parent_rank)
            depths.append(0 if parent_rank < 0 else depths[parent_rank] + 1)
            labels.append(tree.label(node))
            last_ranks.append(rank)
            stack.append((node, False))
            for child in reversed(tree.children(node)):
                stack.append((child, True))

        return cls._assemble(
            node_ids, parent_ranks, last_ranks, depths, labels, tree.version, tree
        )

    @classmethod
    def _assemble(
        cls,
        node_ids: List[int],
        parent_ranks: List[int],
        last_ranks: List[int],
        depths: List[int],
        labels: List[str],
        version: int,
        source: Optional[DataTree],
    ) -> "ColumnarTree":
        """Freeze flat per-rank lists (labels still as strings) into a column."""
        label_table = tuple(sorted(set(labels)))
        code_of = {label: code for code, label in enumerate(label_table)}
        label_codes = [code_of[label] for label in labels]
        # CSR postings: ranks grouped by label code, each group ascending.
        counts = [0] * (len(label_table) + 1)
        for code in label_codes:
            counts[code + 1] += 1
        offsets = counts
        for index in range(1, len(offsets)):
            offsets[index] += offsets[index - 1]
        posting_ranks = [0] * len(label_codes)
        cursor = list(offsets)
        for rank, code in enumerate(label_codes):
            posting_ranks[cursor[code]] = rank
            cursor[code] += 1

        self = cls._blank()
        self.node_ids = _freeze(node_ids)
        self.parent_ranks = _freeze(parent_ranks)
        self.last_ranks = _freeze(last_ranks)
        self.depths = _freeze(depths)
        self.label_codes = _freeze(label_codes)
        self.posting_ranks = _freeze(posting_ranks)
        self.posting_offsets = _freeze(offsets)
        self.label_table = label_table
        self.version = version
        self._source = None if source is None else weakref.ref(source)
        return self

    @classmethod
    def from_xml(cls, text: str) -> "ColumnarTree":
        """Build a column straight from a ``<node>`` XML document, in one pass.

        The bulk-ingest fast path: no per-node :class:`DataTree` objects (or
        dict entries, or journal records) are materialized — the element tree
        is walked once and the flat rank-indexed lists are appended to
        directly.  Node identifiers are allocated in preorder starting at 0,
        exactly as :func:`repro.xmlio.parse.datatree_from_xml` would allocate
        them, so every array is byte-identical to
        ``ColumnarTree.from_tree(datatree_from_xml(text))`` — only the
        version stamp differs (0 here, like any freshly ingested document)
        and there is no live-tree backref, so a column ingested this way
        never goes stale.
        """
        import xml.etree.ElementTree as ET

        element = ET.fromstring(text)
        if element.tag != "node":
            raise InvalidTreeError(
                f"expected a <node> root element, got <{element.tag}>"
            )
        parent_ranks: List[int] = []
        last_ranks: List[int] = []
        depths: List[int] = []
        labels: List[str] = []
        # (element, parent_rank) entries open a node; (None, rank) close it.
        stack: List[Tuple[Optional[ET.Element], int]] = [(element, -1)]
        while stack:
            node, parent_rank = stack.pop()
            if node is None:
                last_ranks[parent_rank] = len(labels) - 1
                continue
            rank = len(labels)
            parent_ranks.append(parent_rank)
            depths.append(0 if parent_rank < 0 else depths[parent_rank] + 1)
            labels.append(node.get("label", ""))
            last_ranks.append(rank)
            stack.append((None, rank))
            children = [child for child in node if child.tag == "node"]
            for child in reversed(children):
                stack.append((child, rank))
        node_ids = list(range(len(labels)))
        return cls._assemble(
            node_ids, parent_ranks, last_ranks, depths, labels, 0, None
        )

    # -- incremental maintenance ---------------------------------------------

    def patch(self, tree: Optional[DataTree] = None) -> Optional["ColumnarTree"]:
        """A **new** column at *tree*'s current version, derived from this one.

        Replays the journal suffix ``tree.mutations_since(self.version)``
        over copies of this column's arrays as bounded splices: an
        ``add_child`` inserts one slot at the new preorder rank and shifts
        only the ranks at or after it, a ``delete_subtree`` removes one
        contiguous rank interval, a ``set_label`` moves one posting.  On the
        numpy backend the shifts are vectorized (``np.insert`` plus masked
        adds); the pure-Python fallback performs the observationally
        identical list splices.

        Mirrors :meth:`~repro.trees.index.TreeIndex.patch` with one
        deliberate difference: the stale column is **not** updated in place.
        Held handles stay immutable (and keep raising
        :class:`StaleColumnarTreeError`) — only the
        :func:`columnar_tree` accessor swaps the patched replacement into
        the tree's cache.

        Returns ``None`` when patching is not possible or not worthwhile
        (no live source tree, *tree* is not this column's source, the
        journal no longer reaches back, or the suffix exceeds
        :data:`~repro.trees.index.PATCH_JOURNAL_LIMIT` — a rebuild is then
        cheaper), and ``self`` when already fresh.  Each replayed entry
        crosses the ``"columnar.patch"`` fault site; a fault mid-replay
        discards the partial replacement and *poisons* this column
        (``version = -1``) so the next accessor call rebuilds instead of
        replaying into the same fault.
        """
        source = self._source() if self._source is not None else None
        if tree is None:
            tree = source
        if tree is None or source is not tree:
            return None
        if self.version == tree.version:
            return self
        if self.version < 0:  # poisoned by an earlier mid-patch fault
            return None
        entries = tree.mutations_since(self.version)
        if entries is None or len(entries) > PATCH_JOURNAL_LIMIT:
            return None
        try:
            state = _PatchState(self)
            for op, node, payload in entries:
                fire("columnar.patch")
                state.apply(op, node, payload)
            return state.freeze(tree)
        except BaseException:
            self.version = -1
            raise

    # -- staleness -----------------------------------------------------------

    def is_fresh(self) -> bool:
        """Whether the source tree (if still alive) is at this column's version."""
        source = self._source() if self._source is not None else None
        return source is None or source.version == self.version

    def require_fresh(self) -> None:
        """Raise :class:`StaleColumnarTreeError` if the source tree has moved on.

        Columns are immutable snapshots — unlike a
        :class:`~repro.trees.index.TreeIndex` they are never patched in
        place, so a version mismatch means every rank, interval and posting
        may describe nodes that no longer exist.  Serving those arrays would
        silently return wrong (or phantom) matches; the typed error makes
        the broken handle loud.  Fresh columns come from
        :func:`columnar_tree`, never from holding on to an old one.
        """
        source = self._source() if self._source is not None else None
        if source is not None and source.version != self.version:
            raise StaleColumnarTreeError(
                f"this ColumnarTree snapshot was built at tree version "
                f"{self.version} but the tree is now at version "
                f"{source.version}; re-fetch it through columnar_tree()"
            )

    # -- basic accessors -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def root_label(self) -> str:
        return self.label_table[self.label_codes[0]]

    def label_of(self, rank: int) -> str:
        return self.label_table[self.label_codes[rank]]

    def label_code(self, label: str) -> int:
        """The code of *label* in this column's table, or ``-1`` when absent."""
        code_of = self._code_of
        if code_of is None:
            code_of = {lbl: code for code, lbl in enumerate(self.label_table)}
            self._code_of = code_of
        return code_of.get(label, -1)

    def postings(self, code: int):
        """Preorder-sorted ranks carrying label *code* (zero-copy slice)."""
        if code < 0:
            return self.posting_ranks[0:0]
        return self.posting_ranks[self.posting_offsets[code] : self.posting_offsets[code + 1]]

    def nonroot_ranks(self):
        """All ranks except the root, shared across calls (wildcard seeding)."""
        cached = self._nonroot
        if cached is None:
            if _np is not None:
                cached = _np.arange(1, self.node_count, dtype=_np.int64)
            else:
                cached = range(1, self.node_count)
            self._nonroot = cached
        return cached

    def children_of(self, rank: int):
        """Child ranks of *rank*, ascending (== child insertion order)."""
        offsets, order = self._children_offsets, self._children_order
        if offsets is None:
            order, offsets = self._build_children()
        return order[offsets[rank] : offsets[rank + 1]]

    def _build_children(self):
        """Lazy CSR of the child relation (ranks grouped by parent rank)."""
        n = self.node_count
        parents = self.parent_ranks
        if _np is not None:
            # Stable argsort keeps sibling ranks ascending within a parent;
            # the root's -1 parent sorts first and is skipped by the +1.
            order = _np.argsort(parents, kind="stable").astype(_np.int64)[1:]
            sorted_parents = parents[order] if len(order) else parents[:0]
            offsets = _np.searchsorted(
                sorted_parents, _np.arange(n + 1, dtype=_np.int64), side="left"
            ).astype(_np.int64)
        else:
            counts = [0] * (n + 1)
            for rank in range(1, n):
                counts[parents[rank] + 1] += 1
            for index in range(1, n + 1):
                counts[index] += counts[index - 1]
            offsets = counts
            order_list = [0] * (n - 1 if n else 0)
            cursor = list(offsets)
            for rank in range(1, n):
                parent = parents[rank]
                order_list[cursor[parent]] = rank
                cursor[parent] += 1
            order = array("q", order_list)
            offsets = array("q", offsets)
        self._children_order = order
        self._children_offsets = offsets
        return order, offsets

    # -- conversions ---------------------------------------------------------

    def to_tree(self) -> DataTree:
        """Materialize an object :class:`DataTree` (node identifiers preserved).

        The inverse of :meth:`from_tree` up to the journal (the result is a
        fresh tree at version 0).  Ranks ascend in sibling insertion order,
        so one pass rebuilds the child lists in their original order.
        """
        node_ids = self.node_ids
        parents = self.parent_ranks
        labels = {}
        children: Dict[NodeId, List[NodeId]] = {}
        parent_map: Dict[NodeId, Optional[NodeId]] = {}
        for rank in range(self.node_count):
            node = int(node_ids[rank])
            labels[node] = self.label_of(rank)
            children[node] = []
            parent_rank = parents[rank]
            if parent_rank < 0:
                parent_map[node] = None
            else:
                parent = int(node_ids[parent_rank])
                parent_map[node] = parent
                children[parent].append(node)
        tree = DataTree.__new__(DataTree)
        tree._labels = labels
        tree._children = children
        tree._parent = parent_map
        tree._root = int(node_ids[0])
        tree._next_id = (max(labels) + 1) if labels else 1
        tree._version = 0
        tree._index_cache = None
        tree._columnar_cache = None
        tree._journal = []
        tree._journal_base = 0
        tree._undo = None
        tree._snapshot_pins = None
        return tree

    def matches(self, pattern):
        """All embeddings of *pattern* against this column (no object tree).

        Convenience for columns loaded from disk: matching needs only the
        arrays, so a saved corpus can answer pattern/boolean queries without
        ever materializing :class:`DataTree` objects.
        """
        from repro.queries.plan import ColumnarPlan  # local: plan imports us

        return ColumnarPlan(pattern, self).matches()

    def structural_state(self) -> Dict[str, tuple]:
        """Canonical tuple snapshot of every column (differential/IO tests)."""
        state = {name: tuple(getattr(self, name)) for name in _ARRAY_NAMES}
        state["label_table"] = self.label_table
        state["version"] = self.version
        return state

    # -- disk format ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the column to *path* (native-endian int64 arrays + JSON header)."""
        arrays = {}
        blobs = []
        offset = 0
        for name in _ARRAY_NAMES:
            column = getattr(self, name)
            if _np is not None:
                blob = _np.ascontiguousarray(column, dtype=_np.int64).tobytes()
            else:
                blob = column.tobytes()
            arrays[name] = (offset, len(column))
            blobs.append(blob)
            offset += len(blob)
        header = json.dumps(
            {
                "node_count": self.node_count,
                "label_table": list(self.label_table),
                "version": self.version,
                "byteorder": sys.byteorder,
                "arrays": {name: list(span) for name, span in arrays.items()},
            }
        ).encode("utf-8")
        prefix = MAGIC + len(header).to_bytes(8, "little") + header
        padding = (-len(prefix)) % _ITEM_SIZE
        with open(path, "wb") as handle:
            handle.write(prefix + b"\0" * padding)
            for blob in blobs:
                handle.write(blob)

    @classmethod
    def load(cls, path) -> "ColumnarTree":
        """Memory-map *path*; array columns are zero-copy views into the map.

        O(header) — no per-node work at all: with numpy the columns are
        ``frombuffer`` views, without it ``memoryview.cast('q')`` slices,
        both directly over the OS page cache.  The mapping stays alive as
        long as the returned column (any views pin it).  Raises
        :class:`ColumnarFormatError` on a foreign or corrupt file, including
        an endianness mismatch (the format is native-endian by design —
        byte-swapping would forfeit the zero-copy load).
        """
        with open(path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # empty file cannot be mapped
                raise ColumnarFormatError(f"not a columnar tree file: {path}") from exc
        if mapped[: len(MAGIC)] != MAGIC:
            mapped.close()
            raise ColumnarFormatError(f"not a columnar tree file: {path}")
        try:
            header_length = int.from_bytes(mapped[len(MAGIC) : len(MAGIC) + 8], "little")
            header_start = len(MAGIC) + 8
            header = json.loads(mapped[header_start : header_start + header_length])
            if header["byteorder"] != sys.byteorder:
                raise ColumnarFormatError(
                    f"columnar file {path} was written on a "
                    f"{header['byteorder']}-endian machine; this machine is "
                    f"{sys.byteorder}-endian (the format is native-endian for "
                    f"zero-copy loads)"
                )
            base = header_start + header_length
            base += (-base) % _ITEM_SIZE
            self = cls._blank()
            view = memoryview(mapped)
            for name in _ARRAY_NAMES:
                offset, count = header["arrays"][name]
                start = base + offset
                stop = start + count * _ITEM_SIZE
                if stop > len(mapped):
                    raise ColumnarFormatError(
                        f"columnar file {path} is truncated ({name} ends at "
                        f"{stop}, file has {len(mapped)} bytes)"
                    )
                if _np is not None:
                    column = _np.frombuffer(
                        mapped, dtype=_np.int64, count=count, offset=start
                    )
                else:
                    column = view[start:stop].cast("q")
                setattr(self, name, column)
            self.label_table = tuple(header["label_table"])
            self.version = int(header["version"])
            self._mmap = mapped
            return self
        except ColumnarFormatError:
            raise
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            raise ColumnarFormatError(f"corrupt columnar tree file: {path}") from exc

    def __repr__(self) -> str:
        backend = "numpy" if _np is not None else "array"
        return (
            f"ColumnarTree(nodes={self.node_count}, "
            f"labels={len(self.label_table)}, version={self.version}, "
            f"backend={backend!r}, mmap={self._mmap is not None})"
        )


class _PatchState:
    """Working copies of one column's arrays while a journal suffix replays.

    Postings are exploded from their CSR encoding into one working list (or
    numpy array) per label code — every journal entry touches only one or
    two labels plus rank shifts, and re-concatenating at :meth:`freeze` is a
    straight memcpy, so the explode/concat pair is far cheaper than splicing
    the packed CSR arrays per entry.  New labels are *appended* to the
    working table (codes stay stable during the replay); :meth:`freeze`
    re-sorts the table and remaps the codes only when the label set actually
    changed.
    """

    __slots__ = (
        "np",
        "ids",
        "par",
        "last",
        "dep",
        "codes",
        "table",
        "code_of",
        "post",
        "table_dirty",
    )

    def __init__(self, column: ColumnarTree) -> None:
        np = _np
        self.np = np
        if np is not None:
            self.ids = np.array(column.node_ids, dtype=np.int64)
            self.par = np.array(column.parent_ranks, dtype=np.int64)
            self.last = np.array(column.last_ranks, dtype=np.int64)
            self.dep = np.array(column.depths, dtype=np.int64)
            self.codes = np.array(column.label_codes, dtype=np.int64)
        else:
            self.ids = list(column.node_ids)
            self.par = list(column.parent_ranks)
            self.last = list(column.last_ranks)
            self.dep = list(column.depths)
            self.codes = list(column.label_codes)
        self.table = list(column.label_table)
        self.code_of = {label: code for code, label in enumerate(self.table)}
        offsets = column.posting_offsets
        ranks = column.posting_ranks
        if np is not None:
            self.post = {
                code: np.array(
                    ranks[offsets[code] : offsets[code + 1]], dtype=np.int64
                )
                for code in range(len(self.table))
            }
        else:
            self.post = {
                code: list(ranks[offsets[code] : offsets[code + 1]])
                for code in range(len(self.table))
            }
        self.table_dirty = False

    # -- shared helpers ------------------------------------------------------

    def _rank_of(self, node: NodeId) -> int:
        if self.np is not None:
            hits = self.np.nonzero(self.ids == node)[0]
            if not len(hits):
                raise LookupError(f"node {node} not present in the column")
            return int(hits[0])
        return self.ids.index(node)

    def _code_for(self, label: str) -> int:
        code = self.code_of.get(label)
        if code is None:
            code = len(self.table)
            self.table.append(label)
            self.code_of[label] = code
            self.post[code] = (
                self.np.empty(0, dtype=self.np.int64) if self.np is not None else []
            )
            self.table_dirty = True
        return code

    # -- journal replay ------------------------------------------------------

    def apply(self, op: str, node: NodeId, payload: tuple) -> None:
        if op == "add_child":
            self._add_child(node, payload[0], payload[1])
        elif op == "set_label":
            self._set_label(node, payload[0], payload[1])
        elif op == "delete_subtree":
            self._delete_subtree(node)
        else:
            raise LookupError(f"unknown journal op {op!r}")

    def _add_child(self, node: NodeId, parent: NodeId, label: str) -> None:
        p = self._rank_of(parent)
        r = int(self.last[p]) + 1
        code = self._code_for(label)
        np = self.np
        if np is not None:
            positions = np.arange(len(self.ids), dtype=np.int64)
            self.ids = np.insert(self.ids, r, node)
            self.par = np.insert(self.par + (self.par >= r), r, p)
            # A node's interval grows iff its subtree shifted right (rank
            # >= r) or it is an ancestor-or-self of the parent (rank <= p
            # with an interval reaching the parent's old end r-1).
            grow = (positions >= r) | ((positions <= p) & (self.last >= r - 1))
            self.last = np.insert(self.last + grow, r, r)
            self.dep = np.insert(self.dep, r, int(self.dep[p]) + 1)
            self.codes = np.insert(self.codes, r, code)
            for group_code, group in self.post.items():
                group += group >= r
            group = self.post[code]
            self.post[code] = np.insert(
                group, int(np.searchsorted(group, r)), r
            )
        else:
            par = self.par
            for index in range(len(par)):
                if par[index] >= r:
                    par[index] += 1
            par.insert(r, p)
            last = self.last
            for index in range(len(last)):
                if index >= r or (index <= p and last[index] >= r - 1):
                    last[index] += 1
            last.insert(r, r)
            self.dep.insert(r, self.dep[p] + 1)
            self.ids.insert(r, node)
            self.codes.insert(r, code)
            for group in self.post.values():
                for index in range(len(group)):
                    if group[index] >= r:
                        group[index] += 1
            insort(self.post[code], r)

    def _set_label(self, node: NodeId, old: str, new: str) -> None:
        if old == new:
            return
        r = self._rank_of(node)
        old_code = int(self.codes[r])
        new_code = self._code_for(new)
        np = self.np
        if np is not None:
            group = self.post[old_code]
            self.post[old_code] = np.delete(group, int(np.searchsorted(group, r)))
            target = self.post[new_code]
            self.post[new_code] = np.insert(
                target, int(np.searchsorted(target, r)), r
            )
        else:
            group = self.post[old_code]
            del group[bisect_left(group, r)]
            insort(self.post[new_code], r)
        self.codes[r] = new_code
        if not len(self.post[old_code]):
            self.table_dirty = True

    def _delete_subtree(self, node: NodeId) -> None:
        r = self._rank_of(node)
        h = int(self.last[r])
        size = h - r + 1
        np = self.np
        if np is not None:
            keep = np.ones(len(self.ids), dtype=bool)
            keep[r : h + 1] = False
            self.ids = self.ids[keep]
            self.dep = self.dep[keep]
            self.codes = self.codes[keep]
            par = self.par[keep]
            # Children of deleted nodes are deleted with them, so no kept
            # parent rank can point inside [r, h].
            self.par = par - size * (par > h)
            last = self.last[keep]
            self.last = last - size * (last >= h)
            for code, group in list(self.post.items()):
                kept = group[(group < r) | (group > h)]
                if len(kept) != len(group):
                    self.post[code] = kept - size * (kept > h)
                    if not len(kept):
                        self.table_dirty = True
                else:
                    group -= size * (group > h)
        else:
            self.ids = self.ids[:r] + self.ids[h + 1 :]
            self.dep = self.dep[:r] + self.dep[h + 1 :]
            self.codes = self.codes[:r] + self.codes[h + 1 :]
            par = self.par[:r] + self.par[h + 1 :]
            self.par = [value - size if value > h else value for value in par]
            last = self.last[:r] + self.last[h + 1 :]
            self.last = [value - size if value >= h else value for value in last]
            for code, group in self.post.items():
                kept = [value for value in group if value < r or value > h]
                if len(kept) != len(group):
                    if not kept:
                        self.table_dirty = True
                self.post[code] = [
                    value - size if value > h else value for value in kept
                ]

    # -- reassembly ----------------------------------------------------------

    def freeze(self, source: DataTree) -> ColumnarTree:
        """Pack the working state into a fresh :class:`ColumnarTree`."""
        np = self.np
        nonempty = [code for code in range(len(self.table)) if len(self.post[code])]
        dirty = self.table_dirty or len(nonempty) != len(self.table)
        if dirty:
            # The label set changed: re-sort the table (appended labels sit
            # at the end, emptied ones must vanish) and remap every code.
            order = sorted(nonempty, key=lambda code: self.table[code])
            label_table = tuple(self.table[code] for code in order)
            new_code = {old: new for new, old in enumerate(order)}
            remap = [new_code.get(code, -1) for code in range(len(self.table))]
            if np is not None:
                codes = np.asarray(remap, dtype=np.int64)[self.codes]
            else:
                codes = [remap[code] for code in self.codes]
        else:
            order = list(range(len(self.table)))
            label_table = tuple(self.table)
            codes = self.codes

        groups = [self.post[code] for code in order]
        offsets = [0] * (len(groups) + 1)
        for index, group in enumerate(groups):
            offsets[index + 1] = offsets[index] + len(group)
        if np is not None:
            posting_ranks = (
                np.concatenate(groups)
                if groups
                else np.empty(0, dtype=np.int64)
            )
            posting_offsets = np.asarray(offsets, dtype=np.int64)
        else:
            flat: List[int] = []
            for group in groups:
                flat.extend(group)
            posting_ranks = array("q", flat)
            posting_offsets = array("q", offsets)

        result = ColumnarTree._blank()
        if np is not None:
            result.node_ids = self.ids
            result.parent_ranks = self.par
            result.last_ranks = self.last
            result.depths = self.dep
            result.label_codes = codes
        else:
            result.node_ids = array("q", self.ids)
            result.parent_ranks = array("q", self.par)
            result.last_ranks = array("q", self.last)
            result.depths = array("q", self.dep)
            result.label_codes = array("q", codes)
        result.posting_ranks = posting_ranks
        result.posting_offsets = posting_offsets
        result.label_table = label_table
        result.version = source.version
        result._source = weakref.ref(source)
        return result


def columnar_tree(tree: DataTree, stats=None) -> ColumnarTree:
    """The shared :class:`ColumnarTree` snapshot of *tree*, patched or rebuilt
    when stale.

    Mirrors :func:`~repro.trees.index.tree_index`: the snapshot is cached on
    the tree and compared against the tree's mutation version on every call.
    A stale cached column is first offered to :meth:`ColumnarTree.patch` —
    when the pending journal suffix is within
    :data:`~repro.trees.index.PATCH_JOURNAL_LIMIT` entries the replacement
    column is produced by bounded array splices instead of the O(n)
    :meth:`~ColumnarTree.from_tree` rebuild, which is what makes
    ``matcher="columnar"`` usable on mixed update/query (streaming)
    workloads.  The cache swap leaves previously held handles untouched (and
    stale — see :meth:`~ColumnarTree.require_fresh`).

    *stats* (a :class:`~repro.core.context.ContextStats`) receives
    ``columns_patched`` / ``column_rebuilds`` bumps; cold first builds count
    as rebuilds.
    """
    cached = tree._columnar_cache
    if cached is not None:
        if cached.version == tree.version:
            return cached
        patched = cached.patch(tree)
        if patched is not None:
            tree._columnar_cache = patched
            if stats is not None:
                stats.columns_patched += 1
            return patched
    column = ColumnarTree.from_tree(tree)
    tree._columnar_cache = column
    if stats is not None:
        stats.column_rebuilds += 1
    return column


__all__ = [
    "ColumnarTree",
    "columnar_tree",
    "have_numpy",
    "MAGIC",
    "PATCH_JOURNAL_LIMIT",
]
