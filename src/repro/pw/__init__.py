"""Possible-world (PW) sets and conversions to/from prob-trees.

* :mod:`repro.pw.pwset` — the :class:`PWSet` structure, normalization and
  the isomorphism notions of Definitions 3 and 4;
* :mod:`repro.pw.convert` — the expressiveness results: every prob-tree has a
  PW semantics, and every PW set is (up to isomorphism) the semantics of a
  prob-tree built with one event per possible world.
"""

from repro.pw.pwset import PWSet, WeightedResultSet
from repro.pw.convert import pwset_to_probtree, probtree_to_pwset

__all__ = ["PWSet", "WeightedResultSet", "pwset_to_probtree", "probtree_to_pwset"]
