"""Conversions between prob-trees and possible-world sets.

The paper (recalling [3]) states that the prob-tree model has the same
expressive power as the possible-world model: for each PW set ``S`` there is
a prob-tree ``T`` with ``S ∼ ⟦T⟧``, whose construction uses (about) as many
event variables as there are possible worlds.  :func:`pwset_to_probtree`
implements that construction with a chain of "selector" events: the k-th
world is selected by the condition ``¬e₁ ∧ … ∧ ¬e_{k−1} ∧ e_k`` and the last
world by ``¬e₁ ∧ … ∧ ¬e_{n−1}``, with the event probabilities chosen so that
each world keeps its original probability.  Proposition 1 shows that no
construction can do fundamentally better in the worst case.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.probtree import ProbTree
from repro.core.events import ProbabilityDistribution
from repro.formulas.literals import Condition, Literal
from repro.pw.pwset import PWSet
from repro.trees.datatree import DataTree
from repro.utils.errors import InvalidProbabilityError


def probtree_to_pwset(probtree: ProbTree, normalize: bool = True) -> PWSet:
    """The possible-world semantics ``⟦T⟧`` (thin wrapper over the core)."""
    # Imported here rather than at module level: ``repro.core.semantics``
    # itself depends on ``repro.pw.pwset``, and importing it eagerly from the
    # ``repro.pw`` package initializer would close an import cycle.
    from repro.core.semantics import possible_worlds

    return possible_worlds(probtree, restrict_to_used=True, normalize=normalize)


def pwset_to_probtree(
    pwset: PWSet,
    event_prefix: str = "choice",
) -> ProbTree:
    """Build a prob-tree whose semantics is isomorphic to *pwset*.

    The input must be a complete PW set (probabilities summing to 1); use
    :meth:`PWSet.completed` first to encode a sub-PW-set (Definition 3).  The
    construction normalizes the input (merging isomorphic worlds) and then
    allocates ``n − 1`` chained selector events for ``n`` distinct worlds.
    """
    if not pwset.is_complete():
        raise InvalidProbabilityError(
            "pwset_to_probtree needs a complete PW set; call .completed() first"
        )
    normalized = pwset.normalize()
    worlds: List[Tuple[DataTree, float]] = list(normalized.worlds)
    if not worlds:
        raise InvalidProbabilityError("cannot encode an empty possible-world set")

    root_label = worlds[0][0].root_label
    result_tree = DataTree(root_label)
    conditions = {}
    probabilities = {}

    # Chain of selector events: world k (0-based) is selected when events
    # e_0 … e_{k-1} are false and e_k is true; the last world needs no event
    # of its own.  remaining_mass tracks 1 − Σ_{j<k} p_j.
    selector_chain: List[Literal] = []
    remaining_mass = 1.0
    for index, (world_tree, probability) in enumerate(worlds):
        is_last = index == len(worlds) - 1
        if is_last:
            world_condition = Condition(selector_chain)
        else:
            event = f"{event_prefix}{index + 1}"
            event_probability = min(1.0, max(probability / remaining_mass, 1e-12))
            probabilities[event] = event_probability
            world_condition = Condition(selector_chain + [Literal(event)])
            selector_chain = selector_chain + [Literal(event, negated=True)]
            remaining_mass -= probability

        # Attach the world's children under the shared root; the top node of
        # every attached subtree carries the world-selection condition.
        for child in world_tree.children(world_tree.root):
            child_copy = world_tree.subtree_copy(child)
            mapping = result_tree.add_subtree(result_tree.root, child_copy)
            conditions[mapping[child_copy.root]] = world_condition

    distribution = ProbabilityDistribution(probabilities)
    result = ProbTree(result_tree, distribution, {})
    for node, condition in conditions.items():
        if not condition.is_true():
            result.set_condition(node, condition)
    return result


__all__ = ["probtree_to_pwset", "pwset_to_probtree"]
