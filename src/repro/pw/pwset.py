"""Possible-world sets (Section 2 of the paper).

A possible-world set is a finite set of pairs ``(tᵢ, pᵢ)`` where the ``tᵢ``
are data trees with a common root label and the ``pᵢ`` are positive reals
summing to 1.  Two PW sets are isomorphic when, for every data tree, the
total probability of the worlds isomorphic to it is the same in both
(Definition of ``∼``).  A *strict subset* of a PW set (probabilities summing
to less than 1) is identified with the PW set completed by a root-only world
carrying the missing mass (Definition 3, ``∼sub``); this is how threshold
pruning and DTD restriction are given a semantics.

The same class also represents *weighted result sets* — query answers on PW
sets (Definition 7) whose probabilities do not sum to 1; the
``require_total_one`` flag controls validation.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.trees.datatree import DataTree
from repro.trees.isomorphism import canonical_encoding
from repro.utils.errors import InvalidProbabilityError, InvalidTreeError

_TOLERANCE = 1e-9


class PWSet:
    """A (possibly sub-) possible-world set: weighted data trees."""

    __slots__ = ("_worlds",)

    def __init__(
        self,
        worlds: Iterable[Tuple[DataTree, float]] = (),
        require_total_one: bool = False,
        require_common_root: bool = True,
    ) -> None:
        collected: List[Tuple[DataTree, float]] = []
        for tree, probability in worlds:
            if probability <= 0:
                raise InvalidProbabilityError(
                    f"possible-world probabilities must be positive, got {probability!r}"
                )
            collected.append((tree, float(probability)))
        if require_common_root and collected:
            root_labels = {tree.root_label for tree, _ in collected}
            if len(root_labels) > 1:
                raise InvalidTreeError(
                    f"possible worlds must share a root label, got {sorted(root_labels)}"
                )
        if require_total_one and collected:
            total = sum(p for _, p in collected)
            if not math.isclose(total, 1.0, abs_tol=1e-6):
                raise InvalidProbabilityError(
                    f"probabilities of a possible-world set must sum to 1, got {total}"
                )
        self._worlds = tuple(collected)

    # -- inspection --------------------------------------------------------

    @property
    def worlds(self) -> Tuple[Tuple[DataTree, float], ...]:
        return self._worlds

    def trees(self) -> Iterator[DataTree]:
        for tree, _ in self._worlds:
            yield tree

    def probabilities(self) -> Iterator[float]:
        for _, probability in self._worlds:
            yield probability

    def total_probability(self) -> float:
        return sum(probability for _, probability in self._worlds)

    def is_complete(self) -> bool:
        """Whether the probabilities sum to 1 (within tolerance)."""
        return math.isclose(self.total_probability(), 1.0, abs_tol=1e-6)

    def root_label(self) -> Optional[str]:
        for tree, _ in self._worlds:
            return tree.root_label
        return None

    def support_size(self) -> int:
        """Number of pairwise non-isomorphic worlds."""
        return len(self._by_canonical_form())

    def max_world_size(self) -> int:
        """Largest node count among the possible worlds."""
        return max((tree.node_count() for tree, _ in self._worlds), default=0)

    def description_size(self) -> int:
        """Total size of the extensive description (sum of node counts)."""
        return sum(tree.node_count() for tree, _ in self._worlds)

    def probability_of(self, tree: DataTree, set_semantics: bool = False) -> float:
        """Total probability of worlds isomorphic to *tree*."""
        key = canonical_encoding(tree, set_semantics=set_semantics)
        return self._by_canonical_form(set_semantics).get(key, (None, 0.0))[1]

    # -- normalization and isomorphism --------------------------------------

    def _by_canonical_form(
        self, set_semantics: bool = False
    ) -> Dict[str, Tuple[DataTree, float]]:
        grouped: Dict[str, Tuple[DataTree, float]] = {}
        for tree, probability in self._worlds:
            key = canonical_encoding(tree, set_semantics=set_semantics)
            if key in grouped:
                representative, accumulated = grouped[key]
                grouped[key] = (representative, accumulated + probability)
            else:
                grouped[key] = (tree, probability)
        return grouped

    def normalize(self, set_semantics: bool = False) -> "PWSet":
        """Merge isomorphic worlds by summing their probabilities."""
        grouped = self._by_canonical_form(set_semantics)
        return PWSet(grouped[key] for key in sorted(grouped))

    def is_normalized(self) -> bool:
        return len(self._worlds) == self.support_size()

    def isomorphic(self, other: "PWSet", set_semantics: bool = False) -> bool:
        """The ``∼`` relation: same total probability per isomorphism class."""
        mine = self._by_canonical_form(set_semantics)
        theirs = other._by_canonical_form(set_semantics)
        keys = set(mine) | set(theirs)
        for key in keys:
            p_mine = mine.get(key, (None, 0.0))[1]
            p_theirs = theirs.get(key, (None, 0.0))[1]
            if not math.isclose(p_mine, p_theirs, abs_tol=_TOLERANCE):
                return False
        return True

    def completed(self, root_label: Optional[str] = None) -> "PWSet":
        """Complete a sub-PW-set with a root-only world carrying the missing mass.

        This realizes Definition 3's ``∼sub`` identification.  If the set is
        already complete it is returned unchanged (up to a copy).
        """
        total = self.total_probability()
        if total > 1.0 + 1e-6:
            raise InvalidProbabilityError(
                f"cannot complete a set whose probabilities already sum to {total}"
            )
        label = root_label if root_label is not None else self.root_label()
        if label is None:
            raise InvalidTreeError("cannot complete an empty PW set without a root label")
        missing = 1.0 - total
        if missing <= _TOLERANCE:
            return PWSet(self._worlds)
        return PWSet(list(self._worlds) + [(DataTree(label), missing)])

    def sub_isomorphic(self, other: "PWSet", root_label: Optional[str] = None) -> bool:
        """The ``∼sub`` relation of Definition 3 (compare after completion)."""
        label = root_label or self.root_label() or other.root_label()
        return self.completed(label).isomorphic(other.completed(label))

    # -- restriction and transformation --------------------------------------

    def filter(self, predicate: Callable[[DataTree, float], bool]) -> "PWSet":
        """Keep only the worlds satisfying *predicate* (a sub-PW-set)."""
        return PWSet(
            (tree, probability)
            for tree, probability in self._worlds
            if predicate(tree, probability)
        )

    def at_least(self, threshold: float) -> "PWSet":
        """The restriction ``⟦T⟧≥p``: worlds with probability ≥ *threshold*.

        Meaningful on a normalized set (otherwise the per-world probabilities
        are representation-dependent).
        """
        return self.filter(lambda _tree, probability: probability >= threshold - _TOLERANCE)

    def map_trees(self, transform: Callable[[DataTree], DataTree]) -> "PWSet":
        """Apply a tree transformation to every world, keeping probabilities."""
        return PWSet((transform(tree), probability) for tree, probability in self._worlds)

    def most_probable(self, count: int = 1) -> List[Tuple[DataTree, float]]:
        """The *count* most probable worlds of the normalized set."""
        normalized = self.normalize()
        ranked = sorted(normalized.worlds, key=lambda pair: -pair[1])
        return ranked[:count]

    # -- dunder --------------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[DataTree, float]]:
        return iter(self._worlds)

    def __len__(self) -> int:
        return len(self._worlds)

    def __repr__(self) -> str:
        return f"PWSet(worlds={len(self._worlds)}, total={self.total_probability():.4f})"


# A query answer on a PW set or prob-tree: structurally the same thing as a
# sub-PW-set except that the "common root label" requirement does not apply
# (answers keep the path to the root, so in practice they do share it).
WeightedResultSet = PWSet


__all__ = ["PWSet", "WeightedResultSet"]
