"""Prob-trees with arbitrary propositional-formula conditions (Section 5).

In this variant every node may carry an arbitrary propositional formula over
the event variables (not just a conjunction of literals).  The paper observes
that the complexity trade-off flips:

* **updates become polynomial** — an insertion annotates the new node with a
  conjunction of the match condition and the confidence event, and a deletion
  simply conjoins the surviving node's formula with the *negation* of the
  delete condition, without ever expanding it into a disjunction of
  conjunctions (so Theorem 3's blow-up disappears);
* **query evaluation becomes expensive** — computing the probability of an
  answer now requires evaluating the probability of an arbitrary formula,
  which is NP-hard (the implementation enumerates the worlds touched by the
  answer's events).

This class deliberately mirrors a subset of :class:`repro.core.probtree.ProbTree`
so the E12 benchmark can run the same workload against both models.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Mapping, Optional, Set, Tuple

from repro.core.events import EventFactory, ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.boolean import (
    BoolExpr,
    Not,
    TrueExpr,
    Var,
    conjunction,
    disjunction,
    from_condition,
)
from repro.formulas.literals import all_worlds
from repro.pw.pwset import PWSet
from repro.queries.base import Query
from repro.trees.datatree import DataTree, NodeId
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.utils.errors import QueryError, UpdateError


class FormulaProbTree:
    """A prob-tree whose conditions are arbitrary propositional formulas."""

    __slots__ = ("_tree", "_distribution", "_formulas")

    def __init__(
        self,
        tree: DataTree,
        distribution: ProbabilityDistribution | Mapping[str, float] | None = None,
        formulas: Mapping[NodeId, BoolExpr] | None = None,
    ) -> None:
        if not isinstance(distribution, ProbabilityDistribution):
            distribution = ProbabilityDistribution(distribution or {})
        self._tree = tree
        self._distribution = distribution
        self._formulas: Dict[NodeId, BoolExpr] = dict(formulas or {})

    # -- constructors --------------------------------------------------------

    @staticmethod
    def from_probtree(probtree: ProbTree) -> "FormulaProbTree":
        """Lift a conjunctive prob-tree into the formula variant."""
        formulas = {
            node: from_condition(condition)
            for node, condition in probtree.conditions().items()
        }
        return FormulaProbTree(probtree.tree.copy(), probtree.distribution, formulas)

    # -- accessors -------------------------------------------------------------

    @property
    def tree(self) -> DataTree:
        return self._tree

    @property
    def distribution(self) -> ProbabilityDistribution:
        return self._distribution

    def formula(self, node: NodeId) -> BoolExpr:
        return self._formulas.get(node, TrueExpr())

    def set_formula(self, node: NodeId, formula: BoolExpr) -> None:
        if node == self._tree.root:
            raise UpdateError("the root of a formula prob-tree cannot carry a condition")
        if isinstance(formula, TrueExpr):
            self._formulas.pop(node, None)
        else:
            self._formulas[node] = formula

    def used_events(self) -> Set[str]:
        result: Set[str] = set()
        for formula in self._formulas.values():
            result |= formula.events()
        return result

    def size(self) -> int:
        """Nodes plus total formula size (the analogue of ``|T|``)."""
        return self._tree.node_count() + sum(f.size() for f in self._formulas.values())

    def copy(self) -> "FormulaProbTree":
        return FormulaProbTree(self._tree.copy(), self._distribution, dict(self._formulas))

    # -- semantics --------------------------------------------------------------

    def value_in_world(self, world: AbstractSet[str]) -> DataTree:
        world_set = set(world)

        def removed(node: NodeId) -> bool:
            return not self.formula(node).holds_in(world_set)

        return self._tree.prune_where(removed)

    def possible_worlds(self, normalize: bool = True) -> PWSet:
        events = sorted(self.used_events())
        pairs = []
        for world in all_worlds(events):
            probability = self._distribution.world_probability(world, over=events)
            pairs.append((self.value_in_world(world), probability))
        result = PWSet(pairs)
        return result.normalize() if normalize else result

    # -- queries -----------------------------------------------------------------

    def evaluate(self, query: Query) -> List[Tuple[DataTree, float]]:
        """Answers with exact probabilities (exponential-time per answer)."""
        if not query.locally_monotone:
            raise QueryError("only locally monotone queries are supported")
        answers: List[Tuple[DataTree, float]] = []
        distribution = self._distribution.as_dict()
        for nodes in query.result_node_sets(self._tree):
            formula = conjunction(*(self.formula(node) for node in nodes))
            probability = formula.probability(distribution)
            if probability > 0.0:
                answers.append((self._tree.restrict(nodes), probability))
        return answers

    def boolean_probability(self, query: Query) -> float:
        """Probability that the query has at least one answer."""
        disjuncts = []
        for nodes in query.result_node_sets(self._tree):
            disjuncts.append(conjunction(*(self.formula(node) for node in nodes)))
        if not disjuncts:
            return 0.0
        return disjunction(*disjuncts).probability(self._distribution.as_dict())

    # -- updates ------------------------------------------------------------------

    def apply_update(self, update: ProbabilisticUpdate) -> "FormulaProbTree":
        """Apply a probabilistic update in polynomial time.

        This is the Section 5 observation: with arbitrary formulas allowed,
        both insertion and deletion only *annotate* nodes (no copies, no DNF
        expansion), so the output grows by at most the size of the conditions
        involved.
        """
        operation = update.operation
        matches = operation.query.matches(self._tree)
        result = self.copy()
        if not matches:
            return result

        extra: BoolExpr = TrueExpr()
        if not update.is_certain:
            factory = EventFactory(reserved=self._distribution.events())
            event = update.event or factory.fresh()
            if event in result._distribution:
                raise UpdateError(f"event {event!r} already exists")
            result._distribution = result._distribution.with_event(
                event, update.confidence
            )
            extra = Var(event)

        if isinstance(operation, Insertion):
            for match in matches:
                target = match.target(operation.at)
                match_formula = conjunction(
                    *(self.formula(node) for node in match.answer_nodes(self._tree))
                )
                mapping = result._tree.add_subtree(target, operation.subtree)
                inserted = mapping[operation.subtree.root]
                result.set_formula(inserted, conjunction(extra, match_formula))
            return result

        if isinstance(operation, Deletion):
            by_target: Dict[NodeId, List[BoolExpr]] = {}
            for match in matches:
                target = match.target(operation.at)
                match_formula = conjunction(
                    *(self.formula(node) for node in match.answer_nodes(self._tree))
                )
                by_target.setdefault(target, []).append(conjunction(extra, match_formula))
            if self._tree.root in by_target:
                raise UpdateError("a deletion may not target the root of the tree")
            for target, delete_formulas in by_target.items():
                survive = Not(disjunction(*delete_formulas))
                result.set_formula(target, conjunction(self.formula(target), survive))
            return result

        raise UpdateError(f"unknown update operation {operation!r}")

    def __repr__(self) -> str:
        return (
            f"FormulaProbTree(nodes={self._tree.node_count()}, "
            f"size={self.size()}, events={len(self._distribution)})"
        )


__all__ = ["FormulaProbTree"]
