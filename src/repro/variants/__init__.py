"""Variants of the prob-tree model discussed in Section 5 of the paper.

* :mod:`repro.variants.set_semantics` — the data model with set (rather than
  multiset) semantics: isomorphism collapses duplicate siblings and
  structural equivalence reduces to plain propositional equivalence;
* :mod:`repro.variants.formula_probtree` — prob-trees whose conditions are
  arbitrary propositional formulas: updates (including deletions) become
  polynomial while query evaluation becomes exponential.

The ordered-tree variant is only discussed, not formalized, by the paper
("the situation is more intricate and would require totally different
techniques") and is therefore not implemented.
"""

from repro.variants.set_semantics import (
    set_isomorphic,
    set_normalize,
    set_structurally_equivalent,
)
from repro.variants.formula_probtree import FormulaProbTree

__all__ = [
    "set_isomorphic",
    "set_normalize",
    "set_structurally_equivalent",
    "FormulaProbTree",
]
