"""The set-semantics variant of the data model (Section 5).

Under set semantics, two trees are isomorphic when the roots have the same
label and every subtree of one root is isomorphic to some subtree of the
other (and symmetrically) — duplicate sibling subtrees collapse.  The paper
notes that most results carry over (including the Theorem 3 deletion blow-up)
but that structural equivalence changes nature: the relevant comparison of
children conditions becomes plain *propositional* equivalence (does some copy
survive?) rather than count-equivalence (how many copies survive?), giving a
direct co-NP-completeness argument.

This module provides:

* :func:`set_isomorphic` — set-semantics isomorphism of data trees;
* :func:`set_normalize` — PW-set normalization under set semantics;
* :func:`set_structurally_equivalent` — structural equivalence of prob-trees
  under set semantics, decided exactly by world enumeration (the reference
  notion);
* :func:`set_structurally_equivalent_syntactic` — a sound (never wrongly
  answers ``True``) but incomplete inductive procedure that compares, per
  identically-annotated child subtree, the propositional equivalence of the
  condition bundles; it illustrates the "plain equivalence instead of
  count-equivalence" observation of the paper and is exercised against the
  exhaustive check in the tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.cleaning import clean
from repro.core.probtree import ProbTree
from repro.formulas.dnf import DNF
from repro.formulas.literals import all_worlds
from repro.formulas.sat import equivalent
from repro.pw.pwset import PWSet
from repro.trees.datatree import DataTree, NodeId
from repro.trees.isomorphism import isomorphic


def set_isomorphic(left: DataTree, right: DataTree) -> bool:
    """Set-semantics isomorphism of data trees (duplicate siblings collapse)."""
    return isomorphic(left, right, set_semantics=True)


def set_normalize(pwset: PWSet) -> PWSet:
    """Normalize a PW set merging worlds isomorphic under set semantics."""
    return pwset.normalize(set_semantics=True)


def set_structurally_equivalent(left: ProbTree, right: ProbTree) -> bool:
    """Structural equivalence under set semantics, by world enumeration.

    Exponential in the number of used events, mirroring the co-NP upper
    bound: a counterexample world is a polynomial certificate of
    inequivalence.
    """
    events = left.used_events() | right.used_events()
    for world in all_worlds(sorted(events)):
        if not set_isomorphic(left.value_in_world(world), right.value_in_world(world)):
            return False
    return True


def set_structurally_equivalent_syntactic(left: ProbTree, right: ProbTree) -> bool:
    """Sound-but-incomplete inductive check using propositional equivalence.

    Children are grouped by the canonical encoding of their *annotated*
    subtree (conditions of strict descendants included, own condition
    excluded); two prob-trees are accepted when both sides exhibit the same
    groups and, within each group, the disjunctions of the children's top
    conditions are propositionally equivalent.  A ``True`` answer implies
    genuine set-semantics structural equivalence; a ``False`` answer may be a
    false alarm when equivalent subtrees are annotated differently.
    """
    left = clean(left)
    right = clean(right)
    return _equivalent_below(left, left.tree.root, right, right.tree.root)


def _equivalent_below(
    left: ProbTree, left_node: NodeId, right: ProbTree, right_node: NodeId
) -> bool:
    if left.tree.label(left_node) != right.tree.label(right_node):
        return False
    left_groups = _children_by_annotated_shape(left, left_node)
    right_groups = _children_by_annotated_shape(right, right_node)
    if set(left_groups) != set(right_groups):
        return False
    return all(
        equivalent(DNF(left_groups[key]), DNF(right_groups[key]))
        for key in left_groups
    )


def _children_by_annotated_shape(probtree: ProbTree, node: NodeId) -> Dict[str, List]:
    groups: Dict[str, List] = {}
    for child in probtree.tree.children(node):
        key = _conditional_encoding(probtree, child)
        groups.setdefault(key, []).append(probtree.condition(child))
    return groups


def _conditional_encoding(probtree: ProbTree, node: NodeId) -> str:
    """Canonical encoding of the annotated subtree at *node* (own condition excluded)."""
    children = sorted(
        set(
            f"[{probtree.condition(child)}]" + _conditional_encoding(probtree, child)
            for child in probtree.tree.children(node)
        )
    )
    label = probtree.tree.label(node).replace("(", "\\(").replace(")", "\\)")
    return label + "(" + ",".join(children) + ")"


__all__ = [
    "set_isomorphic",
    "set_normalize",
    "set_structurally_equivalent",
    "set_structurally_equivalent_syntactic",
]
