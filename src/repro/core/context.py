"""The session-scoped execution layer: :class:`ExecutionContext`.

Before this module existed, every query/probability/update/threshold/DTD
entry point re-threaded two string kwargs (``engine=``, ``matcher=``) and the
shared caches (the per-probtree Shannon-expansion tables, the per-tree
structural index) lived in module-level registries with no owner.  An
:class:`ExecutionContext` gives all of that one home:

* **mode resolution** — the context carries the default ``engine``
  (``"formula"`` | ``"enumerate"`` | ``"sample"`` | ``"auto-sample"``) and
  ``matcher`` (``"indexed"`` | ``"naive"`` | ``"columnar"`` | ``"auto"``)
  for every operation
  executed through it, together with a session
  :class:`~repro.formulas.sampling.PricingPolicy` (exact-pricing budget and
  sampling tolerances), with per-call overrides resolved by
  :func:`resolve_context` (precedence: per-call override > context default >
  module default);
* **cache handles** — a context-scoped registry of
  :class:`~repro.core.probability.ProbabilityEngine` instances (one Shannon
  cache per prob-tree per mode, all pricing through the context's single
  hash-consed :class:`~repro.formulas.ir.FormulaPool` intern table — see
  :attr:`ExecutionContext.formula_pool`), the shared structural
  :class:`~repro.trees.index.TreeIndex` (delegated to
  :func:`~repro.trees.index.tree_index`), and a NEW **answer-set cache**
  memoizing ``result_node_sets`` keyed by ``(tree.version, pattern
  fingerprint, matcher)`` — repeated queries against an unchanged document
  skip matching entirely, and any mutation (which bumps
  :attr:`DataTree.version <repro.trees.datatree.DataTree.version>`) or tree
  replacement (a fresh object) invalidates the entry automatically;
* **a cost model** — ``matcher="auto"`` picks the vectorized columnar
  matcher for large trees (≥ :data:`AUTO_COLUMNAR_NODES`, numpy present) or
  when a fresh columnar snapshot is already cached, the naive backtracking
  matcher for tiny pattern×tree products (where the O(n) index build
  dominates) and the compiled indexed plans otherwise; a fresh cached index
  tips the choice to ``"indexed"`` since the build cost is already sunk;
* **observable stats** — :class:`ContextStats` counts answer-cache
  hits/misses, plans compiled, formulas evaluated by the context's engines,
  engines created and auto-matcher decisions, so repeated-query workloads
  can be inspected and benchmarked.

Contexts are deliberately cheap: overriding modes through
:meth:`ExecutionContext.with_modes` returns a *view* sharing the caches and
stats of its parent, so a per-call ``engine="enumerate"`` override does not
fork the Shannon tables the session has already paid for.
"""

from __future__ import annotations

import gc
import inspect
import threading
import weakref
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.core.probability import ProbabilityEngine, require_engine_mode
from repro.core.probtree import ProbTree
from repro.formulas.ir import FormulaPool
from repro.formulas.sampling import PricingPolicy
from repro.trees.columnar import have_numpy as _columnar_have_numpy
from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import PATCH_JOURNAL_LIMIT, TreeIndex, tree_index
from repro.utils.errors import QueryError
from repro.utils.faults import fire

#: Matcher choices a context understands; ``"auto"`` resolves per call
#: through the cost model into one of the fixed modes of
#: :data:`repro.queries.plan.MATCHER_MODES` (single source of truth for the
#: concrete modes — validation delegates to ``require_matcher_mode``).
MATCHER_CHOICES = ("indexed", "naive", "columnar", "auto")

#: Below this pattern-nodes × tree-nodes product, ``matcher="auto"`` prefers
#: the naive backtracking matcher (no index build) when no fresh index exists.
AUTO_NAIVE_COST = 512

#: From this tree size upward, ``matcher="auto"`` prefers the columnar
#: matcher (vectorized interval merges over the flat arrays of
#: :class:`repro.trees.columnar.ColumnarTree`) when numpy is available —
#: below it the object plans win because the per-query constant factors
#: (array conversions, searchsorted setup) dominate.  A tree that already
#: carries a *fresh* columnar snapshot tips to columnar regardless of size:
#: the O(n) column build is sunk.
AUTO_COLUMNAR_NODES = 32768

#: Default per-document bound on cached answer entries (per cache layer).
#: Deliberately generous — the LRU exists to cap worst-case memory on
#: many-distinct-query workloads, not to churn a working set.
MAX_CACHED_ANSWERS = 1024

#: Default node-count bound on a context's formula intern table (override
#: per session with ``ExecutionContext(formula_pool_node_limit=...)``).  Hash
#: consing never evicts (ids must stay stable), so a long-lived context —
#: above all the process-lifetime module default — would otherwise grow
#: without bound under endless distinct-formula churn.  Past the bound, the
#: context first runs a mark-and-sweep **garbage collection**
#: (:meth:`~repro.formulas.ir.FormulaPool.collect` from the live Shannon-memo
#: and compiled-DTD roots, counted in ``ContextStats.pool_gc_runs`` /
#: ``pool_nodes_swept``); only if the pool is *still* oversized — every node
#: genuinely live — is the whole formula layer restarted atomically (fresh
#: pool, engine registry and compiled-DTD cache dropped together, so no
#: id-keyed cache can dangle, counted in ``pool_restarts``), at the next
#: :meth:`ExecutionContext.engine_for`; pricing then warms back up.
#: Generous: real sessions intern a few thousand nodes.
FORMULA_POOL_NODE_LIMIT = 1 << 18


# Query methods predating the context layer take (tree, matcher=None) — and
# the oldest ad-hoc Query subclasses in user code may override them with
# (tree) alone.  The context therefore checks — once per (function, kwarg) —
# which keyword arguments an override accepts before passing them along.
_KWARG_SUPPORT: Dict[Tuple[object, str], bool] = {}


def _accepts_kwarg(method, name: str) -> bool:
    func = getattr(method, "__func__", method)
    key = (func, name)
    cached = _KWARG_SUPPORT.get(key)
    if cached is None:
        try:
            parameters = inspect.signature(func).parameters
            cached = name in parameters or any(
                parameter.kind is inspect.Parameter.VAR_KEYWORD
                for parameter in parameters.values()
            )
        except (TypeError, ValueError):  # pragma: no cover - builtins/partials
            cached = False
        _KWARG_SUPPORT[key] = cached
    return cached


def _legacy_kwargs(method, effective: str, context: "ExecutionContext") -> Dict[str, object]:
    """The keyword arguments *method* can take, out of matcher/context."""
    kwargs: Dict[str, object] = {}
    if _accepts_kwarg(method, "matcher"):
        kwargs["matcher"] = effective
    if _accepts_kwarg(method, "context"):
        kwargs["context"] = context
    return kwargs


def require_matcher_choice(mode: Optional[str]) -> str:
    """Validate a context-level ``matcher=`` argument (``None`` → ``"indexed"``).

    Accepts ``"auto"`` on top of the concrete modes, whose validation is
    delegated to :func:`repro.queries.plan.require_matcher_mode` so there is
    one source of truth for what the matchers themselves understand.
    """
    if mode is None:
        return "indexed"
    if mode == "auto":
        return mode
    # Imported lazily: the repro.queries package imports this module.
    from repro.queries.plan import require_matcher_mode

    try:
        return require_matcher_mode(mode)
    except QueryError:
        raise QueryError(
            f"unknown matcher {mode!r}; expected one of {MATCHER_CHOICES}"
        ) from None


class ContextStats:
    """Counters accumulated by every operation executed through one context.

    All counters are plain integers; :meth:`as_dict` snapshots them and
    :meth:`reset` zeroes them.  The stats object is shared between a context
    and all mode-override views derived from it.
    """

    __slots__ = (
        "answer_cache_hits",
        "answer_cache_misses",
        "nodeset_cache_hits",
        "nodeset_cache_misses",
        "plans_compiled",
        "formulas_evaluated",
        "engines_created",
        "auto_chose_naive",
        "auto_chose_indexed",
        "auto_chose_columnar",
        "columns_patched",
        "column_rebuilds",
        "evictions",
        "answers_migrated",
        "intern_hits",
        "intern_misses",
        "formulas_migrated",
        "exact_budget_exceeded",
        "samples_drawn",
        "fallbacks",
        "snapshots_pinned",
        "snapshots_retired",
        "rollbacks",
        "faults_injected",
        "pool_gc_runs",
        "pool_nodes_swept",
        "pool_restarts",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.answer_cache_hits = 0       # full Definition 8 answer lists
        self.answer_cache_misses = 0
        self.nodeset_cache_hits = 0      # raw result_node_sets (boolean/aggregates)
        self.nodeset_cache_misses = 0
        self.plans_compiled = 0
        self.formulas_evaluated = 0
        self.engines_created = 0
        self.auto_chose_naive = 0
        self.auto_chose_indexed = 0
        self.auto_chose_columnar = 0
        self.columns_patched = 0         # stale columns journal-patched forward
        self.column_rebuilds = 0         # columns rebuilt from scratch (cold included)
        self.evictions = 0               # LRU answer-cache entries dropped
        self.answers_migrated = 0        # entries carried across update/clean
        self.intern_hits = 0             # formula-pool probes finding a node
        self.intern_misses = 0           # formula-pool probes allocating one
        self.formulas_migrated = 0       # priced formulas carried across update/clean
        self.exact_budget_exceeded = 0   # exact pricings that tripped max_expansions
        self.samples_drawn = 0           # Monte-Carlo worlds drawn by the sampler
        self.fallbacks = 0               # auto-sample degradations exact -> sampling
        self.snapshots_pinned = 0        # read_snapshot / ProbTree.snapshot pins
        self.snapshots_retired = 0       # pins expired by the retention bound
        self.rollbacks = 0               # transactions rolled back (updates included)
        self.faults_injected = 0         # faults the active FaultPlan raised/delayed
        self.pool_gc_runs = 0            # formula-pool mark-and-sweep passes
        self.pool_nodes_swept = 0        # interned nodes reclaimed by GC
        self.pool_restarts = 0           # wholesale formula-layer restarts

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def merge(self, other: Union["ContextStats", Dict[str, int]]) -> "ContextStats":
        """Add *other*'s counters into this object (in place); returns self.

        *other* is another :class:`ContextStats` or a plain counter dict (the
        :meth:`as_dict` shape — what a shard worker ships over the wire).
        Unknown keys are ignored so a router can aggregate stats from workers
        running a slightly different build without blowing up; missing keys
        simply contribute nothing.  This is how the sharded warehouse folds
        per-shard stats into the one report the CLI ``--stats`` and the
        service ``/stats`` endpoint both render.
        """
        data = other.as_dict() if isinstance(other, ContextStats) else other
        for name, value in data.items():
            if name in ContextStats.__slots__:
                setattr(self, name, getattr(self, name) + int(value))
        return self

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "ContextStats":
        """Rebuild a stats object from an :meth:`as_dict` snapshot."""
        return cls().merge(data)

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ContextStats({pairs})"


class _DocumentCache:
    """One document's answer-cache shard: LRU entries + label invalidation.

    ``entries`` maps a cache key to ``(labels, node_ids, value)``:

    * ``labels`` — the query's :meth:`label_set` fingerprint (``None`` for
      wildcard patterns and fingerprint-less queries: invalidate on any
      mutation);
    * ``node_ids`` — for full-answer entries, the union of node identifiers
      occurring in the cached answer trees (answers embed *unmatched
      ancestors*, whose labels the pattern does not constrain — a relabel of
      one of these nodes must invalidate the entry even though no pattern
      label is touched); ``None`` for raw node-set entries, whose values
      contain only identifiers, never labels;
    * ``value`` — the cached tuple.

    The :class:`~collections.OrderedDict` order is the LRU order: hits move
    entries to the end, eviction pops from the front.
    """

    __slots__ = ("stamp", "entries")

    def __init__(self, stamp) -> None:
        self.stamp = stamp
        self.entries: "OrderedDict[tuple, Tuple[Optional[FrozenSet[str]], Optional[FrozenSet[NodeId]], tuple]]" = (
            OrderedDict()
        )


def _journal_touch(
    tree: DataTree, since_version: int
) -> Optional[Tuple[FrozenSet[str], FrozenSet[NodeId]]]:
    """``(touched_labels, relabeled_nodes)`` since *since_version*, or ``None``.

    ``None`` means the tree's journal has been trimmed past *since_version*
    and only wholesale invalidation is sound.  The extraction itself lives
    on the tree (:meth:`DataTree.mutation_touch_since`) so there is exactly
    one switch over journal entry kinds.
    """
    return tree.mutation_touch_since(since_version)


def _query_label_set(query) -> Optional[FrozenSet[str]]:
    """The query's label fingerprint, ``None`` when it offers none."""
    method = getattr(query, "label_set", None)
    if callable(method):
        return method()
    return None


class _ContextState:
    """The shared mutable state behind a context and its mode-override views."""

    __slots__ = (
        "engines",
        "answer_cache",
        "probtree_answers",
        "dtd_formulas",
        "stats",
        "formula_pool",
        "auto_naive_cost",
        "cache_answers",
        "max_cached_answers",
        "pricing",
        "lock",
        "snapshot_retention",
        "active_snapshots",
        "fault_plan",
        "formula_pool_node_limit",
    )

    def __init__(
        self,
        auto_naive_cost: int = AUTO_NAIVE_COST,
        cache_answers: bool = True,
        max_cached_answers: Optional[int] = None,
        pricing: Optional[PricingPolicy] = None,
        snapshot_retention: Optional[int] = None,
        fault_plan=None,
        formula_pool_node_limit: Optional[int] = None,
    ) -> None:
        # prob-tree -> {engine mode -> ProbabilityEngine}
        self.engines: "weakref.WeakKeyDictionary[ProbTree, Dict[str, ProbabilityEngine]]" = (
            weakref.WeakKeyDictionary()
        )
        # data tree -> _DocumentCache stamped with tree.version; entries are
        # {(fingerprint, matcher) -> (labels, None, node-set tuple)}
        self.answer_cache: "weakref.WeakKeyDictionary[DataTree, _DocumentCache]" = (
            weakref.WeakKeyDictionary()
        )
        # prob-tree -> _DocumentCache stamped (tree.version, state_version);
        # entries are {(fingerprint, matcher, engine, keep_zero) ->
        #              (labels, answer node ids, QueryAnswer tuple)}
        self.probtree_answers: "weakref.WeakKeyDictionary[ProbTree, _DocumentCache]" = (
            weakref.WeakKeyDictionary()
        )
        # prob-tree -> {DTD fingerprint -> ((tree.version, state_version),
        # interned validity-formula id)}; consulted by the DTD entry points
        # so a warm check skips recompilation entirely.
        self.dtd_formulas: "weakref.WeakKeyDictionary[ProbTree, Dict[tuple, Tuple[Tuple[int, int], int]]]" = (
            weakref.WeakKeyDictionary()
        )
        self.stats = ContextStats()
        # One intern table per session, shared by every engine of this state:
        # equal formulas get equal integer ids across prob-trees, queries and
        # DTD checks, and the pool's intern counters land in self.stats.
        self.formula_pool = FormulaPool(stats=self.stats)
        self.auto_naive_cost = auto_naive_cost
        self.cache_answers = cache_answers
        if max_cached_answers is None:
            max_cached_answers = MAX_CACHED_ANSWERS
        if max_cached_answers < 1:
            raise ValueError(
                f"max_cached_answers must be a positive bound, got "
                f"{max_cached_answers!r}"
            )
        self.max_cached_answers = int(max_cached_answers)
        # One pricing policy (exact budget + sampling tolerances) per
        # session, applied to every engine this state hands out.
        self.pricing = pricing if pricing is not None else PricingPolicy()
        # Reentrant: cache probes recurse into engine_for / index_for while
        # holding it.  Guards every shared-cache probe/store so snapshot-mode
        # readers on different threads never tear a shard; formula pricing
        # itself also runs under it (compute happens inside the cached_*
        # scopes), which serializes misses but keeps warm reads concurrent
        # with nothing heavier than a dict probe.
        self.lock = threading.RLock()
        if snapshot_retention is None:
            # Imported lazily: repro.core.snapshot imports probtree only,
            # but keep the default in one place.
            from repro.core.snapshot import SNAPSHOT_RETENTION

            snapshot_retention = SNAPSHOT_RETENTION
        if snapshot_retention < 1:
            raise ValueError(
                f"snapshot_retention must be a positive bound, got "
                f"{snapshot_retention!r}"
            )
        self.snapshot_retention = int(snapshot_retention)
        # Unreleased Snapshot handles pinned through read_snapshot, oldest
        # first — the session-wide retention bound walks this list.
        self.active_snapshots: List = []
        # Optional FaultPlan the update pipeline activates around each
        # operation (crash-consistency harnesses configure it; None in
        # production).
        self.fault_plan = fault_plan
        if formula_pool_node_limit is None:
            formula_pool_node_limit = FORMULA_POOL_NODE_LIMIT
        if formula_pool_node_limit < 2:
            raise ValueError(
                f"formula_pool_node_limit must be at least 2 (the pool always "
                f"holds its two constants), got {formula_pool_node_limit!r}"
            )
        self.formula_pool_node_limit = int(formula_pool_node_limit)

    def collect_formula_garbage(self) -> int:
        """Mark-and-sweep the intern table from the live id-keyed roots.

        The roots are every Shannon-memo key of every registered engine and
        every compiled DTD-validity formula; after the pool compacts
        (:meth:`~repro.formulas.ir.FormulaPool.collect`, in place — engines
        keep their pool reference), those same caches are rekeyed through
        the returned remap so no id dangles.  Returns the number of nodes
        swept; counted in ``pool_gc_runs`` / ``pool_nodes_swept``.  Caller
        must hold ``self.lock``.
        """
        engine_maps = list(self.engines.values())
        dtd_maps = list(self.dtd_formulas.values())
        roots: List[int] = []
        for per_tree in engine_maps:
            for engine in per_tree.values():
                roots.extend(engine.interned_root_ids())
        for per_tree in dtd_maps:
            for _stamp, node in per_tree.values():
                roots.append(node)
        remap, swept = self.formula_pool.collect(roots)
        self.stats.pool_gc_runs += 1
        if remap is None:
            return 0
        for per_tree in engine_maps:
            for engine in per_tree.values():
                engine.remap_interned(remap)
        for per_tree in dtd_maps:
            for key, (stamp, node) in list(per_tree.items()):
                per_tree[key] = (stamp, remap[node])
        self.stats.pool_nodes_swept += swept
        return swept

    def restart_formula_layer_if_oversized(self) -> bool:
        """GC — then, only if still oversized, restart — the formula layer.

        Past the session's ``formula_pool_node_limit`` the state first tries
        :meth:`collect_formula_garbage`: unreachable interned nodes (cofactor
        residuals, formulas of dropped documents, pruned SAT entries) are
        swept with every warm cache kept.  Only when the pool is still over
        the bound afterwards — every node genuinely reachable — does it fall
        back to the wholesale restart: pool replaced and every id-keyed
        cache cleared in the same step (per-probtree engines, compiled DTD
        formulas) so a dangling id can never be priced against the wrong
        table.  Called only at the entry of
        :meth:`ExecutionContext.engine_for` (before an engine is handed out)
        and :meth:`ExecutionContext.validity_formula_for` (before anything
        is compiled or the pool is read by its callers) — callers that
        already hold an engine keep a self-consistent (engine, pool) pair;
        they merely stop sharing.  Returns True only on a wholesale restart.
        """
        limit = self.formula_pool_node_limit
        if self.formula_pool.node_count() <= limit:
            return False
        self.collect_formula_garbage()
        if self.formula_pool.node_count() <= limit:
            return False
        self.formula_pool = FormulaPool(stats=self.stats)
        self.engines.clear()
        self.dtd_formulas.clear()
        self.stats.pool_restarts += 1
        return True


class ExecutionContext:
    """One session's execution policy and caches.

    Args:
        engine: default probability engine mode (``"formula"`` |
            ``"enumerate"`` | ``"sample"`` | ``"auto-sample"``; ``None``
            means ``"formula"``).
        matcher: default embedding matcher (``"indexed"`` | ``"naive"`` |
            ``"columnar"`` | ``"auto"``; ``None`` means ``"indexed"``).
        auto_naive_cost: pattern×tree product below which ``"auto"`` picks
            the naive matcher when no fresh index is cached.
        cache_answers: whether to memoize full answer lists (see
            :meth:`cached_answers`).  On by default for explicitly-created
            session contexts; the module :func:`default_context` disables it
            because anonymous legacy callers expect fresh answer trees.
        max_cached_answers: per-document LRU bound on cached entries (per
            cache layer).  ``None`` means the generous
            :data:`MAX_CACHED_ANSWERS` default; values below 1 are
            rejected.  Evictions are counted in
            :attr:`ContextStats.evictions`.
        pricing: the session's :class:`~repro.formulas.sampling.PricingPolicy`
            (exact-pricing ``max_expansions`` budget plus the sampler's
            ``epsilon``/``confidence``/``max_samples``/``deadline``/``seed``
            knobs), applied to every engine this context hands out.  ``None``
            means the unbudgeted defaults.
        snapshot_retention: session-wide bound on unreleased snapshot pins
            (:meth:`read_snapshot`); beyond it the oldest pins are retired
            (``SnapshotRetiredError`` on later access, counted in
            :attr:`ContextStats.snapshots_retired`).  ``None`` means
            :data:`repro.core.snapshot.SNAPSHOT_RETENTION`.
        fault_plan: an optional :class:`~repro.utils.faults.FaultPlan` the
            update pipeline activates around every operation executed through
            this context — the hook the crash-consistency harness drives.
            ``None`` (the default) injects nothing.
        formula_pool_node_limit: node-count bound on the session's formula
            intern table; past it the context garbage-collects the pool
            (:meth:`gc_formula_pool`) and only restarts the formula layer
            wholesale when GC cannot get back under the bound.  ``None``
            means :data:`FORMULA_POOL_NODE_LIMIT`; shard workers serving
            long-lived sessions set it explicitly.
    """

    __slots__ = ("_engine", "_matcher", "_state")

    def __init__(
        self,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        auto_naive_cost: int = AUTO_NAIVE_COST,
        cache_answers: bool = True,
        max_cached_answers: Optional[int] = None,
        pricing: Optional[PricingPolicy] = None,
        snapshot_retention: Optional[int] = None,
        fault_plan=None,
        formula_pool_node_limit: Optional[int] = None,
        _state: Optional[_ContextState] = None,
    ) -> None:
        self._engine = require_engine_mode(engine) if engine is not None else "formula"
        self._matcher = require_matcher_choice(matcher)
        self._state = (
            _state
            if _state is not None
            else _ContextState(
                auto_naive_cost,
                cache_answers,
                max_cached_answers,
                pricing,
                snapshot_retention,
                fault_plan,
                formula_pool_node_limit,
            )
        )

    # -- modes ---------------------------------------------------------------

    @property
    def engine(self) -> str:
        """The context's default probability engine mode."""
        return self._engine

    @property
    def matcher(self) -> str:
        """The context's default matcher mode (may be ``"auto"``)."""
        return self._matcher

    def with_modes(
        self, engine: Optional[str] = None, matcher: Optional[str] = None
    ) -> "ExecutionContext":
        """A view of this context with overridden modes, sharing all caches.

        This is how per-call ``engine=`` / ``matcher=`` string overrides are
        realized: the returned context prices formulas with the same Shannon
        tables and serves answers from the same answer-set cache.
        """
        if engine is None and matcher is None:
            return self
        return ExecutionContext(
            engine=engine if engine is not None else self._engine,
            matcher=matcher if matcher is not None else self._matcher,
            _state=self._state,
        )

    def shares_caches_with(self, other: "ExecutionContext") -> bool:
        """Whether *other* is a view over the same caches and stats."""
        return self._state is other._state

    def resolve_engine(self, override: Optional[str] = None) -> str:
        """The engine mode for one call (*override* wins when given)."""
        return require_engine_mode(override) if override is not None else self._engine

    def resolve_matcher(self, override: Optional[str] = None) -> str:
        """The matcher choice for one call, possibly still ``"auto"``."""
        return require_matcher_choice(override) if override is not None else self._matcher

    def effective_matcher(
        self, query, tree: DataTree, override: Optional[str] = None, record: bool = True
    ) -> str:
        """The concrete matcher (``"indexed"`` | ``"naive"`` | ``"columnar"``)
        for one evaluation.

        ``"auto"`` is resolved here, in cost order:

        * **columnar** — when numpy is available and either the tree already
          carries a *warm* columnar snapshot — fresh, or stale but patchable
          from a journal suffix of at most
          :data:`~repro.trees.index.PATCH_JOURNAL_LIMIT` entries, in which
          case :func:`~repro.trees.columnar.columnar_tree` will splice the
          pending mutations in (bounded work) rather than rebuild — or the
          tree is at least :data:`AUTO_COLUMNAR_NODES` nodes (vectorized
          interval merges dwarf the one-time column build);
        * **indexed** — if the tree carries a fresh — or *almost fresh*,
          i.e. stale but patchable from a journal suffix of at most
          :data:`~repro.trees.index.PATCH_JOURNAL_LIMIT` entries —
          structural index, the (re)build cost is sunk or negligible and the
          compiled plans win;
        * **naive** — tiny pattern×tree products (the O(n) index build would
          dominate); everything else is indexed.

        ``record=False`` suppresses the ``auto_chose_*`` counters — used by
        cache-key computation, so only decisions that drive actual matching
        are counted (one per evaluation, none on cache hits).
        """
        mode = self.resolve_matcher(override)
        if mode != "auto":
            return mode
        stats = self._state.stats
        if _columnar_have_numpy():
            column = tree._columnar_cache
            warm = column is not None and (
                column.version == tree.version
                or (
                    # Same version arithmetic as the indexed branch below:
                    # a stale-but-patchable column costs a bounded splice,
                    # not the O(n) rebuild, so its build cost is sunk too.
                    # A mid-patch-poisoned column (version -1) predates any
                    # journal base and fails journal_reaches.
                    tree.version - column.version <= PATCH_JOURNAL_LIMIT
                    and tree.journal_reaches(column.version)
                )
            )
            if warm or tree.node_count() >= AUTO_COLUMNAR_NODES:
                if record:
                    stats.auto_chose_columnar += 1
                return "columnar"
        cached = tree._index_cache
        if cached is not None:
            almost_fresh = cached.is_fresh()
            if not almost_fresh:
                # Journal-aware: a stale index whose pending journal suffix
                # is within the patch threshold will be *patched in place*
                # (O(journal · suffix)), not rebuilt — the build cost the
                # naive matcher would dodge is not actually on the table.
                # The suffix length is pure version arithmetic (one journal
                # entry per bump); this runs on every warm answer-cache hit,
                # so no entries are copied out here.
                almost_fresh = (
                    tree.version - cached.version <= PATCH_JOURNAL_LIMIT
                    and tree.journal_reaches(cached.version)
                )
            if almost_fresh:
                if record:
                    stats.auto_chose_indexed += 1
                return "indexed"
        node_count = getattr(query, "node_count", None)
        pattern_nodes = node_count() if callable(node_count) else 4
        if pattern_nodes * tree.node_count() <= self._state.auto_naive_cost:
            if record:
                stats.auto_chose_naive += 1
            return "naive"
        if record:
            stats.auto_chose_indexed += 1
        return "indexed"

    # -- snapshots -----------------------------------------------------------

    @property
    def fault_plan(self):
        """The :class:`~repro.utils.faults.FaultPlan` updates run under (or ``None``)."""
        return self._state.fault_plan

    @property
    def snapshot_retention(self) -> int:
        """Session-wide bound on unreleased :meth:`read_snapshot` pins."""
        return self._state.snapshot_retention

    def read_snapshot(self, probtree: ProbTree):
        """Pin *probtree* at its current ``(tree.version, state_version)``.

        Returns a :class:`~repro.core.snapshot.Snapshot` whose ``probtree``
        keeps answering for the pinned stamp while writers proceed — pipeline
        updates replace objects (the pin just keeps the old version alive),
        and in-place mutators preserve the pinned state copy-on-write.  Use
        as a context manager (or call ``release()``) when done::

            with context.read_snapshot(document) as snap:
                answers = evaluate_on_probtree(query, snap.probtree,
                                               context=context)

        Retention is bounded session-wide (``snapshot_retention``): pinning
        past the bound retires the oldest unreleased pins across *all*
        documents and versions — essential for version chains, where every
        superseded document is a distinct object a per-object bound would
        never see.  Pins are counted in :attr:`ContextStats.snapshots_pinned`
        and retirements in :attr:`ContextStats.snapshots_retired`.
        """
        from repro.core.snapshot import pin

        state = self._state
        with state.lock:
            handle = pin(probtree, retention=None, stats=state.stats)
            tracked = state.active_snapshots
            tracked.append(handle)
            # Prune released handles lazily — only once the tracked list
            # outgrows the bound — so the hot pin path stays allocation-free.
            if len(tracked) > state.snapshot_retention:
                tracked = [h for h in tracked if h.active]
                while len(tracked) > state.snapshot_retention:
                    tracked.pop(0).retire()
                state.active_snapshots = tracked
        return handle

    # -- cache handles -------------------------------------------------------

    def engine_for(
        self, probtree: ProbTree, engine: Optional[str] = None
    ) -> ProbabilityEngine:
        """The context-scoped :class:`ProbabilityEngine` of *probtree*.

        One engine (and thus one Shannon-expansion cache) per prob-tree per
        mode, shared across every question this context answers.  Changing
        the prob-tree's distribution (adding or re-weighting events) hands
        out a fresh engine, exactly like the module-level
        :func:`~repro.core.probability.engine_for`.
        """
        mode = self.resolve_engine(engine)
        with self._state.lock:
            self._state.restart_formula_layer_if_oversized()
            per_tree = self._state.engines.setdefault(probtree, {})
            cached = per_tree.get(mode)
            if cached is None or cached.distribution != probtree.distribution:
                cached = ProbabilityEngine(
                    probtree.distribution,
                    mode=mode,
                    stats=self._state.stats,
                    pool=self._state.formula_pool,
                    policy=self._state.pricing,
                )
                per_tree[mode] = cached
                self._state.stats.engines_created += 1
            return cached

    @property
    def pricing(self) -> PricingPolicy:
        """The session's pricing policy (exact budget + sampling knobs)."""
        return self._state.pricing

    @property
    def formula_pool(self) -> FormulaPool:
        """The session's shared formula intern table (one DAG of node ids).

        Every :class:`ProbabilityEngine` this context hands out prices
        through this pool, so equal formulas — across queries, documents,
        DTD checks and update conditions — share one interned node and one
        cached price per distribution.  The pool also carries the
        distribution-independent SAT cache used by the DTD decision
        procedures.
        """
        return self._state.formula_pool

    @property
    def formula_pool_node_limit(self) -> int:
        """The session's node-count bound on the formula intern table."""
        return self._state.formula_pool_node_limit

    def gc_formula_pool(self) -> int:
        """Garbage-collect the session's formula pool; returns nodes swept.

        Marks every node reachable from the live roots — the Shannon memos
        of the context's engines and its compiled DTD-validity formulas —
        sweeps the rest and compacts the pool in place, rekeying the
        id-keyed caches through the resulting remap.  Warm prices survive;
        only genuinely unreachable nodes (cofactor residuals, formulas of
        documents the session dropped) are reclaimed.  Runs automatically
        when the pool crosses ``formula_pool_node_limit`` (the wholesale
        restart is now the fallback for pools that are still oversized after
        a sweep); call it explicitly to shed memory at a quiet moment.
        Counted in :attr:`ContextStats.pool_gc_runs` /
        :attr:`ContextStats.pool_nodes_swept`.

        Runs Python's cycle collector first: prob-trees are cyclic, so a
        dropped document's engine (weak-keyed by the prob-tree) lingers —
        and keeps its memo nodes rooted — until the cycle collector clears
        it.  Without this, an explicit sweep right after ``drop()`` would
        reclaim nothing.
        """
        gc.collect()
        with self._state.lock:
            return self._state.collect_formula_garbage()

    def validity_formula_for(self, probtree: ProbTree, dtd) -> int:
        """The interned DTD-validity formula of *probtree*, compiled once.

        Keyed by the DTD's content :meth:`~repro.dtd.dtd.DTD.fingerprint`
        and stamped with ``(tree.version, state_version)`` — any structural,
        label, condition or distribution mutation forces a recompile, while
        a warm repeated check (``dtd_satisfiable`` / ``dtd_valid`` /
        ``dtd_satisfaction_probability`` over an unchanged document) is two
        dictionary probes.  The compiled id stays meaningful forever: it
        lives in the context's shared formula pool.
        """
        # Imported lazily: repro.dtd.probtree_dtd imports this module.
        from repro.dtd.probtree_dtd import dtd_validity_formula_ir

        state = self._state
        with state.lock:
            # SAT-only workloads (dtd_satisfiable / dtd_valid) never reach
            # engine_for, so the pool bound is enforced here too — before the
            # compiled-formula cache is consulted and before any caller reads
            # the pool (the DTD entry points compile first, fetch the pool
            # after).  When an engine_for in the same expression already
            # restarted, the pool is small again and this is a no-op.
            state.restart_formula_layer_if_oversized()
            per_tree = state.dtd_formulas.get(probtree)
            if per_tree is None:
                per_tree = {}
                state.dtd_formulas[probtree] = per_tree
            stamp = (probtree.tree.version, probtree.state_version)
            key = dtd.fingerprint()
            cached = per_tree.get(key)
            if cached is not None and cached[0] == stamp:
                return cached[1]
            node = dtd_validity_formula_ir(probtree, dtd, state.formula_pool)
            per_tree[key] = (stamp, node)
            return node

    def index_for(self, tree: DataTree) -> TreeIndex:
        """The shared structural index of *tree* (patched, fetched or built).

        Delegates to :func:`~repro.trees.index.tree_index`: a stale cached
        snapshot is patched in place by replaying the tree's mutation
        journal, and rebuilt only past the cost-model threshold.
        """
        return tree_index(tree)

    # -- answer-cache internals ---------------------------------------------

    def _sync_nodeset_shard(self, tree: DataTree) -> _DocumentCache:
        """The node-set shard of *tree*, label-invalidated up to its version."""
        shard = self._state.answer_cache.get(tree)
        if shard is None:
            shard = _DocumentCache(tree.version)
            self._state.answer_cache[tree] = shard
        elif shard.stamp != tree.version:
            self._retire(shard, _journal_touch(tree, shard.stamp))
            shard.stamp = tree.version
        return shard

    @staticmethod
    def _retire(shard: _DocumentCache, touch) -> None:
        """Drop the entries a mutation batch could have affected.

        *touch* is the ``(touched_labels, relabeled_nodes)`` pair from
        :func:`_journal_touch`, or ``None`` when the journal is gone —
        wholesale invalidation then.  An entry survives iff its label
        fingerprint is disjoint from the touched labels AND (for full-answer
        entries) none of its answer nodes was relabeled; wildcard entries
        (``labels is None``) never survive a non-empty batch.
        """
        entries = shard.entries
        if touch is None:
            entries.clear()
            return
        labels, relabeled = touch
        if not labels and not relabeled:
            return
        dead = [
            key
            for key, (entry_labels, node_ids, _value) in entries.items()
            if entry_labels is None
            or (labels and not labels.isdisjoint(entry_labels))
            or (relabeled and node_ids is not None and not relabeled.isdisjoint(node_ids))
        ]
        for key in dead:
            del entries[key]

    def _evict(self, shard: _DocumentCache) -> None:
        """Enforce the per-document LRU bound, counting evictions."""
        entries = shard.entries
        limit = self._state.max_cached_answers
        stats = self._state.stats
        while len(entries) > limit:
            entries.popitem(last=False)
            stats.evictions += 1

    def result_node_sets(
        self,
        query,
        source: Union[ProbTree, DataTree],
        matcher: Optional[str] = None,
    ) -> List[FrozenSet[NodeId]]:
        """Answer node sets of *query* on *source*, memoized per tree version.

        The cache key is ``(query.fingerprint(), matcher)``; queries without
        a ``fingerprint()`` method (ad-hoc :class:`Query` subclasses) bypass
        the cache.  Mutations no longer invalidate wholesale: the per-tree
        shard is carried across version bumps and only the entries whose
        label fingerprints intersect the mutated labels (per the tree's
        journal) are dropped — a relabel far from everything a pattern can
        touch keeps its warm entries.  Replacing the tree object altogether
        (updates, cleaning, thresholding all produce new trees) keys a
        separate shard that dies with the old tree.  Each shard is LRU
        bounded by the context's ``max_cached_answers``.
        """
        tree = source.tree if isinstance(source, ProbTree) else source
        effective = self.effective_matcher(query, tree, matcher)
        compute = query.result_node_sets
        kwargs = _legacy_kwargs(compute, effective, self)
        if "context" not in kwargs:
            return compute(tree, **kwargs)
        fingerprint = None
        method = getattr(query, "fingerprint", None)
        if callable(method):
            fingerprint = method()
        if fingerprint is None:
            return compute(tree, **kwargs)
        stats = self._state.stats
        with self._state.lock:
            shard = self._sync_nodeset_shard(tree)
            key = (fingerprint, effective)
            cached = shard.entries.get(key)
            if cached is not None:
                shard.entries.move_to_end(key)
                stats.nodeset_cache_hits += 1
                return list(cached[2])
            stats.nodeset_cache_misses += 1
            result = compute(tree, **kwargs)
            shard.entries[key] = (_query_label_set(query), None, tuple(result))
            self._evict(shard)
            return result

    def cached_answers(
        self,
        query,
        probtree: ProbTree,
        keep_zero_probability: bool,
        compute,
    ):
        """Full Definition 8 answer lists, memoized per prob-tree state.

        The cache key pairs the query's structural fingerprint with the
        concrete matcher; the guard stamp is ``(tree.version,
        probtree.state_version)``.  Condition/distribution mutations (a
        ``state_version`` bump) still invalidate wholesale — they can
        reprice any answer — but purely structural/label mutations are
        resolved against the tree's mutation journal: only the entries
        whose label fingerprints (or cached answer nodes, for relabels)
        intersect the mutated labels are dropped.  Replacing the prob-tree
        object, as updates do, keys a separate shard that dies with it —
        see :meth:`migrate_answers` for how updates carry unaffected
        entries across the replacement.  Shards are LRU bounded by
        ``max_cached_answers`` (evictions counted in
        :attr:`ContextStats.evictions`).

        Cached answers are shared verbatim across calls — *including the
        miss that populated the entry* — so treat the returned
        :class:`~repro.queries.evaluation.QueryAnswer` trees as read-only
        (mutating one would corrupt every later result for that query; use
        ``answer.tree.copy()`` before editing).  Because that read-only
        contract is an opt-in, the module :func:`default_context` is built
        with ``cache_answers=False`` — anonymous legacy callers keep the
        fresh-tree-per-call semantics — while explicitly-created session
        contexts (including every warehouse's) cache by default.  Queries
        without a ``fingerprint()`` bypass the cache and just call *compute*.
        """
        if not self._state.cache_answers:
            return compute()
        method = getattr(query, "fingerprint", None)
        fingerprint = method() if callable(method) else None
        if fingerprint is None:
            return compute()
        tree = probtree.tree
        # record=False: this resolution only builds the cache key; the
        # compute path re-resolves (and counts) if matching actually runs.
        effective = self.effective_matcher(query, tree, record=False)
        with self._state.lock:
            stamp = (tree.version, probtree.state_version)
            shard = self._state.probtree_answers.get(probtree)
            if shard is None:
                shard = _DocumentCache(stamp)
                self._state.probtree_answers[probtree] = shard
            elif shard.stamp != stamp:
                if shard.stamp[1] != probtree.state_version:
                    # Condition / distribution mutations can reprice any answer;
                    # only structural journals support label-targeted retention.
                    shard.entries.clear()
                else:
                    self._retire(shard, _journal_touch(tree, shard.stamp[0]))
                shard.stamp = stamp
            # The engine mode is part of the key even though per-answer prices
            # are mode-independent: an explicit engine="enumerate" request is a
            # request to *run* the oracle path, not to be served formula-cached
            # results (differential comparisons must stay honest).
            key = (fingerprint, effective, self.resolve_engine(), keep_zero_probability)
            cached = shard.entries.get(key)
            stats = self._state.stats
            if cached is not None:
                shard.entries.move_to_end(key)
                stats.answer_cache_hits += 1
                return list(cached[2])
            stats.answer_cache_misses += 1
            result = compute()
            # Answer trees embed unmatched ancestors; remember every node id so
            # a later relabel of one of them retires this entry (see _retire).
            node_ids = frozenset(
                node for answer in result for node in answer.tree.nodes()
            )
            shard.entries[key] = (_query_label_set(query), node_ids, tuple(result))
            self._evict(shard)
            return result

    def migrate_answers(
        self,
        source: ProbTree,
        target: ProbTree,
        touched_labels: Iterable[str],
    ) -> int:
        """Carry still-valid cached answers from *source* to *target*.

        Updates and cleaning *replace* the prob-tree (and its data tree), so
        without help the context would start both documents' caches cold.
        When the replacement preserves surviving node identifiers, labels
        and conditions — true for probabilistic insertions/deletions and for
        :func:`~repro.core.cleaning.clean`, NOT for threshold re-encoding —
        every entry whose label fingerprint is disjoint from
        *touched_labels* answers identically on the new document and can be
        copied across (wildcard entries never migrate).  Returns the number
        of entries carried over; :attr:`ContextStats.answers_migrated`
        accumulates it.

        The per-probtree *formula* caches are migrated alongside
        (:meth:`migrate_formulas`): prices do not depend on labels at all,
        only on the distribution, so they carry over whenever the
        replacement's distribution conservatively extends the source's.

        Fail-empty, never fail-stale: an exception mid-migration (see the
        ``context.migrate_answers`` fault site) drops *target*'s answer-cache
        shards wholesale before propagating, so a half-carried map can never
        serve a partially migrated working set as if it were complete.
        *Source*'s shards are untouched — they were only read.
        """
        state = self._state
        with state.lock:
            self.migrate_formulas(source, target)
            touched = frozenset(touched_labels)
            moved = 0

            def carry(src: Optional[_DocumentCache], dst: _DocumentCache) -> int:
                count = 0
                for key, record in src.entries.items():
                    labels = record[0]
                    if (
                        labels is not None
                        and labels.isdisjoint(touched)
                        and key not in dst.entries
                    ):
                        fire("context.migrate_answers")
                        dst.entries[key] = record
                        count += 1
                self._evict(dst)
                return count

            old_tree, new_tree = source.tree, target.tree
            try:
                src = state.answer_cache.get(old_tree)
                if src is not None and src.stamp == old_tree.version:
                    dst = state.answer_cache.get(new_tree)
                    if dst is None:
                        dst = _DocumentCache(new_tree.version)
                        state.answer_cache[new_tree] = dst
                    if dst.stamp == new_tree.version:
                        moved += carry(src, dst)
                if state.cache_answers:
                    src = state.probtree_answers.get(source)
                    if src is not None and src.stamp == (
                        old_tree.version,
                        source.state_version,
                    ):
                        stamp = (new_tree.version, target.state_version)
                        dst = state.probtree_answers.get(target)
                        if dst is None:
                            dst = _DocumentCache(stamp)
                            state.probtree_answers[target] = dst
                        if dst.stamp == stamp:
                            moved += carry(src, dst)
            except BaseException:
                state.answer_cache.pop(new_tree, None)
                state.probtree_answers.pop(target, None)
                raise
            state.stats.answers_migrated += moved
            return moved

    def migrate_formulas(self, source: ProbTree, target: ProbTree) -> int:
        """Carry memoized formula prices from *source*'s engines to *target*'s.

        Sound exactly when *target*'s distribution is a **conservative
        extension** of *source*'s — every source event still present with an
        unchanged probability (true for probabilistic updates, which only add
        one fresh event, and for cleaning, which keeps the distribution):
        every formula priced against the source cannot mention the fresh
        events, so its price is unchanged.  Anything else (threshold
        re-encoding re-draws event names and probabilities) migrates
        nothing.  All engines of one context share the intern pool, so the
        id-keyed Shannon tables transfer verbatim.  Returns the number of
        cache entries carried; :attr:`ContextStats.formulas_migrated`
        accumulates it.

        Fail-empty, never fail-stale: an exception mid-absorb (see the
        ``context.migrate_formulas`` fault site) drops *target*'s whole
        engine registry before propagating — a partially absorbed Shannon
        table would otherwise masquerade as the fully migrated one.
        """
        state = self._state
        with state.lock:
            engines = state.engines.get(source)
            if not engines:
                return 0
            target_distribution = target.distribution
            moved = 0
            try:
                for mode, engine in engines.items():
                    if not engine.cache_size():
                        continue
                    # Validate against the distribution *this engine* priced
                    # under — the source prob-tree may have re-weighted an
                    # event since the engine was cut (engine_for would hand
                    # out a fresh engine next time, but the stale one still
                    # sits in the registry).
                    engine_distribution = engine.distribution
                    if engine_distribution != target_distribution and any(
                        target_distribution.get(event) != probability
                        for event, probability in engine_distribution.as_dict().items()
                    ):
                        continue
                    fire("context.migrate_formulas")
                    moved += self.engine_for(target, mode).absorb(engine)
            except BaseException:
                state.engines.pop(target, None)
                raise
            if moved:
                state.stats.formulas_migrated += moved
            return moved

    def results(self, query, tree: DataTree, matcher: Optional[str] = None):
        """Answer sub-datatrees of *query* on *tree* under this context's policy."""
        effective = self.effective_matcher(query, tree, matcher)
        method = query.results
        return method(tree, **_legacy_kwargs(method, effective, self))

    def matches(self, query, tree: DataTree, matcher: Optional[str] = None):
        """All embeddings of *query* into *tree* under this context's policy."""
        effective = self.effective_matcher(query, tree, matcher)
        method = query.matches_with
        return method(tree, **_legacy_kwargs(method, effective, self))

    # -- stats ---------------------------------------------------------------

    @property
    def stats(self) -> ContextStats:
        """The live counters of this context (shared with mode-override views)."""
        return self._state.stats

    def note_plan_compiled(self) -> None:
        """Record one compiled pattern plan (called by the indexed matcher)."""
        self._state.stats.plans_compiled += 1

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(engine={self._engine!r}, matcher={self._matcher!r}, "
            f"stats={self.stats!r})"
        )


# ---------------------------------------------------------------------------
# Module default context and per-call resolution
# ---------------------------------------------------------------------------

_DEFAULT_CONTEXT = ExecutionContext(cache_answers=False)


def default_context() -> ExecutionContext:
    """The module-level default context (engine ``"formula"``, matcher ``"indexed"``).

    Used by every entry point when the caller supplies neither ``context=``
    nor a legacy string kwarg, so ad-hoc calls still share one set of
    engines, indexes and node-set caches per process.  Full answer-list
    caching is *disabled* here (``cache_answers=False``): callers that never
    opted into a context keep the historical fresh-answer-trees-per-call
    semantics and cannot be bitten by the shared-read-only contract of
    :meth:`ExecutionContext.cached_answers`.
    """
    return _DEFAULT_CONTEXT


def set_default_context(context: ExecutionContext) -> ExecutionContext:
    """Replace the module default context; returns the previous one."""
    global _DEFAULT_CONTEXT
    if not isinstance(context, ExecutionContext):
        raise TypeError(f"expected an ExecutionContext, got {type(context).__name__}")
    previous = _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = context
    return previous


def resolve_context(
    context: Optional[ExecutionContext] = None,
    engine: Optional[str] = None,
    matcher: Optional[str] = None,
) -> ExecutionContext:
    """The context one call executes under.

    Precedence, mirroring the library-wide convention:

    1. per-call string overrides (``engine=`` / ``matcher=``) always win —
       they produce a mode-override *view* of the chosen context, so caches
       are still shared;
    2. an explicit per-call ``context=``;
    3. the module :func:`default_context`.
    """
    base = context if context is not None else _DEFAULT_CONTEXT
    return base.with_modes(engine=engine, matcher=matcher)


__all__ = [
    "MATCHER_CHOICES",
    "AUTO_NAIVE_COST",
    "AUTO_COLUMNAR_NODES",
    "MAX_CACHED_ANSWERS",
    "FORMULA_POOL_NODE_LIMIT",
    "require_matcher_choice",
    "ContextStats",
    "ExecutionContext",
    "default_context",
    "set_default_context",
    "resolve_context",
]
