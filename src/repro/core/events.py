"""Event variables and probability distributions.

A prob-tree is defined over a finite set ``W`` of event variables together
with a probability distribution ``π`` assigning to each variable a value in
``]0; 1]`` (Section 2 of the paper — zero probabilities are disallowed by
convention so that updates with zero confidence are never performed).
Events are assumed mutually independent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.utils.errors import InvalidProbabilityError


class ProbabilityDistribution:
    """The pair ``(W, π)``: a finite set of events with their probabilities.

    Immutable; deriving a new distribution (adding an event, restricting to a
    subset) returns a new object so prob-trees can safely share
    distributions.
    """

    __slots__ = ("_probabilities",)

    def __init__(self, probabilities: Mapping[str, float] | None = None) -> None:
        cleaned: Dict[str, float] = {}
        if probabilities:
            for event, probability in probabilities.items():
                cleaned[str(event)] = _check_probability(event, probability)
        self._probabilities = cleaned

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "ProbabilityDistribution":
        return ProbabilityDistribution()

    @staticmethod
    def uniform(events: Iterable[str], probability: float = 0.5) -> "ProbabilityDistribution":
        """All events in *events* get the same probability."""
        return ProbabilityDistribution({event: probability for event in events})

    # -- inspection --------------------------------------------------------

    def events(self) -> Set[str]:
        """The event set ``W``."""
        return set(self._probabilities)

    def __getitem__(self, event: str) -> float:
        return self._probabilities[event]

    def get(self, event: str, default: Optional[float] = None) -> Optional[float]:
        return self._probabilities.get(event, default)

    def __contains__(self, event: object) -> bool:
        return event in self._probabilities

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._probabilities))

    def __len__(self) -> int:
        return len(self._probabilities)

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._probabilities.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._probabilities)

    # -- derivation --------------------------------------------------------

    def with_event(self, event: str, probability: float) -> "ProbabilityDistribution":
        """A new distribution with *event* added (or re-assigned)."""
        updated = dict(self._probabilities)
        updated[str(event)] = _check_probability(event, probability)
        return ProbabilityDistribution(updated)

    def with_events(self, probabilities: Mapping[str, float]) -> "ProbabilityDistribution":
        """A new distribution extended with every entry of *probabilities*."""
        updated = dict(self._probabilities)
        for event, probability in probabilities.items():
            updated[str(event)] = _check_probability(event, probability)
        return ProbabilityDistribution(updated)

    def without_event(self, event: str) -> "ProbabilityDistribution":
        updated = dict(self._probabilities)
        updated.pop(event, None)
        return ProbabilityDistribution(updated)

    def restricted_to(self, events: Iterable[str]) -> "ProbabilityDistribution":
        keep = set(events)
        return ProbabilityDistribution(
            {event: p for event, p in self._probabilities.items() if event in keep}
        )

    # -- semantics helpers ---------------------------------------------------

    def world_probability(self, world: Iterable[str], over: Optional[Iterable[str]] = None) -> float:
        """Probability of the world *world* (Definition 4).

        ``∏_{w ∈ V} π(w) · ∏_{w ∈ W−V} (1 − π(w))`` where ``W`` defaults to
        the whole event set but can be restricted with *over* (useful when a
        prob-tree only mentions a subset of the registered events).
        """
        chosen = set(world)
        domain = set(over) if over is not None else set(self._probabilities)
        missing = chosen - domain
        if missing:
            raise KeyError(f"world mentions unknown events: {sorted(missing)}")
        result = 1.0
        for event in domain:
            p = self._probabilities[event]
            result *= p if event in chosen else (1.0 - p)
        return result

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilityDistribution):
            return NotImplemented
        return self._probabilities == other._probabilities

    def __hash__(self) -> int:
        return hash(frozenset(self._probabilities.items()))

    def __repr__(self) -> str:
        return f"ProbabilityDistribution({self._probabilities!r})"


class EventFactory:
    """Generates fresh event variable names.

    Probabilistic updates each introduce a new, independent event variable
    capturing the system's confidence in the update; the factory hands out
    names guaranteed not to clash with previously issued ones or with an
    initial set of reserved names.
    """

    __slots__ = ("_prefix", "_counter", "_reserved")

    def __init__(self, prefix: str = "w", reserved: Iterable[str] = ()) -> None:
        self._prefix = prefix
        self._counter = 0
        self._reserved = set(reserved)

    def reserve(self, events: Iterable[str]) -> None:
        """Mark *events* as already in use."""
        self._reserved.update(events)

    def fresh(self) -> str:
        """Return a new, unused event name."""
        while True:
            self._counter += 1
            candidate = f"{self._prefix}{self._counter}"
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate


def _check_probability(event: str, probability: float) -> float:
    value = float(probability)
    if not 0.0 < value <= 1.0:
        raise InvalidProbabilityError(
            f"probability of event {event!r} must lie in ]0; 1], got {probability!r}"
        )
    return value


__all__ = ["ProbabilityDistribution", "EventFactory"]
