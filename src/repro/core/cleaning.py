"""Cleaning of prob-trees (Section 3 of the paper).

A prob-tree can be *cleaned* in linear time by

* removing superfluous atomic conditions — literals already implied by the
  condition of some ancestor (a node only exists when all its ancestors do,
  so repeating an ancestor's literal is redundant);
* pruning nodes with inconsistent conditions — conditions that are
  intrinsically inconsistent (contain ``w`` and ``¬w``) or that contradict a
  condition imposed by an ancestor (such nodes are absent from every world).

Cleaning never changes the possible-world semantics; the Figure 3 equivalence
algorithm requires its inputs to be clean.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition
from repro.trees.datatree import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle at runtime
    from repro.core.context import ExecutionContext


def clean(probtree: ProbTree, context: "Optional[ExecutionContext]" = None) -> ProbTree:
    """Return a clean prob-tree with the same possible-world semantics.

    Cleaning preserves surviving node identifiers and labels, and it
    preserves the semantics outright, so cached answers of queries whose
    label fingerprints avoid every *pruned* label remain valid: they are
    migrated to the returned prob-tree through the resolved context
    (:meth:`~repro.core.context.ExecutionContext.migrate_answers`) instead
    of being dropped with the replaced objects.  Pass the session's
    ``context=`` to keep its warm entries; omitted, the module default
    context is used.
    """
    from repro.core.context import resolve_context  # local: avoids an import cycle

    tree = probtree.tree
    keep: Set[NodeId] = set()
    new_conditions: Dict[NodeId, Condition] = {}
    pruned_labels: Set[str] = set()

    # Walk top-down carrying the accumulated (already-simplified) ancestor
    # condition; prune on inconsistency, drop inherited literals otherwise.
    stack = [(tree.root, Condition.true())]
    while stack:
        node, inherited = stack.pop()
        own = probtree.condition(node)
        if not own.is_consistent() or own.contradicts(inherited):
            # The node (and its whole subtree) is absent from every world.
            pruned_labels.add(tree.label(node))
            pruned_labels.update(
                tree.label(dead) for dead in tree.descendants(node)
            )
            continue
        simplified = own.minus(inherited)
        keep.add(node)
        if node != tree.root and not simplified.is_true():
            new_conditions[node] = simplified
        accumulated = inherited.conjoin(simplified)
        for child in tree.children(node):
            stack.append((child, accumulated))

    cleaned_tree = tree.restrict(keep)
    result = ProbTree(cleaned_tree, probtree.distribution, new_conditions)
    resolve_context(context).migrate_answers(probtree, result, pruned_labels)
    return result


def is_clean(probtree: ProbTree) -> bool:
    """Whether *probtree* is already clean (idempotence check helper)."""
    tree = probtree.tree
    stack = [(tree.root, Condition.true())]
    while stack:
        node, inherited = stack.pop()
        own = probtree.condition(node)
        if not own.is_consistent() or own.contradicts(inherited):
            return False
        if own.literals & inherited.literals:
            return False
        accumulated = inherited.conjoin(own)
        for child in tree.children(node):
            stack.append((child, accumulated))
    return True


__all__ = ["clean", "is_clean"]
