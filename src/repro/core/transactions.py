"""All-or-nothing mutation scopes over prob-trees.

``with transaction(probtree):`` opens an undo log on the prob-tree *and* its
underlying data tree.  On normal exit every mutation made inside the scope
commits (and the deferred journal trim runs); on exception the logs replay in
reverse and the exception propagates, leaving tree structure, labels,
conditions, distribution, mutation journal, ``version``/``state_version``
counters and the ``next_id`` allocator **byte-identical** to the begin mark —
no externally visible effect, as if the scope never ran.

This is the commit discipline of the update pipeline
(:func:`~repro.updates.probtree_updates.apply_update_to_probtree` wraps the
mutation phase of every operation in one), but it is equally usable for
hand-rolled in-place edits::

    with transaction(probtree):
        node = probtree.add_child(parent, "reading", condition)
        probtree.tree.set_label(other, "checked")
        # any exception here rolls both mutations back

Scopes do not nest (``TransactionError``), and a transaction serializes with
nothing: it is a single-writer construct.  Concurrent readers are safe only
through pinned snapshots (:mod:`repro.core.snapshot`) — the undo log itself
is not a lock.
"""

from __future__ import annotations

from typing import Optional

from repro.core.probtree import ProbTree


class Transaction:
    """The open scope produced by :func:`transaction`; use as context manager."""

    __slots__ = ("probtree", "_context", "_tree_mark", "_state_mark", "_distribution")

    def __init__(self, probtree: ProbTree, context=None) -> None:
        self.probtree = probtree
        self._context = context
        self._tree_mark: Optional[tuple] = None
        self._state_mark: Optional[int] = None
        self._distribution = None

    def __enter__(self) -> "Transaction":
        probtree = self.probtree
        # Begin on the tree first: if the prob-tree is already in a scope,
        # its begin_undo raises before the tree log was opened... and vice
        # versa; roll the first begin back on a failed second.
        tree_mark = probtree.tree.begin_undo()
        try:
            self._state_mark = probtree.begin_undo()
        except BaseException:
            probtree.tree.rollback_undo(tree_mark)
            raise
        self._tree_mark = tree_mark
        self._distribution = probtree.distribution
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        probtree = self.probtree
        if exc_type is None:
            probtree.commit_undo()
            probtree.tree.commit_undo()
            return False
        probtree.rollback_undo(self._state_mark)
        probtree.tree.rollback_undo(self._tree_mark)
        # Belt and braces: the distribution is also restored by the undo
        # records, but the reference equality check below costs nothing and
        # survives even an empty undo log.
        probtree._distribution = self._distribution
        if self._context is not None:
            self._context.stats.rollbacks += 1
        return False  # propagate the exception


def transaction(probtree: ProbTree, context=None) -> Transaction:
    """An all-or-nothing mutation scope on *probtree* (see module docstring).

    *context* (an :class:`~repro.core.context.ExecutionContext`) is optional;
    when given, rollbacks are counted in its ``ContextStats.rollbacks``.
    """
    return Transaction(probtree, context=context)


__all__ = ["Transaction", "transaction"]
