"""The probabilistic tree (prob-tree) structure — Definition 2 of the paper.

A prob-tree is a 4-tuple ``(t, W, π, γ)``: a data tree ``t``, a finite set of
event variables ``W`` with a probability distribution ``π``, and a function
``γ`` assigning a *condition* (a conjunction of possibly-negated event
literals) to every non-root node.  The root carries no condition: it is
present in every possible world.

The central operation is :meth:`ProbTree.value_in_world`: given a world
``V ⊆ W``, the value ``V(T)`` is the subtree of ``t`` obtained by removing
every node whose condition is violated by ``V`` — together with its
descendants (Definition 4).  The possible-world semantics ``⟦T⟧`` built on
top of this lives in :mod:`repro.core.semantics`.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.core.events import EventFactory, ProbabilityDistribution
from repro.formulas.literals import Condition, Valuation
from repro.trees.datatree import DataTree, NodeId
from repro.utils.errors import InvalidConditionError, TransactionError
from repro.utils.faults import fire


class ProbTree:
    """A probabilistic tree ``(t, W, π, γ)``.

    The underlying :class:`DataTree` is owned by the prob-tree (mutating it
    from outside invalidates the conditions mapping); use :meth:`copy` before
    destructive experiments.
    """

    # __weakref__ lets repro.core.probability attach a per-probtree engine
    # cache without keeping dead prob-trees alive.
    __slots__ = (
        "_tree",
        "_distribution",
        "_conditions",
        "_state_version",
        "_undo",
        "_snapshot_pins",
        "__weakref__",
    )

    def __init__(
        self,
        tree: DataTree,
        distribution: ProbabilityDistribution | Mapping[str, float] | None = None,
        conditions: Mapping[NodeId, Condition] | None = None,
    ) -> None:
        if not isinstance(distribution, ProbabilityDistribution):
            distribution = ProbabilityDistribution(distribution or {})
        self._tree = tree
        self._distribution = distribution
        self._conditions: Dict[NodeId, Condition] = {}
        self._state_version: int = 0
        self._undo = None  # inverse records while inside a Transaction
        self._snapshot_pins = None  # managed by repro.core.snapshot
        if conditions:
            for node, condition in conditions.items():
                self.set_condition(node, condition)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def certain(tree: DataTree) -> "ProbTree":
        """A prob-tree with no events: its only possible world is *tree*."""
        return ProbTree(tree, ProbabilityDistribution.empty(), {})

    # -- components --------------------------------------------------------

    @property
    def tree(self) -> DataTree:
        """The underlying data tree ``t``."""
        return self._tree

    @property
    def distribution(self) -> ProbabilityDistribution:
        """The pair ``(W, π)``."""
        return self._distribution

    @property
    def state_version(self) -> int:
        """Mutation counter over ``γ`` and ``(W, π)``.

        Bumped by :meth:`set_condition` and :meth:`add_event` — the two ways
        a prob-tree's probabilistic state can change *without* touching the
        underlying data tree (whose own
        :attr:`~repro.trees.datatree.DataTree.version` covers structural and
        label mutations).  Together the two counters let the
        :class:`~repro.core.context.ExecutionContext` answer cache detect
        every mutation that could change cached answers or probabilities.
        """
        return self._state_version

    def events(self) -> Set[str]:
        """The declared event set ``W``."""
        return self._distribution.events()

    def used_events(self) -> Set[str]:
        """Events actually mentioned by at least one condition.

        Events in ``W`` that no condition mentions do not influence any
        ``V(T)``; restricting world enumeration to used events yields an
        isomorphic possible-world set, which most algorithms exploit.
        """
        result: Set[str] = set()
        for condition in self._conditions.values():
            result |= condition.events()
        return result

    # -- conditions ---------------------------------------------------------

    def condition(self, node: NodeId) -> Condition:
        """The condition ``γ(node)`` (the empty condition for the root)."""
        if not self._tree.has_node(node):
            raise KeyError(f"node {node!r} does not belong to the prob-tree")
        return self._conditions.get(node, Condition.true())

    def set_condition(self, node: NodeId, condition: Condition) -> None:
        """Assign a condition to a non-root node.

        Raises :class:`InvalidConditionError` if the node is the root or the
        condition mentions events absent from ``W``.
        """
        if not self._tree.has_node(node):
            raise KeyError(f"node {node!r} does not belong to the prob-tree")
        if node == self._tree.root:
            if condition.is_true():
                self._conditions.pop(node, None)
                return
            raise InvalidConditionError("the root of a prob-tree cannot carry a condition")
        unknown = condition.events() - self._distribution.events()
        if unknown:
            raise InvalidConditionError(
                f"condition mentions events not in W: {sorted(unknown)}"
            )
        self._notify_write()
        undo = self._undo
        if undo is not None:
            undo.append(("condition", node, self._conditions.get(node)))
        if condition.is_true():
            self._conditions.pop(node, None)
        else:
            self._conditions[node] = condition
        fire("probtree.set_condition")
        self._state_version += 1

    def conditions(self) -> Dict[NodeId, Condition]:
        """A copy of the (non-trivial) condition assignment ``γ``."""
        return dict(self._conditions)

    def accumulated_condition(self, node: NodeId) -> Condition:
        """Conjunction of the conditions of *node* and all its ancestors.

        A node is present in world ``V`` exactly when its accumulated
        condition holds in ``V``.
        """
        result = self.condition(node)
        for ancestor in self._tree.ancestors(node):
            result = result.conjoin(self.condition(ancestor))
        return result

    # -- construction helpers ----------------------------------------------

    def add_child(
        self,
        parent: NodeId,
        label: str,
        condition: Condition | None = None,
    ) -> NodeId:
        """Add a child node with an optional condition; return its id."""
        node = self._tree.add_child(parent, label)
        if condition is not None and not condition.is_true():
            self.set_condition(node, condition)
        return node

    def remove_subtree(self, node: NodeId) -> None:
        """Remove *node* and its descendants, dropping their conditions.

        Counterpart of :meth:`DataTree.delete_subtree` that keeps the
        condition assignment ``γ`` consistent with the remaining nodes.
        """
        removed = self._tree.delete_subtree(node)
        undo = self._undo
        for removed_node in removed:
            old = self._conditions.pop(removed_node, None)
            if undo is not None and old is not None:
                undo.append(("condition", removed_node, old))

    def add_event(self, event: str, probability: float) -> None:
        """Register a new event variable with probability *probability*."""
        new_distribution = self._distribution.with_event(event, probability)
        self._notify_write()
        undo = self._undo
        if undo is not None:
            undo.append(("distribution", self._distribution))
        self._distribution = new_distribution
        fire("probtree.add_event")
        self._state_version += 1

    def event_factory(self, prefix: str = "w") -> EventFactory:
        """An :class:`EventFactory` that avoids every event already in ``W``."""
        return EventFactory(prefix=prefix, reserved=self._distribution.events())

    # -- semantics ----------------------------------------------------------

    def value_in_world(self, world: AbstractSet[str] | Valuation) -> DataTree:
        """The value ``V(T)`` of the prob-tree in world *world* (Definition 4).

        Nodes whose condition contains a literal violated by *world* are
        removed together with their descendants.  The result shares node
        identifiers with the underlying data tree.
        """
        if isinstance(world, Valuation):
            world = world.true_events
        world_set = set(world)

        def should_remove(node: NodeId) -> bool:
            return not self.condition(node).holds_in(world_set)

        return self._tree.prune_where(should_remove)

    def world_probability(self, world: AbstractSet[str], over_used_only: bool = False) -> float:
        """Probability ``∏_{w∈V} π(w) ∏_{w∈W−V} (1−π(w))`` of a world."""
        domain = self.used_events() if over_used_only else self._distribution.events()
        return self._distribution.world_probability(set(world) & domain, over=domain)

    # -- size ---------------------------------------------------------------

    def node_count(self) -> int:
        return self._tree.node_count()

    def literal_count(self) -> int:
        """Total number of literals across all conditions."""
        return sum(len(condition) for condition in self._conditions.values())

    def size(self) -> int:
        """The size ``|T|`` used by the paper: nodes plus literals."""
        return self.node_count() + self.literal_count()

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, stats=None):
        """Pin an immutable view of this prob-tree at its current version.

        Returns a :class:`repro.core.snapshot.Snapshot` handle whose
        ``probtree`` property keeps answering for the pinned
        ``(tree.version, state_version)`` stamp: in-place mutations trigger a
        copy-on-write preserve of the pinned state, and pipeline updates
        produce new objects anyway.  At most
        :data:`repro.core.snapshot.SNAPSHOT_RETENTION` distinct versions stay
        pinned per prob-tree — beyond that the oldest pins are retired and
        raise :class:`~repro.utils.errors.SnapshotRetiredError` on access.
        Prefer :meth:`ExecutionContext.read_snapshot
        <repro.core.context.ExecutionContext.read_snapshot>` inside sessions:
        it also counts pins in ``ContextStats`` and bounds retention across a
        whole document chain.
        """
        from repro.core.snapshot import SNAPSHOT_RETENTION, pin

        return pin(self, retention=SNAPSHOT_RETENTION, stats=stats)

    def _notify_write(self) -> None:
        """Give pinned snapshots their copy-on-write chance before mutating."""
        pins = self._snapshot_pins
        if pins is not None:
            pins.before_write()

    # -- transactions (undo log) ---------------------------------------------

    def begin_undo(self) -> int:
        """Open an undo scope over ``γ``/``π``; returns the rollback mark.

        Covers only this object's own state — the underlying tree has its
        own :meth:`DataTree.begin_undo
        <repro.trees.datatree.DataTree.begin_undo>`;
        :class:`repro.core.transactions.Transaction` drives both.
        """
        if self._undo is not None:
            raise TransactionError("this prob-tree is already inside a transaction")
        self._undo = []
        return self._state_version

    def commit_undo(self) -> None:
        self._undo = None

    def rollback_undo(self, mark: int) -> None:
        entries = self._undo
        self._undo = None
        if entries:
            for entry in reversed(entries):
                self._apply_undo(entry)
        self._state_version = mark

    def _apply_undo(self, entry: tuple) -> None:
        if entry[0] == "condition":
            _, node, old = entry
            if old is None:
                self._conditions.pop(node, None)
            else:
                self._conditions[node] = old
        else:  # distribution
            self._distribution = entry[1]

    # -- copies --------------------------------------------------------------

    def copy(self) -> "ProbTree":
        """Deep copy (the distribution is shared: it is immutable)."""
        return ProbTree(self._tree.copy(), self._distribution, dict(self._conditions))

    def with_distribution(self, distribution: ProbabilityDistribution) -> "ProbTree":
        """Same tree and conditions, different probability assignment.

        Used by Proposition 4: structural equivalence quantifies over all
        probability assignments to the same event set.
        """
        unknown = self.used_events() - distribution.events()
        if unknown:
            raise InvalidConditionError(
                f"new distribution is missing used events: {sorted(unknown)}"
            )
        return ProbTree(self._tree.copy(), distribution, dict(self._conditions))

    # -- misc ----------------------------------------------------------------

    def pretty(self) -> str:
        """Human-readable multi-line rendering (label [condition] per node)."""
        lines = []

        def visit(node: NodeId, indent: int) -> None:
            condition = self.condition(node)
            suffix = "" if condition.is_true() else f"  [{condition}]"
            lines.append("  " * indent + self._tree.label(node) + suffix)
            for child in self._tree.children(node):
                visit(child, indent + 1)

        visit(self._tree.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ProbTree(nodes={self.node_count()}, literals={self.literal_count()}, "
            f"events={len(self._distribution)})"
        )


__all__ = ["ProbTree"]
