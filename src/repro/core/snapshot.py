"""Copy-on-write snapshot pinning for prob-trees (MVCC reads).

A :class:`Snapshot` pins one immutable ``(tree.version, state_version)`` view
of a :class:`~repro.core.probtree.ProbTree`.  Two mechanisms keep the view
stable while writers proceed:

* **New-object updates** (the normal pipeline:
  :func:`~repro.updates.probtree_updates.apply_update_to_probtree`,
  ``ProbXMLWarehouse.apply``) never mutate the old prob-tree at all — a pin
  simply keeps the superseded object alive, which costs nothing until the
  last pin is released.
* **In-place mutations** (``set_label``/``add_child``/``set_condition``/...)
  call the tree's ``_notify_write`` hook *before* touching anything; when
  pins exist at the current stamp, the hook deep-copies the prob-tree once
  and parks the frozen copy on every such pin (copy-on-write: all pins at
  one stamp share one preserved copy).

Retention is bounded: :func:`pin` retires the oldest pins of a prob-tree
past :data:`SNAPSHOT_RETENTION` distinct handles, and
``ExecutionContext.read_snapshot`` additionally bounds live handles across a
whole session (covering version *chains* produced by pipeline updates, where
every pinned version is a different object).  A retired or released handle
raises :class:`~repro.utils.errors.SnapshotRetiredError` on access, so
readers learn their consistency guarantee is gone instead of silently racing.

Thread model: pin/release/retire and the copy-on-write preserve run under one
module lock, so concurrent readers may pin while a pipeline writer commits.
In-place mutation of a prob-tree that other threads are *reading live* (not
through pins) is not made safe by this module — concurrent writers must go
through the update pipeline, which mutates only private copies.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

from repro.core.probtree import ProbTree
from repro.utils.errors import SnapshotRetiredError

#: Default bound on pinned-but-unreleased snapshots (per prob-tree in
#: :func:`pin`, per session in ``ExecutionContext.read_snapshot``).  Beyond
#: it the oldest pins retire so writers never preserve unbounded history.
SNAPSHOT_RETENTION = 8

_LOCK = threading.RLock()


def _freeze(probtree: ProbTree) -> ProbTree:
    """A deep, never-shared copy preserving node ids and version stamps."""
    clone = ProbTree.__new__(ProbTree)
    clone._tree = probtree._tree.copy()
    clone._distribution = probtree._distribution
    clone._conditions = dict(probtree._conditions)
    clone._state_version = probtree._state_version
    clone._undo = None
    clone._snapshot_pins = None
    return clone


class _PinSet:
    """The pins attached to one live prob-tree (and its data tree).

    Holds the prob-tree weakly — handles hold it strongly, so an unpinned
    tree dies normally — and is installed on both ``probtree._snapshot_pins``
    and ``probtree.tree._snapshot_pins`` so every mutator reaches
    :meth:`before_write` without knowing about prob-trees.
    """

    __slots__ = ("_ref", "handles")

    def __init__(self, probtree: ProbTree) -> None:
        import weakref

        self._ref = weakref.ref(probtree)
        self.handles: list = []

    def before_write(self) -> None:
        """Copy-on-write preserve, called by mutators *before* they mutate."""
        with _LOCK:
            probtree = self._ref()
            if probtree is None:
                return
            stamp = (probtree.tree.version, probtree.state_version)
            needy = [
                handle
                for handle in self.handles
                if handle._frozen is None and handle.stamp == stamp
            ]
            if not needy:
                return
            frozen = _freeze(probtree)
            for handle in needy:
                handle._frozen = frozen

    def _detach_if_empty(self) -> None:
        if self.handles:
            return
        probtree = self._ref()
        if probtree is not None and probtree._snapshot_pins is self:
            probtree._snapshot_pins = None
            if probtree.tree._snapshot_pins is self:
                probtree.tree._snapshot_pins = None


class Snapshot:
    """A pinned, immutable view of one prob-tree version.

    Usable as a context manager (releases on exit)::

        with probtree.snapshot() as snap:
            answers = evaluate_on_probtree(query, snap.probtree)

    ``probtree`` resolves to the live object while it still sits at the
    pinned stamp (zero copies on the read path) and to the preserved frozen
    copy after any in-place mutation.  After :meth:`release` or retirement
    (retention overrun) access raises :class:`SnapshotRetiredError`.
    """

    __slots__ = ("_live", "_pins", "stamp", "_frozen", "_retired", "_released", "_stats")

    def __init__(self, probtree: ProbTree, pins: _PinSet, stats=None) -> None:
        self._live = probtree
        self._pins = pins
        self.stamp: Tuple[int, int] = (probtree.tree.version, probtree.state_version)
        self._frozen: Optional[ProbTree] = None
        self._retired = False
        self._released = False
        self._stats = stats

    # -- access --------------------------------------------------------------

    @property
    def probtree(self) -> ProbTree:
        """The pinned prob-tree view (live while unchanged, frozen after COW)."""
        with _LOCK:
            if self._released:
                raise SnapshotRetiredError("snapshot was already released")
            if self._retired:
                raise SnapshotRetiredError(
                    f"snapshot at stamp {self.stamp} was retired: too many "
                    "distinct versions pinned (see SNAPSHOT_RETENTION / the "
                    "context's snapshot_retention)"
                )
            if self._frozen is not None:
                return self._frozen
            live = self._live
            if (live.tree.version, live.state_version) != self.stamp:
                # A mutation bypassed the copy-on-write hooks (e.g. direct
                # surgery on private state): the pinned view is gone.
                raise SnapshotRetiredError(
                    f"pinned stamp {self.stamp} no longer exists and was not "
                    "preserved; the prob-tree was mutated outside its mutators"
                )
            return live

    @property
    def tree(self):
        """The pinned data tree (shorthand for ``.probtree.tree``)."""
        return self.probtree.tree

    @property
    def active(self) -> bool:
        return not (self._released or self._retired)

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def released(self) -> bool:
        return self._released

    def is_current(self) -> bool:
        """Whether the live prob-tree still sits at the pinned stamp."""
        with _LOCK:
            live = self._live
            return self.active and (
                (live.tree.version, live.state_version) == self.stamp
            )

    # -- lifecycle -----------------------------------------------------------

    def release(self) -> None:
        """Unpin; idempotent.  The handle refuses all access afterwards."""
        with _LOCK:
            if self._released:
                return
            self._released = True
            self._drop()

    def retire(self) -> None:
        """Forcibly expire the pin (retention overrun); idempotent."""
        with _LOCK:
            if self._retired or self._released:
                return
            self._retired = True
            if self._stats is not None:
                self._stats.snapshots_retired += 1
            self._drop()

    def _drop(self) -> None:
        self._frozen = None
        pins = self._pins
        if pins is not None:
            try:
                pins.handles.remove(self)
            except ValueError:
                pass
            pins._detach_if_empty()
            self._pins = None

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "active" if self.active else ("retired" if self._retired else "released")
        return f"Snapshot(stamp={self.stamp}, {state}, frozen={self._frozen is not None})"


def pin(probtree: ProbTree, retention: Optional[int] = None, stats=None) -> Snapshot:
    """Pin *probtree* at its current stamp and return the :class:`Snapshot`.

    With *retention* set, at most that many handles stay pinned on this
    prob-tree: older ones are retired (oldest first).  Pass ``None`` when a
    caller — ``ExecutionContext.read_snapshot`` — enforces its own bound
    across documents.
    """
    with _LOCK:
        pins = probtree._snapshot_pins
        if pins is None:
            pins = _PinSet(probtree)
            probtree._snapshot_pins = pins
            probtree.tree._snapshot_pins = pins
        handle = Snapshot(probtree, pins, stats=stats)
        pins.handles.append(handle)
        if stats is not None:
            stats.snapshots_pinned += 1
        if retention is not None and retention >= 1:
            while len(pins.handles) > retention:
                pins.handles[0].retire()
        return handle


__all__ = ["Snapshot", "SNAPSHOT_RETENTION", "pin"]
