"""A multi-document warehouse facade over the prob-tree machinery.

The paper's motivating system is an XML warehouse that analysis tools feed
through imprecise updates and query through a standard processor.
:class:`ProbXMLWarehouse` packages that workflow for a *corpus* of uncertain
documents: it owns named prob-trees, accepts path or tree-pattern queries
(per document or corpus-wide), applies probabilistic insertions and
deletions, and exposes the maintenance operations studied in the paper
(cleaning, threshold pruning, DTD checks, possible-world inspection).

All heavy lifting is delegated to the dedicated modules; what the facade
adds is a shared :class:`~repro.core.context.ExecutionContext` — one set of
Shannon tables, structural indexes and answer-set caches, plus the engine /
matcher policy — applied uniformly across every document and every call.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple, Union

from repro.core.cleaning import clean
from repro.core.context import ExecutionContext, resolve_context
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD
from repro.dtd.probtree_dtd import (
    dtd_satisfaction_probability,
    dtd_satisfiable,
    dtd_valid,
)
from repro.pw.pwset import PWSet
from repro.queries.base import Query, QueryNodeId
from repro.formulas.sampling import PricingPolicy, SampleEstimate
from repro.queries.evaluation import (
    QueryAnswer,
    boolean_probability,
    boolean_probability_anytime,
    evaluate_many,
    evaluate_on_probtree,
    top_answers,
)
from repro.queries.path import parse_path
from repro.threshold.threshold import most_probable_worlds, threshold_probtree
from repro.trees.datatree import DataTree
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.utils.errors import ProbXMLError, QueryError

QuerySpec = Union[str, Query]

#: Name given to the document of single-document construction.
DEFAULT_DOCUMENT = "default"

#: Concurrency disciplines a warehouse understands (``isolation=``):
#: ``"snapshot"`` — readers pin an immutable version and proceed while a
#: writer commits; ``"lock"`` — one global lock serializes everything (the
#: differential oracle the concurrency harness compares against).
ISOLATION_MODES = ("snapshot", "lock")

# First element tag of the markup; declarations (<?xml …?>) and comments
# (<!-- …) never match the name char class, so the search skips past them.
_XML_ROOT_TAG = re.compile(r"<\s*([A-Za-z_][\w.-]*)")


def _coerce_document(document: Union[str, DataTree, ProbTree]) -> ProbTree:
    """Turn any accepted document form into a prob-tree.

    Strings that look like XML markup (``lstrip().startswith("<")``) are
    parsed — ``<probtree>`` documents through
    :func:`repro.xmlio.parse.probtree_from_xml`, any other element through
    :func:`repro.xmlio.parse.datatree_from_xml` — instead of silently
    becoming a one-node tree with the markup as its root label.  A plain
    string is still a one-node certain document.  XML lands through
    :meth:`~repro.trees.datatree.DataTree.add_subtree_bulk`, so warehouse
    ingest batches pay one flat preorder pass per document rather than a
    Python call per node.
    """
    if isinstance(document, ProbTree):
        return document
    if isinstance(document, DataTree):
        return ProbTree.certain(document)
    text = str(document)
    stripped = text.lstrip()
    if stripped.startswith("<"):
        # Imported lazily: repro.xmlio imports ProbTree, not this module,
        # but keeping the parser out of the hot import path is free.
        import xml.etree.ElementTree as ET

        from repro.utils.errors import InvalidTreeError
        from repro.xmlio.parse import datatree_from_xml, probtree_from_xml

        tag = _XML_ROOT_TAG.search(stripped)
        try:
            # Parse the stripped text: whitespace before an <?xml?>
            # declaration is not well-formed XML, but clearly means the
            # same document.
            if tag is not None and tag.group(1) == "probtree":
                return probtree_from_xml(stripped)
            return ProbTree.certain(datatree_from_xml(stripped))
        except ET.ParseError as error:
            raise InvalidTreeError(
                f"document string starts with '<' but is not well-formed XML "
                f"({error}); pass a plain label (no leading '<') for a "
                f"one-node document"
            ) from error
    return ProbTree.certain(DataTree(text))


class ProbXMLWarehouse:
    """An XML warehouse holding a corpus of uncertain documents as prob-trees.

    **Documents.**  The warehouse maps names to prob-trees:
    :meth:`add_document` / :meth:`drop` / :meth:`names` manage the corpus,
    and every query/update/maintenance method takes an optional ``name=``
    (omitted, it resolves to the ``"default"`` document, or to the only
    document when exactly one is held — so single-document construction
    ``ProbXMLWarehouse("catalog")`` and all its call sites keep working
    unchanged).  Corpus-wide reads (:meth:`query_all`,
    :meth:`probability_all`) fan one query out across every document while
    sharing one execution context.

    **Execution context.**  All probability and matching work runs under a
    session-scoped :class:`~repro.core.context.ExecutionContext` owning the
    mode policy and the caches (per-probtree Shannon tables, structural
    indexes, the answer-set cache).  Construction accepts either a ready
    ``context=`` or the legacy string kwargs:

    * ``engine`` — ``"formula"`` (default) compiles each question into an
      event formula evaluated by Shannon expansion with a shared
      per-document cache (budgeted when ``pricing=`` sets
      ``max_expansions``: a typed
      :class:`~repro.utils.errors.BudgetExceededError` replaces the
      unbounded worst-case blowup); ``"enumerate"`` materializes possible
      worlds (the paper's reference semantics, exponential in the number of
      used events); ``"sample"`` estimates scalar probabilities by seeded
      anytime Monte-Carlo (see :meth:`probability_anytime` for the
      confidence interval); ``"auto-sample"`` tries budgeted-exact first
      and degrades to sampling on a tripped budget;
    * ``matcher`` — ``"indexed"`` (default) compiles patterns into
      bottom-up plans over the document's shared structural index;
      ``"columnar"`` runs the same plans as vectorized interval merges over
      the document's flat :class:`~repro.trees.columnar.ColumnarTree`
      snapshot; ``"naive"`` is the direct backtracking oracle; ``"auto"``
      picks per pattern via the context's cost model.

    Per-call overrides follow the library-wide precedence: explicit string
    kwargs > per-call ``context=`` > the warehouse's own context.

    **Isolation.**  ``isolation="snapshot"`` (default) gives readers MVCC
    snapshot isolation: every read pins the document's current
    ``(tree.version, state_version)`` through the context's snapshot layer
    and evaluates against that immutable version, so in-flight queries on
    other threads finish on a consistent document while a writer commits —
    writers are serialized among themselves, readers never block.  Every
    read observes some *committed* version (updates build the new prob-tree
    off to the side and swap it in atomically).  ``isolation="lock"`` is the
    global-lock oracle: one reentrant lock serializes every read and write;
    the threaded differential harness asserts snapshot mode is
    read-equivalent to it, version by version.  :meth:`read_snapshot` hands
    out long-lived pins for multi-query consistency.
    """

    def __init__(
        self,
        document: Union[str, DataTree, ProbTree, None] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
        name: str = DEFAULT_DOCUMENT,
        max_cached_answers: Optional[int] = None,
        pricing: Optional[PricingPolicy] = None,
        isolation: str = "snapshot",
    ) -> None:
        if isolation not in ISOLATION_MODES:
            raise ProbXMLError(
                f"unknown isolation {isolation!r}; expected one of {ISOLATION_MODES}"
            )
        self._isolation = isolation
        # Lock mode: one gate serializes everything.  Snapshot mode: the
        # gate only serializes writers; readers go lock-free through pins.
        self._gate = threading.RLock()
        if context is None:
            self._context = ExecutionContext(
                engine=engine,
                matcher=matcher,
                max_cached_answers=max_cached_answers,
                pricing=pricing,
            )
        else:
            if max_cached_answers is not None or pricing is not None:
                # Unlike engine/matcher there is no per-view override: the
                # LRU bound and the pricing policy live in the shared cache
                # state, so honouring them here would silently reconfigure
                # the caller's session context.
                raise ProbXMLError(
                    "max_cached_answers/pricing cannot be combined with "
                    "context=; set them when building the ExecutionContext"
                )
            self._context = context.with_modes(engine=engine, matcher=matcher)
        self._documents: Dict[str, ProbTree] = {}
        if document is not None:
            self.add_document(name, document)

    # -- corpus management -------------------------------------------------

    def add_document(
        self, name: str, document: Union[str, DataTree, ProbTree], replace: bool = False
    ) -> ProbTree:
        """Register *document* under *name*; returns the stored prob-tree.

        Accepts a prob-tree, a data tree (wrapped as certain), an XML string
        (``<probtree>`` or plain ``<node>`` markup, parsed), or a bare label
        (a one-node certain document).  Raises a typed
        :class:`~repro.utils.errors.ProbXMLError` on duplicate names — the
        sharded router relies on name→shard stability, so silent replacement
        is never the default; pass ``replace=True`` (or :meth:`drop` first)
        to overwrite deliberately.
        """
        with self._write():
            if name in self._documents and not replace:
                raise ProbXMLError(
                    f"document {name!r} already exists in the warehouse; drop() it "
                    f"first or pass replace=True"
                )
            probtree = _coerce_document(document)
            self._documents[name] = probtree
            return probtree

    def drop(self, name: str) -> ProbTree:
        """Remove and return the document registered under *name*."""
        with self._write():
            try:
                return self._documents.pop(name)
            except KeyError:
                raise ProbXMLError(
                    f"no document named {name!r} in the warehouse"
                ) from None

    def names(self) -> Tuple[str, ...]:
        """The registered document names, in insertion order."""
        return tuple(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: object) -> bool:
        return name in self._documents

    def _resolve_name(self, name: Optional[str]) -> str:
        if name is not None:
            if name not in self._documents:
                raise ProbXMLError(f"no document named {name!r} in the warehouse")
            return name
        if DEFAULT_DOCUMENT in self._documents:
            return DEFAULT_DOCUMENT
        if len(self._documents) == 1:
            return next(iter(self._documents))
        if not self._documents:
            raise ProbXMLError("the warehouse holds no documents")
        raise ProbXMLError(
            f"the warehouse holds {len(self._documents)} documents "
            f"({', '.join(map(repr, self._documents))}); pass name="
        )

    def _ctx(
        self,
        context: Optional[ExecutionContext],
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
    ) -> ExecutionContext:
        """Per-call resolution: string overrides > call context > warehouse default."""
        base = context if context is not None else self._context
        return resolve_context(base, engine=engine, matcher=matcher)

    # -- isolation ---------------------------------------------------------

    @property
    def isolation(self) -> str:
        """The concurrency discipline (``"snapshot"`` or ``"lock"``)."""
        return self._isolation

    @contextmanager
    def _read(self, name: Optional[str]):
        """Yield the prob-tree one read should evaluate against.

        Snapshot mode pins the document's current version (released when the
        read finishes), so a concurrent :meth:`apply` neither blocks this
        read nor changes what it sees.  Lock mode holds the global gate for
        the whole evaluation.
        """
        if self._isolation == "lock":
            with self._gate:
                yield self.get(name)
            return
        handle = self._context.read_snapshot(self.get(name))
        try:
            yield handle.probtree
        finally:
            handle.release()

    @contextmanager
    def _write(self):
        """Serialize one write (with other writers; and with reads in lock mode)."""
        with self._gate:
            yield

    def read_snapshot(self, name: Optional[str] = None):
        """Pin the named document's current version for multi-query reads.

        Returns a :class:`~repro.core.snapshot.Snapshot`; use as a context
        manager and evaluate against ``snap.probtree`` for a view that stays
        consistent across several queries while updates commit underneath::

            with warehouse.read_snapshot() as snap:
                before = evaluate_on_probtree(query, snap.probtree,
                                              context=warehouse.context)

        Retention is bounded by the context's ``snapshot_retention``; see
        :meth:`ExecutionContext.read_snapshot
        <repro.core.context.ExecutionContext.read_snapshot>`.
        """
        return self._context.read_snapshot(self.get(name))

    # -- state -----------------------------------------------------------------

    @property
    def context(self) -> ExecutionContext:
        """The warehouse's execution context (modes, caches, stats)."""
        return self._context

    @context.setter
    def context(self, context: ExecutionContext) -> None:
        if not isinstance(context, ExecutionContext):
            raise TypeError(
                f"expected an ExecutionContext, got {type(context).__name__}"
            )
        self._context = context

    @property
    def stats(self):
        """Live :class:`~repro.core.context.ContextStats` of the context.

        Includes the formula-IR counters: ``intern_hits`` /
        ``intern_misses`` (formula-pool probes that found vs allocated a
        node — a warm corpus shows hits dwarfing misses) and
        ``formulas_migrated`` (memoized prices carried across
        update/clean prob-tree replacements).
        """
        return self._context.stats

    @property
    def probtree(self) -> ProbTree:
        """The current prob-tree of the default (or only) document."""
        return self._documents[self._resolve_name(None)]

    def get(self, name: Optional[str] = None) -> ProbTree:
        """The prob-tree registered under *name* (default resolution applies)."""
        return self._documents[self._resolve_name(name)]

    @property
    def engine(self) -> str:
        """The engine mode (``"formula"`` | ``"enumerate"`` | ``"sample"`` | ``"auto-sample"``)."""
        return self._context.engine

    @engine.setter
    def engine(self, mode: str) -> None:
        self._context = self._context.with_modes(engine=mode)

    @property
    def matcher(self) -> str:
        """The matcher mode (``"indexed"``, ``"naive"``, ``"columnar"`` or ``"auto"``)."""
        return self._context.matcher

    @matcher.setter
    def matcher(self, mode: str) -> None:
        self._context = self._context.with_modes(matcher=mode)

    @property
    def document(self) -> DataTree:
        """The underlying data tree of the default (or only) document."""
        return self.probtree.tree

    def size(self, name: Optional[str] = None) -> int:
        return self.get(name).size()

    def event_count(self, name: Optional[str] = None) -> int:
        return len(self.get(name).distribution)

    # -- queries -----------------------------------------------------------------

    def query(
        self,
        query: QuerySpec,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[QueryAnswer]:
        """Evaluate a locally monotone query; answers carry probabilities.

        Repeated queries are served from the context's answer cache: treat
        the returned answer trees as read-only (they are shared across
        calls; ``answer.tree.copy()`` before mutating).
        """
        with self._read(name) as probtree:
            return evaluate_on_probtree(
                self._resolve(query),
                probtree,
                context=self._ctx(context, engine, matcher),
            )

    def query_many(
        self,
        queries: List[QuerySpec],
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
    ) -> List[List[QueryAnswer]]:
        """Evaluate several queries against one document in one batch.

        The structural index of the document, the probability engine's
        formula cache and the answer-set cache are shared across the whole
        batch (they live on the warehouse context); answers are cache-shared
        and read-only, as in :meth:`query`.
        """
        with self._read(name) as probtree:
            return evaluate_many(
                [self._resolve(query) for query in queries],
                probtree,
                context=self._ctx(context, engine, matcher),
            )

    def query_all(
        self,
        query: QuerySpec,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, List[QueryAnswer]]:
        """Evaluate one query against every document: ``{name: answers}``.

        All documents share a single execution context, so a query repeated
        across the corpus compiles its pattern bookkeeping once per document
        and reuses each document's caches on subsequent sweeps; answers are
        cache-shared and read-only, as in :meth:`query`.
        """
        ctx = self._ctx(context, engine, matcher)
        resolved = self._resolve(query)
        results: Dict[str, List[QueryAnswer]] = {}
        for name in self.names():
            with self._read(name) as probtree:
                results[name] = evaluate_on_probtree(resolved, probtree, context=ctx)
        return results

    def top_answers(
        self, query: QuerySpec, count: int = 3, name: Optional[str] = None
    ) -> List[QueryAnswer]:
        """The most probable answers of a query (conclusion's ranking usage)."""
        return top_answers(self.query(query, name=name), count)

    def probability(
        self,
        query: QuerySpec,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
    ) -> float:
        """Probability that the query has at least one answer."""
        with self._read(name) as probtree:
            return boolean_probability(
                self._resolve(query),
                probtree,
                context=self._ctx(context, engine, matcher),
            )

    def probability_anytime(
        self,
        query: QuerySpec,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
        epsilon: Optional[float] = None,
        confidence: Optional[float] = None,
        max_samples: Optional[int] = None,
        deadline: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> SampleEstimate:
        """Anytime :meth:`probability` with a confidence interval.

        Returns a :class:`~repro.formulas.sampling.SampleEstimate` whose
        interval tightens until the effective ``epsilon`` (half-width) /
        ``max_samples`` / ``deadline`` budget is hit; per-call knobs
        override the context's pricing policy.  Questions over few events
        (and ``engine="enumerate"``) come back exact and zero-width.
        """
        with self._read(name) as probtree:
            return boolean_probability_anytime(
                self._resolve(query),
                probtree,
                context=self._ctx(context, engine, matcher),
                epsilon=epsilon,
                confidence=confidence,
                max_samples=max_samples,
                deadline=deadline,
                seed=seed,
            )

    def probability_all(
        self,
        query: QuerySpec,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        context: Optional[ExecutionContext] = None,
    ) -> Dict[str, float]:
        """Corpus-wide :meth:`probability`: ``{name: probability}``."""
        ctx = self._ctx(context, engine, matcher)
        resolved = self._resolve(query)
        results: Dict[str, float] = {}
        for name in self.names():
            with self._read(name) as probtree:
                results[name] = boolean_probability(resolved, probtree, context=ctx)
        return results

    # -- updates -------------------------------------------------------------------

    def insert(
        self,
        query: QuerySpec,
        subtree: DataTree,
        at: Optional[QueryNodeId] = None,
        confidence: float = 1.0,
        event: Optional[str] = None,
        name: Optional[str] = None,
    ) -> ProbabilisticUpdate:
        """Insert *subtree* under every match of *query*, with a confidence.

        ``at`` selects the pattern node under which to insert; by default the
        last node added to the pattern (for path queries, the final step).
        Returns the applied :class:`ProbabilisticUpdate` for logging.
        """
        resolved = self._resolve(query)
        target = at if at is not None else self._default_focus(resolved)
        update = ProbabilisticUpdate(
            Insertion(resolved, target, subtree), confidence=confidence, event=event
        )
        self.apply(update, name=name)
        return update

    def delete(
        self,
        query: QuerySpec,
        at: Optional[QueryNodeId] = None,
        confidence: float = 1.0,
        event: Optional[str] = None,
        name: Optional[str] = None,
    ) -> ProbabilisticUpdate:
        """Delete every node matched by *query* (at pattern node ``at``)."""
        resolved = self._resolve(query)
        target = at if at is not None else self._default_focus(resolved)
        update = ProbabilisticUpdate(
            Deletion(resolved, target), confidence=confidence, event=event
        )
        self.apply(update, name=name)
        return update

    def apply(self, update: ProbabilisticUpdate, name: Optional[str] = None) -> None:
        """Apply an already-built probabilistic update to one document.

        The document's prob-tree is *replaced* (updates return a fresh tree
        object), which is what keeps the context's answer-set cache honest:
        post-update queries can never be served pre-update answers.  Cached
        answers of queries whose label fingerprints the update cannot touch
        are migrated to the new prob-tree, so a warm update/query loop only
        recomputes what actually changed.
        """
        with self._write():
            resolved = self._resolve_name(name)
            self._documents[resolved] = apply_update_to_probtree(
                self._documents[resolved], update, context=self._context
            )

    # -- maintenance -------------------------------------------------------------------

    def clean(self, name: Optional[str] = None) -> None:
        """Run the linear-time cleaning pass (Section 3) on one document.

        Cleaning replaces the document's prob-tree (and its underlying data
        tree), but — because it preserves surviving node ids, labels and the
        semantics — cached answers whose patterns avoid every pruned label
        are migrated to the new prob-tree rather than dropped.
        """
        with self._write():
            resolved = self._resolve_name(name)
            self._documents[resolved] = clean(
                self._documents[resolved], context=self._context
            )

    def prune_below(self, threshold: float, name: Optional[str] = None) -> None:
        """Keep only possible worlds with probability at least *threshold*.

        The lost mass is represented by a root-only world (Definition 3); the
        operation may blow up the representation (Theorem 4).  The document's
        prob-tree is replaced by the re-encoded one — and unlike updates or
        :meth:`clean`, thresholding genuinely changes the semantics and
        re-allocates every node id, so no cached answer can be migrated:
        the replacement invalidates wholesale by construction.
        """
        with self._write():
            resolved = self._resolve_name(name)
            self._documents[resolved] = threshold_probtree(
                self._documents[resolved], threshold, context=self._context
            )

    # -- inspection ------------------------------------------------------------------------

    def possible_worlds(
        self, normalize: bool = True, name: Optional[str] = None
    ) -> PWSet:
        """The possible-world semantics of one document."""
        with self._read(name) as probtree:
            return possible_worlds(probtree, restrict_to_used=True, normalize=normalize)

    def most_probable_worlds(
        self, count: int = 3, name: Optional[str] = None
    ) -> List[Tuple[DataTree, float]]:
        with self._read(name) as probtree:
            return most_probable_worlds(probtree, count, context=self._context)

    def dtd_satisfiable(self, dtd: DTD, name: Optional[str] = None) -> bool:
        """Whether some possible world satisfies the DTD (Theorem 5.1)."""
        with self._read(name) as probtree:
            return dtd_satisfiable(probtree, dtd, context=self._context)

    def dtd_valid(self, dtd: DTD, name: Optional[str] = None) -> bool:
        """Whether every possible world satisfies the DTD (Theorem 5.2)."""
        with self._read(name) as probtree:
            return dtd_valid(probtree, dtd, context=self._context)

    def dtd_probability(self, dtd: DTD, name: Optional[str] = None) -> float:
        """Probability that the uncertain document satisfies the DTD."""
        with self._read(name) as probtree:
            return dtd_satisfaction_probability(probtree, dtd, context=self._context)

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _resolve(query: QuerySpec) -> Query:
        if isinstance(query, str):
            return parse_path(query)
        return query

    @staticmethod
    def _default_focus(query: Query) -> QueryNodeId:
        """Default target node for updates: the deepest pattern node.

        Queries that do not expose ``node_count`` give no way to pick a
        sensible default; guessing node 0 silently rewrote the wrong part of
        the pattern, so an explicit ``at=`` is required instead.
        """
        node_count = getattr(query, "node_count", None)
        if not callable(node_count):
            raise QueryError(
                f"cannot infer an update target for {type(query).__name__}: the "
                "query exposes no node_count(); pass the pattern node explicitly "
                "with at="
            )
        return node_count() - 1

    def __repr__(self) -> str:
        if len(self._documents) == 1:
            probtree = next(iter(self._documents.values()))
            summary = f"nodes={probtree.node_count()}, events={len(probtree.distribution)}"
        else:
            summary = f"documents={len(self._documents)}"
        return (
            f"ProbXMLWarehouse({summary}, engine={self.engine!r}, "
            f"matcher={self.matcher!r})"
        )


__all__ = ["ProbXMLWarehouse", "DEFAULT_DOCUMENT"]
