"""A convenience warehouse facade over the prob-tree machinery.

The paper's motivating system is an XML warehouse that analysis tools feed
through imprecise updates and query through a standard processor.
:class:`ProbXMLWarehouse` packages that workflow: it owns a prob-tree,
accepts path or tree-pattern queries, applies probabilistic insertions and
deletions, and exposes the maintenance operations studied in the paper
(cleaning, threshold pruning, DTD checks, possible-world inspection).

All heavy lifting is delegated to the dedicated modules; the facade only
keeps the current prob-tree and offers a compact, discoverable API for the
examples and the quickstart.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.cleaning import clean
from repro.core.events import ProbabilityDistribution
from repro.core.probability import require_engine_mode
from repro.queries.plan import require_matcher_mode
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD
from repro.dtd.probtree_dtd import (
    dtd_satisfaction_probability,
    dtd_satisfiable,
    dtd_valid,
)
from repro.pw.pwset import PWSet
from repro.queries.base import Query, QueryNodeId
from repro.queries.evaluation import (
    QueryAnswer,
    boolean_probability,
    evaluate_many,
    evaluate_on_probtree,
    top_answers,
)
from repro.queries.path import parse_path
from repro.threshold.threshold import most_probable_worlds, threshold_probtree
from repro.trees.datatree import DataTree
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.utils.errors import QueryError

QuerySpec = Union[str, Query]


class ProbXMLWarehouse:
    """An XML warehouse holding one uncertain document as a prob-tree.

    ``engine`` selects how probabilities are computed throughout:
    ``"formula"`` (default) compiles each question into an event formula
    evaluated by Shannon expansion with a shared per-document cache;
    ``"enumerate"`` materializes possible worlds (the paper's reference
    semantics, exponential in the number of used events).

    ``matcher`` selects how tree-pattern embeddings are found:
    ``"indexed"`` (default) compiles patterns into bottom-up plans over the
    document's shared structural index; ``"naive"`` is the direct
    backtracking matcher kept as a differential oracle.
    """

    def __init__(
        self,
        document: Union[str, DataTree, ProbTree],
        engine: str = "formula",
        matcher: str = "indexed",
    ) -> None:
        if isinstance(document, ProbTree):
            self._probtree = document
        elif isinstance(document, DataTree):
            self._probtree = ProbTree.certain(document)
        else:
            self._probtree = ProbTree.certain(DataTree(str(document)))
        self._engine = require_engine_mode(engine)
        self._matcher = require_matcher_mode(matcher)

    # -- state -----------------------------------------------------------------

    @property
    def probtree(self) -> ProbTree:
        """The current prob-tree."""
        return self._probtree

    @property
    def engine(self) -> str:
        """The probability engine mode (``"formula"`` or ``"enumerate"``)."""
        return self._engine

    @engine.setter
    def engine(self, mode: str) -> None:
        self._engine = require_engine_mode(mode)

    @property
    def matcher(self) -> str:
        """The embedding matcher mode (``"indexed"`` or ``"naive"``)."""
        return self._matcher

    @matcher.setter
    def matcher(self, mode: str) -> None:
        self._matcher = require_matcher_mode(mode)

    @property
    def document(self) -> DataTree:
        """The underlying data tree (all nodes, regardless of conditions)."""
        return self._probtree.tree

    def size(self) -> int:
        return self._probtree.size()

    def event_count(self) -> int:
        return len(self._probtree.distribution)

    # -- queries -----------------------------------------------------------------

    def query(self, query: QuerySpec) -> List[QueryAnswer]:
        """Evaluate a locally monotone query; answers carry probabilities."""
        return evaluate_on_probtree(
            self._resolve(query),
            self._probtree,
            engine=self._engine,
            matcher=self._matcher,
        )

    def query_many(self, queries: List[QuerySpec]) -> List[List[QueryAnswer]]:
        """Evaluate several queries in one batch.

        The structural index of the document and the probability engine's
        formula cache are built once and shared across the whole batch.
        """
        return evaluate_many(
            [self._resolve(query) for query in queries],
            self._probtree,
            engine=self._engine,
            matcher=self._matcher,
        )

    def top_answers(self, query: QuerySpec, count: int = 3) -> List[QueryAnswer]:
        """The most probable answers of a query (conclusion's ranking usage)."""
        return top_answers(self.query(query), count)

    def probability(self, query: QuerySpec) -> float:
        """Probability that the query has at least one answer."""
        return boolean_probability(
            self._resolve(query),
            self._probtree,
            engine=self._engine,
            matcher=self._matcher,
        )

    # -- updates -------------------------------------------------------------------

    def insert(
        self,
        query: QuerySpec,
        subtree: DataTree,
        at: Optional[QueryNodeId] = None,
        confidence: float = 1.0,
        event: Optional[str] = None,
    ) -> ProbabilisticUpdate:
        """Insert *subtree* under every match of *query*, with a confidence.

        ``at`` selects the pattern node under which to insert; by default the
        last node added to the pattern (for path queries, the final step).
        Returns the applied :class:`ProbabilisticUpdate` for logging.
        """
        resolved = self._resolve(query)
        target = at if at is not None else self._default_focus(resolved)
        update = ProbabilisticUpdate(
            Insertion(resolved, target, subtree), confidence=confidence, event=event
        )
        self._probtree = apply_update_to_probtree(self._probtree, update)
        return update

    def delete(
        self,
        query: QuerySpec,
        at: Optional[QueryNodeId] = None,
        confidence: float = 1.0,
        event: Optional[str] = None,
    ) -> ProbabilisticUpdate:
        """Delete every node matched by *query* (at pattern node ``at``)."""
        resolved = self._resolve(query)
        target = at if at is not None else self._default_focus(resolved)
        update = ProbabilisticUpdate(
            Deletion(resolved, target), confidence=confidence, event=event
        )
        self._probtree = apply_update_to_probtree(self._probtree, update)
        return update

    def apply(self, update: ProbabilisticUpdate) -> None:
        """Apply an already-built probabilistic update."""
        self._probtree = apply_update_to_probtree(self._probtree, update)

    # -- maintenance -------------------------------------------------------------------

    def clean(self) -> None:
        """Run the linear-time cleaning pass (Section 3)."""
        self._probtree = clean(self._probtree)

    def prune_below(self, threshold: float) -> None:
        """Keep only possible worlds with probability at least *threshold*.

        The lost mass is represented by a root-only world (Definition 3); the
        operation may blow up the representation (Theorem 4).
        """
        self._probtree = threshold_probtree(
            self._probtree, threshold, engine=self._engine
        )

    # -- inspection ------------------------------------------------------------------------

    def possible_worlds(self, normalize: bool = True) -> PWSet:
        """The possible-world semantics of the current document."""
        return possible_worlds(self._probtree, restrict_to_used=True, normalize=normalize)

    def most_probable_worlds(self, count: int = 3) -> List[Tuple[DataTree, float]]:
        return most_probable_worlds(self._probtree, count, engine=self._engine)

    def dtd_satisfiable(self, dtd: DTD) -> bool:
        """Whether some possible world satisfies the DTD (Theorem 5.1)."""
        return dtd_satisfiable(self._probtree, dtd, engine=self._engine)

    def dtd_valid(self, dtd: DTD) -> bool:
        """Whether every possible world satisfies the DTD (Theorem 5.2)."""
        return dtd_valid(self._probtree, dtd, engine=self._engine)

    def dtd_probability(self, dtd: DTD) -> float:
        """Probability that the uncertain document satisfies the DTD."""
        return dtd_satisfaction_probability(self._probtree, dtd, engine=self._engine)

    # -- helpers -----------------------------------------------------------------------------

    @staticmethod
    def _resolve(query: QuerySpec) -> Query:
        if isinstance(query, str):
            return parse_path(query)
        return query

    @staticmethod
    def _default_focus(query: Query) -> QueryNodeId:
        """Default target node for updates: the deepest pattern node.

        Queries that do not expose ``node_count`` give no way to pick a
        sensible default; guessing node 0 silently rewrote the wrong part of
        the pattern, so an explicit ``at=`` is required instead.
        """
        node_count = getattr(query, "node_count", None)
        if not callable(node_count):
            raise QueryError(
                f"cannot infer an update target for {type(query).__name__}: the "
                "query exposes no node_count(); pass the pattern node explicitly "
                "with at="
            )
        return node_count() - 1

    def __repr__(self) -> str:
        return (
            f"ProbXMLWarehouse(nodes={self._probtree.node_count()}, "
            f"events={self.event_count()}, engine={self._engine!r}, "
            f"matcher={self._matcher!r})"
        )


__all__ = ["ProbXMLWarehouse"]
