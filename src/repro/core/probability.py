"""The exact probability engine over event formulas.

The paper's central message is that a prob-tree answers probabilistic
questions *without* materializing its exponentially many possible worlds.
This module is where that promise is kept operationally:
:class:`ProbabilityEngine` evaluates event formulas compiled from a question
(query answers, DTD validity, world identity) by Shannon expansion over only
the events the formula mentions (see :mod:`repro.formulas.compute`), with a
memoization table shared across every question asked of the same prob-tree.

Four engine modes are exposed throughout the library:

* ``"formula"`` (default) — Shannon expansion / variable elimination with
  independent-component decomposition and memoization.  Optionally budgeted
  (:class:`~repro.formulas.sampling.PricingPolicy.max_expansions`): past the
  budget a typed :class:`~repro.utils.errors.BudgetExceededError` is raised
  instead of running unbounded;
* ``"enumerate"`` — the reference semantics: enumerate every world over the
  mentioned events.  Kept as a differential-testing oracle and for the
  benchmarks that reproduce the paper's exponential baselines;
* ``"sample"`` — seeded anytime Monte-Carlo over the event space
  (:mod:`repro.formulas.sampling`): scalar probabilities become estimates
  whose confidence interval tightens until the policy's
  ``epsilon``/``confidence``/``max_samples``/``deadline`` budget is hit;
  small formulas short-circuit to the budgeted exact path;
* ``"auto-sample"`` — budgeted-exact first, degrading to sampling on
  :class:`~repro.utils.errors.BudgetExceededError` (counted in
  :attr:`~repro.core.context.ContextStats.fallbacks`).

:func:`engine_for` hands out the per-probtree shared engine (a weak registry,
so prob-trees do not leak); :func:`formula_pwset` reconstructs the normalized
possible-world semantics by enumerating *achievable node subsets* — typically
far fewer than ``2^|W|`` worlds — with each subset's probability computed by
the engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.boolean import BoolExpr, from_condition
from repro.formulas.compute import (
    DEFAULT_ENUMERATION_CUTOFF,
    dnf_to_expr,
    enumeration_probability,
)
from repro.formulas.dnf import DNF
from repro.formulas.ir import FormulaPool
from repro.formulas.literals import Condition, Literal
from repro.formulas.sampling import (
    DEFAULT_AUTO_EXPANSIONS,
    PricingPolicy,
    SampleEstimate,
    _bump,
    sample_probability,
)
from repro.pw.pwset import PWSet
from repro.trees.datatree import NodeId
from repro.utils.errors import BudgetExceededError, QueryError

#: The engine modes understood throughout the library.
ENGINE_MODES = ("formula", "enumerate", "sample", "auto-sample")

#: The modes whose scalar answers are Monte-Carlo estimates.
SAMPLING_MODES = ("sample", "auto-sample")


def require_engine_mode(mode: str) -> str:
    """Validate an ``engine=`` argument, returning it unchanged."""
    if mode not in ENGINE_MODES:
        raise QueryError(
            f"unknown probability engine {mode!r}; expected one of {ENGINE_MODES}"
        )
    return mode


class ProbabilityEngine:
    """Exact probabilities of event formulas under one distribution.

    The engine owns the memoization tables; creating it through
    :func:`engine_for` shares one instance (and therefore one cache) across
    every question asked of the same prob-tree.

    Since the formula-IR refactor the engine prices through a hash-consed
    :class:`~repro.formulas.ir.FormulaPool`: formulas are interned into a
    shared DAG of stable integer ids and the Shannon memo is keyed by node
    id, so a warm repeated question is an O(1) integer probe — no
    structural hashing, no deep equality.  Engines created through an
    :class:`~repro.core.context.ExecutionContext` all share the *context's*
    pool (one intern table per session); a bare engine creates a private
    one.  ``probability`` therefore accepts either a :class:`BoolExpr` (it
    is interned on entry) or an already-interned node id from the engine's
    pool.
    """

    __slots__ = (
        "_distribution",
        "_distribution_map",
        "_mode",
        "_cutoff",
        "_pool",
        "_formula_cache",
        "_condition_cache",
        "_stats",
        "_policy",
    )

    def __init__(
        self,
        distribution: ProbabilityDistribution,
        mode: str = "formula",
        enumeration_cutoff: int = DEFAULT_ENUMERATION_CUTOFF,
        stats=None,
        pool: Optional[FormulaPool] = None,
        policy: Optional[PricingPolicy] = None,
    ) -> None:
        self._distribution = distribution
        self._distribution_map = distribution.as_dict()
        self._mode = require_engine_mode(mode)
        self._cutoff = enumeration_cutoff
        self._pool = pool if pool is not None else FormulaPool(stats=stats)
        self._policy = policy if policy is not None else PricingPolicy()
        # Shannon memo keyed by interned node id, valid for exactly this
        # distribution (engine_for hands out a fresh engine when the
        # distribution changes; migrate via absorb() when it merely grows).
        self._formula_cache: Dict[int, float] = {}
        self._condition_cache: Dict[Condition, float] = {}
        # Optional ContextStats-like sink (duck-typed: only needs a mutable
        # ``formulas_evaluated`` attribute); engines created through an
        # ExecutionContext report every priced formula there.
        self._stats = stats

    # -- inspection --------------------------------------------------------

    @property
    def distribution(self) -> ProbabilityDistribution:
        return self._distribution

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def pool(self) -> FormulaPool:
        """The intern table this engine prices through."""
        return self._pool

    @property
    def policy(self) -> PricingPolicy:
        """The engine's pricing budget/tolerance knobs."""
        return self._policy

    def cache_size(self) -> int:
        """Number of memoized (sub)formulas — exposed for tests and benchmarks."""
        return len(self._formula_cache) + len(self._condition_cache)

    # -- probabilities -----------------------------------------------------

    def probability(self, expr: Union[BoolExpr, int]) -> float:
        """``P(expr)`` under the engine's distribution and mode.

        *expr* is a :class:`BoolExpr` or an interned node id of this
        engine's pool.  ``"formula"`` and ``"enumerate"`` return the exact
        value (``"formula"`` raises
        :class:`~repro.utils.errors.BudgetExceededError` past the policy's
        ``max_expansions``); ``"sample"`` returns the point estimate of
        :meth:`probability_anytime`; ``"auto-sample"`` tries budgeted-exact
        first and falls back to the estimate on a tripped budget.
        """
        if self._mode == "enumerate":
            if isinstance(expr, int):
                expr = self._pool.to_expr(expr)
            if self._stats is not None:
                self._stats.formulas_evaluated += 1
            return enumeration_probability(expr, self._distribution)
        node = expr if isinstance(expr, int) else self._pool.intern(expr)
        if self._mode == "sample":
            return self._sample(node).estimate
        if self._mode == "auto-sample":
            budget = self._policy.max_expansions
            if budget is None:
                budget = DEFAULT_AUTO_EXPANSIONS
            try:
                return self._exact(node, budget)
            except BudgetExceededError:
                _bump(self._stats, "fallbacks")
                return self._sample(node).estimate
        return self._exact(node, self._policy.max_expansions)

    def _exact(self, node: int, max_expansions: Optional[int]) -> float:
        """Budgeted exact pricing of an interned node (Shannon expansion)."""
        # Count only genuine evaluations: a top-level hit in the Shannon
        # memo table is free and must not blur the warm-vs-cold picture.
        if self._stats is not None and node not in self._formula_cache:
            self._stats.formulas_evaluated += 1
        try:
            return self._pool.probability(
                node,
                self._distribution_map,
                cache=self._formula_cache,
                enumeration_cutoff=self._cutoff,
                max_expansions=max_expansions,
            )
        except BudgetExceededError:
            _bump(self._stats, "exact_budget_exceeded")
            raise

    def _sample(self, node: int, **overrides) -> SampleEstimate:
        """Monte-Carlo estimate of an interned node under the engine policy."""
        policy = self._policy.merged(**overrides)
        return sample_probability(
            self._pool, node, self._distribution_map, policy=policy, stats=self._stats
        )

    def probability_anytime(
        self,
        expr: Union[BoolExpr, int],
        epsilon: Optional[float] = None,
        confidence: Optional[float] = None,
        max_samples: Optional[int] = None,
        deadline: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> SampleEstimate:
        """Anytime ``P(expr)`` with a confidence interval.

        Draws seeded worlds and tightens the interval until the effective
        ``epsilon`` (half-width) / ``max_samples`` / ``deadline`` budget is
        hit; per-call knobs override the engine policy's.  Formulas with few
        mentioned events (≤ the policy's ``exact_event_threshold``) are
        priced exactly and come back zero-width with ``exact=True``; in
        ``"enumerate"`` mode the oracle value is returned the same way.
        """
        if self._mode == "enumerate":
            value = self.probability(expr)
            return SampleEstimate(
                estimate=value,
                low=value,
                high=value,
                samples=0,
                confidence=1.0,
                exact=True,
                method="enumerate",
            )
        node = expr if isinstance(expr, int) else self._pool.intern(expr)
        return self._sample(
            node,
            epsilon=epsilon,
            confidence=confidence,
            max_samples=max_samples,
            deadline=deadline,
            seed=seed,
        )

    def condition_probability(self, condition: Condition) -> float:
        """``eval(γ)`` of Definition 8: a product over the literals (0 if inconsistent)."""
        cached = self._condition_cache.get(condition)
        if cached is None:
            # Count only genuine pricing work: memoized lookups are free and
            # must not blur the warm-vs-cold picture the counter exists for.
            if self._stats is not None:
                self._stats.formulas_evaluated += 1
            cached = condition.probability(self._distribution_map)
            self._condition_cache[condition] = cached
        return cached

    def dnf_probability(self, formula: DNF) -> float:
        """Probability of a DNF (e.g. the answer disjunction of a boolean query).

        In formula mode the DNF is interned disjunct-by-disjunct (each
        :class:`Condition` is memoized in the pool), so re-pricing the same
        answer disjunction costs one dictionary probe per disjunct plus one
        memo hit — the per-call ``dnf_to_expr`` tree rebuild is gone.
        """
        if self._mode == "enumerate":
            return self.probability(dnf_to_expr(formula))
        return self.probability(self._pool.dnf(formula))

    def interned_root_ids(self) -> List[int]:
        """The interned node ids this engine's Shannon memo still references.

        These are the GC roots the owning context passes to
        :meth:`~repro.formulas.ir.FormulaPool.collect`: every id-keyed price
        the engine could serve again must keep its node alive.  The
        condition cache holds no ids and is unaffected by pool compaction.
        """
        return list(self._formula_cache)

    def remap_interned(self, remap) -> None:
        """Rekey the Shannon memo after a pool compaction.

        *remap* is the surviving old→new id map returned by
        :meth:`~repro.formulas.ir.FormulaPool.collect`; entries whose node
        was swept (possible only when the caller rooted fewer ids than
        :meth:`interned_root_ids` reports) are dropped rather than left
        dangling.
        """
        self._formula_cache = {
            remap[node]: value
            for node, value in self._formula_cache.items()
            if node in remap
        }

    def absorb(self, other: "ProbabilityEngine") -> int:
        """Copy *other*'s memoized prices into this engine's tables.

        The formula-cache analogue of
        :meth:`~repro.core.context.ExecutionContext.migrate_answers`: when an
        update or a cleaning pass replaces a prob-tree, the caller verifies
        the new distribution is a conservative extension of the old one
        (every old event keeps its probability — then every old price is
        still exact, as old formulas cannot mention the fresh event) and
        carries the Shannon and condition tables across instead of starting
        cold.  Requires both engines to share one pool (ids are only
        meaningful per pool); returns the number of entries copied.
        """
        if other._pool is not self._pool:
            return 0
        moved = 0
        formula_cache = self._formula_cache
        for key, value in other._formula_cache.items():
            if key not in formula_cache:
                formula_cache[key] = value
                moved += 1
        condition_cache = self._condition_cache
        for condition, value in other._condition_cache.items():
            if condition not in condition_cache:
                condition_cache[condition] = value
                moved += 1
        return moved

    def __repr__(self) -> str:
        return (
            f"ProbabilityEngine(mode={self._mode!r}, events={len(self._distribution)}, "
            f"cached={self.cache_size()})"
        )


# ---------------------------------------------------------------------------
# Shared per-probtree engines
# ---------------------------------------------------------------------------


def engine_for(probtree: ProbTree, mode: str = "formula") -> ProbabilityEngine:
    """The shared :class:`ProbabilityEngine` of *probtree* for *mode*.

    Successive calls on the same prob-tree return the same engine — and thus
    share its memoization caches — as long as the distribution has not
    changed (adding or re-weighting events invalidates cached values, so a
    fresh engine is handed out then).

    The registry lives on the module default
    :class:`~repro.core.context.ExecutionContext`, so ad-hoc callers and the
    context-threaded entry points share one set of Shannon tables; sessions
    wanting isolated caches create their own context and use its
    :meth:`~repro.core.context.ExecutionContext.engine_for`.
    """
    # Imported lazily: repro.core.context imports this module at load time.
    from repro.core.context import default_context

    return default_context().engine_for(probtree, require_engine_mode(mode))


# ---------------------------------------------------------------------------
# Prob-tree formulas
# ---------------------------------------------------------------------------


def presence_expr(probtree: ProbTree, node: NodeId) -> BoolExpr:
    """The event formula under which *node* is present in the world's value.

    This is the accumulated condition of Definition 4 as a :class:`BoolExpr`.
    """
    return from_condition(probtree.accumulated_condition(node))


def node_presence_probability(
    probtree: ProbTree, node: NodeId, engine: str = "formula"
) -> float:
    """Probability that *node* survives in a random world."""
    return engine_for(probtree, mode=engine).probability(presence_expr(probtree, node))


# ---------------------------------------------------------------------------
# Normalized possible-world semantics without world enumeration
# ---------------------------------------------------------------------------


def formula_pwset(
    probtree: ProbTree, probability_engine: Optional[ProbabilityEngine] = None
) -> PWSet:
    """The normalized semantics ``⟦T⟧`` via achievable-node-subset enumeration.

    Rather than walking the ``2^|used events|`` worlds, this walks the tree
    and branches only on nodes with a non-trivial condition, enumerating the
    *achievable* surviving node sets ``S``.  The probability of each ``S`` is
    the probability of the event formula

    ``⋀_{n ∈ S} γ(n)  ∧  ⋀_{n ∉ S, parent(n) ∈ S} ¬γ(n)``

    computed by the shared formula engine.  The formulas for distinct ``S``
    are mutually exclusive and exhaustive, so the result is a proper PW set;
    isomorphic values are merged exactly as
    ``possible_worlds(..., restrict_to_used=True, normalize=True)`` does.

    Worlds of probability zero (possible only when some event has
    probability exactly 1) are silently dropped — the enumeration path
    cannot represent them at all (:class:`PWSet` requires positive
    probabilities and ``possible_worlds`` raises), so this path is strictly
    more permissive there.

    ``probability_engine`` lets a caller (an
    :class:`~repro.core.context.ExecutionContext`) supply its own
    formula-mode :class:`ProbabilityEngine` *object* so the pricing shares
    that session's Shannon tables; by default the module-shared engine is
    used.  (Deliberately not named ``engine`` — that kwarg means a mode
    string everywhere else in the library.)
    """
    engine = probability_engine
    if engine is None:
        engine = engine_for(probtree, mode="formula")
    tree = probtree.tree
    conditions = {node: probtree.condition(node) for node in tree.nodes()}
    pairs: List[Tuple[object, float]] = []

    def assignment_extension(
        assignment: Dict[str, bool], condition: Condition
    ) -> Optional[Dict[str, bool]]:
        """Assignment with *condition*'s literals added, or None on conflict."""
        extended = assignment
        for literal in condition.literals:
            wanted = not literal.negated
            current = extended.get(literal.event)
            if current is None:
                if extended is assignment:
                    extended = dict(assignment)
                extended[literal.event] = wanted
            elif current != wanted:
                return None
        return extended

    def entailed(condition: Condition, assignment: Dict[str, bool]) -> bool:
        return all(
            assignment.get(literal.event) == (not literal.negated)
            for literal in condition.literals
        )

    pool = engine.pool

    def emit(
        included: Set[NodeId],
        assignment: Dict[str, bool],
        excluded: List[Condition],
    ) -> None:
        positive = Condition(
            Literal(event, negated=not value) for event, value in assignment.items()
        )
        if excluded:
            expr = pool.conj(
                [
                    pool.condition(positive),
                    *(pool.neg(pool.condition(condition)) for condition in excluded),
                ]
            )
            probability = engine.probability(expr)
        else:
            # The common case: single-literal exclusions were folded into the
            # assignment during the walk, so the world is one plain literal
            # conjunction — a product, no Shannon expansion needed.
            probability = engine.condition_probability(positive)
        if probability > 0.0:
            pairs.append((tree.restrict(included), probability))

    # Iterative DFS with copy-on-branch: unconditional nodes are absorbed in
    # place (O(1) each, no recursion — documents are routinely thousands of
    # nodes deep/wide), and state is only copied at genuine decision points
    # (nodes whose condition the current assignment neither entails nor
    # refutes).
    stack: List[Tuple[List[NodeId], int, Set[NodeId], Dict[str, bool], List[Condition]]] = [
        (list(tree.children(tree.root)), 0, {tree.root}, {}, [])
    ]
    while stack:
        pending, index, included, assignment, excluded = stack.pop()
        while True:
            if index == len(pending):
                emit(included, assignment, excluded)
                break
            node = pending[index]
            index += 1
            condition = conditions[node]
            extended = assignment_extension(assignment, condition)
            can_exclude = not entailed(condition, assignment)
            if extended is not None and can_exclude:
                # Branch: snapshot the exclude side (γ(node) is undetermined
                # here — it neither conflicts with nor is entailed by the
                # assignment, so ¬γ(node) must be recorded) and continue on
                # the include side.  A single-literal ¬γ is itself a literal:
                # folding it into the assignment lets later siblings sharing
                # the event prune immediately instead of spawning
                # zero-probability branches.
                exclude_assignment = dict(assignment)
                exclude_constraints = list(excluded)
                if len(condition) == 1:
                    (literal,) = condition.literals
                    exclude_assignment[literal.event] = literal.negated
                else:
                    exclude_constraints.append(condition)
                stack.append(
                    (
                        list(pending),
                        index,
                        set(included),
                        exclude_assignment,
                        exclude_constraints,
                    )
                )
            if extended is not None:
                included.add(node)
                assignment = extended
                pending.extend(tree.children(node))
            else:
                # γ(node) contradicts the assignment: the node (and its whole
                # subtree) is forced out, with no residual constraint.
                pass
    return PWSet(pairs).normalize()


__all__ = [
    "ENGINE_MODES",
    "SAMPLING_MODES",
    "require_engine_mode",
    "ProbabilityEngine",
    "engine_for",
    "presence_expr",
    "node_presence_probability",
    "formula_pwset",
]
