"""Possible-world semantics of prob-trees (Definition 4).

``⟦T⟧`` is the possible-world set containing, for every world ``V ⊆ W``, the
data tree ``V(T)`` with probability ``∏_{w∈V} π(w) · ∏_{w∈W−V} (1 − π(w))``.
Enumerating all ``2^{|W|}`` worlds is exponential; since events that no
condition mentions never change ``V(T)``, the default here enumerates only
the *used* events, which produces a possible-world set isomorphic to the full
one (probability mass of unused events sums out to 1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.probtree import ProbTree
from repro.formulas.literals import all_worlds
from repro.pw.pwset import PWSet


def possible_worlds(
    probtree: ProbTree,
    restrict_to_used: bool = True,
    normalize: bool = False,
) -> PWSet:
    """Compute ``⟦T⟧`` by enumerating worlds.

    Args:
        probtree: the prob-tree ``T``.
        restrict_to_used: enumerate only events mentioned by some condition
            (the result is isomorphic to the full semantics and exponentially
            smaller when many events are unused).  Set to ``False`` to follow
            Definition 4 literally.
        normalize: if ``True``, merge isomorphic worlds before returning.

    Returns:
        The possible-world set ``⟦T⟧`` (probabilities sum to 1).
    """
    events = probtree.used_events() if restrict_to_used else probtree.events()
    domain = sorted(events)
    pairs = []
    for world in all_worlds(domain):
        tree = probtree.value_in_world(world)
        probability = probtree.distribution.world_probability(world, over=domain)
        pairs.append((tree, probability))
    result = PWSet(pairs)
    return result.normalize() if normalize else result


def world_count(probtree: ProbTree, restrict_to_used: bool = True) -> int:
    """Number of worlds the (possibly restricted) enumeration would produce."""
    events = probtree.used_events() if restrict_to_used else probtree.events()
    return 1 << len(events)


def normalized_worlds(
    probtree: ProbTree, engine: Optional[str] = None, context=None
) -> PWSet:
    """The normalized semantics ``⟦T⟧``, computed by the selected engine.

    ``engine="formula"`` (the default) walks the achievable surviving-node
    subsets and prices each with the shared formula engine (no ``2^|W|``
    enumeration, see :func:`repro.core.probability.formula_pwset`);
    ``engine="enumerate"`` is the literal Definition 4 enumeration restricted
    to used events.  Both return the same PW set up to isomorphism whenever
    the enumeration is defined; the one divergence is events of probability
    exactly 1, whose zero-probability worlds make the enumeration raise while
    the formula path simply omits them.

    The sampling modes also take the formula path: materialized worlds must
    carry exact, mutually consistent probabilities (a PW set sums to 1), so
    Monte-Carlo estimates apply to *scalar* probability queries only.  Under
    those modes the formula pricing runs with the context's exact budget and
    a tripped :class:`~repro.utils.errors.BudgetExceededError` propagates to
    the caller (thresholding/ranking) as the typed failure.

    ``context`` (an :class:`~repro.core.context.ExecutionContext`) supplies
    the default engine mode and the Shannon tables the formula path prices
    with; the ``engine=`` string override wins over its default.
    """
    # Imported lazily to keep this module importable before
    # repro.core.probability during package initialization.
    from repro.core.context import resolve_context
    from repro.core.probability import formula_pwset

    ctx = resolve_context(context, engine=engine)
    if ctx.resolve_engine() != "enumerate":
        return formula_pwset(
            probtree, probability_engine=ctx.engine_for(probtree, "formula")
        )
    return possible_worlds(probtree, restrict_to_used=True, normalize=True)


__all__ = ["possible_worlds", "world_count", "normalized_worlds"]
