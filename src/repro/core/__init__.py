"""The probabilistic tree (prob-tree) model — the paper's core contribution.

* :mod:`repro.core.events` — event variables and their probability
  distribution ``π``;
* :mod:`repro.core.probtree` — the :class:`ProbTree` structure
  (Definition 2) and its value in a world (Definition 4);
* :mod:`repro.core.semantics` — the possible-world semantics ``⟦T⟧``;
* :mod:`repro.core.cleaning` — the linear-time cleaning pass of Section 3;
* :mod:`repro.core.probability` — the exact event-formula probability engine
  (Shannon expansion with shared per-probtree memoization);
* :mod:`repro.core.engine` — a convenience warehouse facade tying queries,
  updates, thresholding and DTD validation together (the "XML warehouse" of
  the paper's motivation).
"""

from repro.core.events import ProbabilityDistribution, EventFactory
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds, normalized_worlds
from repro.core.cleaning import clean
from repro.core.probability import ProbabilityEngine, engine_for, formula_pwset
from repro.core.engine import ProbXMLWarehouse

__all__ = [
    "ProbabilityDistribution",
    "EventFactory",
    "ProbTree",
    "possible_worlds",
    "normalized_worlds",
    "clean",
    "ProbabilityEngine",
    "engine_for",
    "formula_pwset",
    "ProbXMLWarehouse",
]
