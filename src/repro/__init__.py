"""repro — a probabilistic XML (prob-tree) engine.

A from-scratch reproduction of *On the Complexity of Managing Probabilistic
XML Data* (Senellart & Abiteboul, PODS 2007): the probabilistic tree data
model, its possible-world semantics, locally monotone query evaluation,
probabilistic updates, the randomized structural-equivalence test, threshold
pruning, DTD reasoning and the model variants of the paper's Section 5.

Quickstart::

    from repro import ProbXMLWarehouse, tree

    warehouse = ProbXMLWarehouse("catalog")
    warehouse.insert("/catalog", tree("movie", tree("title", "Solaris")),
                     confidence=0.8)
    for answer in warehouse.query("/catalog/movie/title"):
        print(answer.probability, answer.tree.to_nested())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the reproduced complexity results.
"""

from repro.core.context import (
    ContextStats,
    ExecutionContext,
    default_context,
    resolve_context,
    set_default_context,
)
from repro.core.engine import ProbXMLWarehouse
from repro.core.snapshot import SNAPSHOT_RETENTION, Snapshot
from repro.core.transactions import Transaction, transaction
from repro.core.events import EventFactory, ProbabilityDistribution
from repro.core.probability import ProbabilityEngine, engine_for, formula_pwset
from repro.core.probtree import ProbTree
from repro.core.cleaning import clean
from repro.core.semantics import normalized_worlds, possible_worlds
from repro.dtd.dtd import DTD, ChildConstraint
from repro.dtd.validation import validates
from repro.dtd.probtree_dtd import dtd_satisfiable, dtd_valid, dtd_restriction_probtree
from repro.equivalence.randomized import structurally_equivalent_randomized
from repro.equivalence.semantic import semantically_equivalent
from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.formulas.literals import Condition, Literal, Valuation
from repro.formulas.dnf import DNF
from repro.formulas.cnf import CNF
from repro.pw.convert import probtree_to_pwset, pwset_to_probtree
from repro.pw.pwset import PWSet
from repro.queries.base import Match, Query
from repro.formulas.sampling import PricingPolicy, SampleEstimate
from repro.queries.evaluation import (
    QueryAnswer,
    boolean_probability,
    boolean_probability_anytime,
    boolean_probability_many,
    evaluate_many,
    evaluate_on_datatree,
    evaluate_on_probtree,
    evaluate_on_pwset,
)
from repro.queries.path import parse_path
from repro.queries.treepattern import TreePattern
from repro.threshold.threshold import threshold_probtree, threshold_worlds
from repro.trees.builders import leaf, tree
from repro.trees.datatree import DataTree
from repro.trees.isomorphism import canonical_encoding, isomorphic
from repro.updates.operations import (
    Deletion,
    Insertion,
    ProbabilisticUpdate,
    apply_to_datatree,
)
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.updates.pw_updates import apply_update_to_pwset
from repro.variants.formula_probtree import FormulaProbTree
from repro.baselines.pw_engine import PossibleWorldsEngine
from repro.ranking.topk_worlds import top_k_worlds
from repro.ranking.topk_answers import top_k_answers
from repro.queries.aggregates import expected_match_count, match_count_distribution
from repro.simplification.approximate import simplify
from repro.simplification.distance import total_variation_distance
from repro.utils.errors import (
    BudgetExceededError,
    InjectedFault,
    SnapshotRetiredError,
    TransactionError,
)
from repro.utils.faults import FaultPlan
from repro.xmlio.parse import datatree_from_xml, probtree_from_xml
from repro.xmlio.serialize import datatree_to_xml, probtree_to_xml

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "ProbTree",
    "ProbabilityDistribution",
    "EventFactory",
    "ProbXMLWarehouse",
    "ExecutionContext",
    "ContextStats",
    "default_context",
    "set_default_context",
    "resolve_context",
    "ProbabilityEngine",
    "engine_for",
    "formula_pwset",
    "clean",
    "possible_worlds",
    "normalized_worlds",
    # trees
    "DataTree",
    "tree",
    "leaf",
    "isomorphic",
    "canonical_encoding",
    # conditions / formulas
    "Condition",
    "Literal",
    "Valuation",
    "DNF",
    "CNF",
    # possible worlds
    "PWSet",
    "probtree_to_pwset",
    "pwset_to_probtree",
    # queries
    "Query",
    "Match",
    "TreePattern",
    "parse_path",
    "QueryAnswer",
    "evaluate_on_datatree",
    "evaluate_on_pwset",
    "evaluate_on_probtree",
    "evaluate_many",
    "boolean_probability",
    "boolean_probability_anytime",
    "boolean_probability_many",
    # budgeted / anytime pricing
    "PricingPolicy",
    "SampleEstimate",
    "BudgetExceededError",
    # updates
    "Insertion",
    "Deletion",
    "ProbabilisticUpdate",
    "apply_to_datatree",
    "apply_update_to_probtree",
    "apply_update_to_pwset",
    # snapshots, transactions, fault injection
    "Snapshot",
    "SNAPSHOT_RETENTION",
    "Transaction",
    "transaction",
    "TransactionError",
    "SnapshotRetiredError",
    "FaultPlan",
    "InjectedFault",
    # equivalence
    "structurally_equivalent_exhaustive",
    "structurally_equivalent_randomized",
    "semantically_equivalent",
    # threshold / DTD
    "threshold_worlds",
    "threshold_probtree",
    "DTD",
    "ChildConstraint",
    "validates",
    "dtd_satisfiable",
    "dtd_valid",
    "dtd_restriction_probtree",
    # variants and baselines
    "FormulaProbTree",
    "PossibleWorldsEngine",
    # ranked retrieval, aggregates, simplification (the paper's future work)
    "top_k_worlds",
    "top_k_answers",
    "expected_match_count",
    "match_count_distribution",
    "simplify",
    "total_variation_distance",
    # XML I/O
    "datatree_to_xml",
    "probtree_to_xml",
    "datatree_from_xml",
    "probtree_from_xml",
]
