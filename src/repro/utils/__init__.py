"""Shared utilities: error types and deterministic seeding helpers."""

from repro.utils.errors import (
    ProbXMLError,
    InvalidConditionError,
    InvalidProbabilityError,
    InvalidTreeError,
    NodeNotFoundError,
    QueryError,
    UpdateError,
    DTDError,
)

__all__ = [
    "ProbXMLError",
    "InvalidConditionError",
    "InvalidProbabilityError",
    "InvalidTreeError",
    "NodeNotFoundError",
    "QueryError",
    "UpdateError",
    "DTDError",
]
