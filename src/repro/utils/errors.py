"""Exception hierarchy for the probabilistic XML library.

All library-specific errors derive from :class:`ProbXMLError`, so callers can
catch a single base class when they do not care about the precise failure
mode.  More specific subclasses are raised close to the point of failure with
messages that mention the offending value.
"""

from __future__ import annotations


class ProbXMLError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidTreeError(ProbXMLError):
    """A data tree is structurally invalid (cycles, missing root, ...)."""


class NodeNotFoundError(ProbXMLError, KeyError):
    """A node identifier does not belong to the tree it was used with."""


class InvalidConditionError(ProbXMLError):
    """A condition refers to unknown events or is syntactically malformed."""


class InvalidProbabilityError(ProbXMLError, ValueError):
    """A probability value lies outside its allowed range.

    The paper's convention (Section 2) is that event probabilities lie in the
    half-open interval ``]0; 1]``: zero probabilities are disallowed so that
    updates with zero confidence are simply not performed.
    """


class QueryError(ProbXMLError):
    """A query is malformed or was evaluated against an incompatible tree."""


class StaleColumnarTreeError(ProbXMLError):
    """A held :class:`~repro.trees.columnar.ColumnarTree` outlived its tree version.

    Columnar snapshots are immutable — unlike the structural
    :class:`~repro.trees.index.TreeIndex` they are never patched in place;
    incremental maintenance (:meth:`~repro.trees.columnar.ColumnarTree.patch`)
    produces a *replacement* column that only the cached accessor swaps in.
    Once the source tree mutates, every rank, interval and posting in a held
    column may therefore describe nodes that no longer exist.  Matching
    against such arrays would silently return wrong answers; the typed error
    enforces the contract that columns are only valid when obtained through
    :func:`~repro.trees.columnar.columnar_tree`.
    """


class ColumnarFormatError(ProbXMLError):
    """A columnar tree file is foreign, corrupt, truncated or wrong-endian."""


class BudgetExceededError(ProbXMLError):
    """An exact computation exceeded its work budget.

    Raised by the budgeted exact pricing path
    (:meth:`repro.formulas.ir.FormulaPool.probability` with
    ``max_expansions=``) when the number of Shannon cofactor expansions
    crosses the configured bound.  The typed failure lets callers degrade
    gracefully — ``engine="auto-sample"`` catches it and falls back to
    Monte-Carlo estimation — instead of hanging on adversarial instances.

    Attributes:
        spent: expansions performed when the budget tripped (``None`` when
            unknown).
        budget: the configured bound (``None`` when unknown).
    """

    def __init__(self, message: str, spent=None, budget=None) -> None:
        super().__init__(message)
        self.spent = spent
        self.budget = budget


class UpdateError(ProbXMLError):
    """An update operation is malformed or cannot be applied."""


class SnapshotRetiredError(ProbXMLError):
    """A pinned snapshot was retired (retention overrun) or released.

    Snapshot retention is bounded (see
    :data:`repro.core.snapshot.SNAPSHOT_RETENTION` and the execution
    context's ``snapshot_retention``): when too many distinct versions are
    pinned at once, the oldest pins are retired so writers cannot be forced
    to preserve unbounded history.  Reading through a retired (or already
    released) snapshot handle raises this error instead of silently serving
    a view whose consistency guarantee is gone.
    """


class TransactionError(ProbXMLError):
    """A transactional scope was misused (e.g. nested transactions)."""


class InjectedFault(ProbXMLError):
    """A fault deliberately raised by the fault-injection layer.

    Raised by :func:`repro.utils.faults.fire` when the active
    :class:`~repro.utils.faults.FaultPlan` is armed for the site being
    crossed.  Carries the site name so crash-consistency harnesses can
    report exactly where the simulated failure struck.
    """

    def __init__(self, site: str, occurrence: int) -> None:
        super().__init__(f"injected fault at site {site!r} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence


class DTDError(ProbXMLError):
    """A DTD definition is malformed."""


class ServiceError(ProbXMLError):
    """Base class for errors raised by the process-sharded corpus service."""


class WorkerCrashedError(ServiceError):
    """A shard worker process died (or its pipe broke) mid-request.

    The router catches this, respawns the worker from the stored document
    sources and retries the in-flight request once; it only propagates when
    the replacement worker fails too.

    Attributes:
        shard: index of the crashed shard (``None`` when unknown).
    """

    def __init__(self, message: str, shard=None) -> None:
        super().__init__(message)
        self.shard = shard


class RemoteError(ServiceError):
    """A shard worker raised an exception that has no typed wire encoding.

    Library errors (every :class:`ProbXMLError` subclass) are reconstructed
    as their original type on the router side; anything else — a genuine bug
    in the worker — comes back as this wrapper carrying the remote type name
    and traceback text.

    Attributes:
        remote_type: the exception class name raised in the worker.
        remote_traceback: the worker-side formatted traceback (may be ``""``).
    """

    def __init__(self, message: str, remote_type: str = "", remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback
