"""Exception hierarchy for the probabilistic XML library.

All library-specific errors derive from :class:`ProbXMLError`, so callers can
catch a single base class when they do not care about the precise failure
mode.  More specific subclasses are raised close to the point of failure with
messages that mention the offending value.
"""

from __future__ import annotations


class ProbXMLError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidTreeError(ProbXMLError):
    """A data tree is structurally invalid (cycles, missing root, ...)."""


class NodeNotFoundError(ProbXMLError, KeyError):
    """A node identifier does not belong to the tree it was used with."""


class InvalidConditionError(ProbXMLError):
    """A condition refers to unknown events or is syntactically malformed."""


class InvalidProbabilityError(ProbXMLError, ValueError):
    """A probability value lies outside its allowed range.

    The paper's convention (Section 2) is that event probabilities lie in the
    half-open interval ``]0; 1]``: zero probabilities are disallowed so that
    updates with zero confidence are simply not performed.
    """


class QueryError(ProbXMLError):
    """A query is malformed or was evaluated against an incompatible tree."""


class UpdateError(ProbXMLError):
    """An update operation is malformed or cannot be applied."""


class DTDError(ProbXMLError):
    """A DTD definition is malformed."""
