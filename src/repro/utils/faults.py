"""Deterministic fault injection for crash-consistency testing.

The transactional update pipeline claims that a failure *anywhere* inside an
update — mid tree mutation, mid index patch, mid cache migration — rolls back
with no externally visible effect.  This module makes "anywhere" testable:
mutators and migration loops call :func:`fire` at named **sites**, and a
:class:`FaultPlan` decides whether crossing a site raises an
:class:`~repro.utils.errors.InjectedFault`, sleeps (to widen race windows in
concurrency tests), or merely counts the crossing.

Two modes compose into the crash-consistency harness
(``tests/updates/test_crash_consistency.py``):

* **recording** — run the operation once with an unarmed plan; ``plan.hits``
  afterwards maps each site to how many times it was crossed, enumerating
  every possible failure point of that operation;
* **armed** — re-run the operation with ``plan.arm(site, at=k)``; the k-th
  crossing of *site* raises, and the harness asserts the rollback restored
  the pre-operation state byte for byte.

Plans are activated process-globally (``with plan.active(stats):``) because
the sites live deep inside mutators that know nothing about execution
contexts; activation is not reentrant and armed plans are meant for
single-threaded harnesses.  The inactive fast path is a single module-global
``None`` check, so production code pays one attribute load per site.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.utils.errors import InjectedFault, ProbXMLError

#: Every site instrumented with a :func:`fire` call.  ``FaultPlan.arm``
#: rejects names outside this registry so harnesses cannot silently arm a
#: typo that never fires.
FAULT_SITES = frozenset(
    {
        "datatree.add_child",
        "datatree.add_subtree_bulk",
        "datatree.set_label",
        "datatree.delete_subtree",
        "probtree.set_condition",
        "probtree.add_event",
        "index.patch",
        # Crossed once per journal entry replayed into a columnar-snapshot
        # replacement; a fault here discards the partial replacement and
        # poisons the stale column so the next access rebuilds.
        "columnar.patch",
        "context.migrate_answers",
        "context.migrate_formulas",
        # Crossed by a shard worker once per served request; arming it makes
        # the worker process hard-exit (os._exit) instead of raising, which
        # is how the router's crash-recovery path is fault-injected.
        "service.worker",
    }
)

_ACTIVE: Optional["FaultPlan"] = None


class FaultPlan:
    """A schedule of faults keyed by site name.

    ``arm(site, at=k)`` makes the k-th crossing of *site* fail (1-based).
    ``action="raise"`` raises :class:`InjectedFault`; ``action="delay"``
    sleeps ``delay`` seconds and continues — useful for widening race
    windows rather than simulating crashes.  Crossings of every registered
    site are counted in :attr:`hits` whether or not the site is armed.
    """

    __slots__ = ("hits", "_armed", "_stats")

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}
        self._armed: Dict[str, tuple] = {}
        self._stats = None

    def arm(self, site: str, at: int = 1, action: str = "raise", delay: float = 0.0):
        if site not in FAULT_SITES:
            raise ProbXMLError(
                f"unknown fault site {site!r}; registered sites: "
                f"{sorted(FAULT_SITES)}"
            )
        if at < 1:
            raise ProbXMLError(f"fault occurrence must be >= 1, got {at}")
        if action not in ("raise", "delay"):
            raise ProbXMLError(f"unknown fault action {action!r}")
        self._armed[site] = (at, action, delay)
        return self

    def disarm(self, site: str) -> "FaultPlan":
        self._armed.pop(site, None)
        return self

    def reset_hits(self) -> "FaultPlan":
        self.hits.clear()
        return self

    @property
    def armed_sites(self) -> frozenset:
        return frozenset(self._armed)

    @contextmanager
    def active(self, stats=None):
        """Install this plan as the process-global active plan.

        *stats* (a ``ContextStats``) receives ``faults_injected`` bumps for
        every fault the plan actually raises or delays while active.
        """
        global _ACTIVE
        if _ACTIVE is not None:
            raise ProbXMLError("a fault plan is already active; plans do not nest")
        self._stats = stats
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = None
            self._stats = None

    def _fire(self, site: str) -> None:
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        armed = self._armed.get(site)
        if armed is None:
            return
        at, action, delay = armed
        if count != at:
            return
        if self._stats is not None:
            self._stats.faults_injected += 1
        if action == "delay":
            time.sleep(delay)
            return
        raise InjectedFault(site, count)


def fire(site: str) -> None:
    """Cross a fault site; raises/delays when the active plan says so.

    Instrumented code calls this with a literal name from
    :data:`FAULT_SITES`.  With no active plan (the production case) the cost
    is one global load and a ``None`` comparison.
    """
    plan = _ACTIVE
    if plan is not None:
        plan._fire(site)


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None`` (mostly for tests)."""
    return _ACTIVE


@contextmanager
def activated(plan: Optional[FaultPlan], stats=None):
    """``plan.active(stats)`` when *plan* is not None, else a no-op scope.

    The update pipeline wraps each operation in this so a context-configured
    fault plan applies without a conditional at every call site.
    """
    if plan is None:
        yield None
        return
    with plan.active(stats) as installed:
        yield installed
