"""Deterministic random number helpers.

Workload generators, the randomized equivalence algorithm and the benchmark
harness all need randomness; to keep experiments reproducible every entry
point accepts either an integer seed or an existing :class:`random.Random`
instance and funnels it through :func:`make_rng`.
"""

from __future__ import annotations

import random
from typing import Optional, Union

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None) -> random.Random:
    """Return a ``random.Random`` built from *seed*.

    ``None`` yields a fresh unseeded generator, an ``int`` seeds a new
    generator, and an existing ``random.Random`` is returned unchanged (so
    callers can share one stream across helpers).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random) -> random.Random:
    """Derive an independent child generator from *rng*.

    Used when a generator needs to hand out sub-streams (e.g. one per
    benchmark repetition) without the sub-streams interfering with the parent
    sequence.
    """
    return random.Random(rng.getrandbits(64))


def choose_subset(rng: random.Random, items, probability: float = 0.5):
    """Return a random subset of *items*, each kept with *probability*."""
    return {item for item in items if rng.random() < probability}


__all__ = ["RngLike", "make_rng", "spawn_rng", "choose_subset"]
