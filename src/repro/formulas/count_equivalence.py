"""Count-equivalence of DNF formulas (Definition 10, Lemma 1).

Two DNF formulas are *count-equivalent* when every valuation satisfies the
same number of disjuncts in both.  This is the notion structural equivalence
of prob-trees reduces to (Lemma 2): because the data model has multiset
semantics, two children bundles are interchangeable only if every world keeps
the same *number* of copies, not merely the same truth value.

Three decision procedures are provided, mirroring the paper:

* :func:`count_equivalent_exhaustive` — enumerate every valuation
  (exponential, the obvious co-NP-style check of Proposition 3);
* :func:`count_equivalent_polynomial` — expand both characteristic
  polynomials and compare (exact, Lemma 1; possibly exponential expansion);
* :func:`count_equivalent_randomized` — Schwartz–Zippel identity testing,
  polynomial time with one-sided error (the Theorem 2 ingredient).
"""

from __future__ import annotations

from repro.formulas.dnf import DNF
from repro.formulas.literals import all_worlds
from repro.formulas.polynomial import characteristic_polynomial, schwartz_zippel_equal
from repro.utils.seeding import RngLike


def count_equivalent_exhaustive(left: DNF, right: DNF) -> bool:
    """Decide count-equivalence by enumerating all valuations."""
    events = sorted(left.events() | right.events())
    return all(
        left.count_satisfied(world) == right.count_satisfied(world)
        for world in all_worlds(events)
    )


def count_equivalent_polynomial(left: DNF, right: DNF) -> bool:
    """Decide count-equivalence by comparing expanded characteristic polynomials.

    Exact by Lemma 1: ``ψ ≡⁺ ψ'`` iff ``Pψ = Pψ'``.
    """
    return characteristic_polynomial(left) == characteristic_polynomial(right)


def count_equivalent_randomized(
    left: DNF,
    right: DNF,
    trials: int = 8,
    sample_size: int = 1 << 20,
    seed: RngLike = None,
) -> bool:
    """Decide count-equivalence with a one-sided-error randomized test.

    Never wrong when the formulas are count-equivalent; when they are not,
    answers ``True`` with probability at most ``(d / sample_size) ** trials``
    where ``d`` is the maximum number of literals in either formula.
    """
    return schwartz_zippel_equal(
        left, right, trials=trials, sample_size=sample_size, seed=seed
    )


__all__ = [
    "count_equivalent_exhaustive",
    "count_equivalent_polynomial",
    "count_equivalent_randomized",
]
