"""Sparse multivariate polynomials and characteristic polynomials of DNFs.

Definition 11 of the paper associates with every DNF formula ``ψ`` a
*characteristic polynomial* ``Pψ`` with integer coefficients: positive
literals ``Xi`` stay, negative literals become ``(1 − Xi)``, disjunction
becomes addition, conjunction becomes multiplication.  Lemma 1 then states
that two DNFs are count-equivalent iff their characteristic polynomials are
equal, and Theorem 2 turns that into a randomized identity test via the
Schwartz–Zippel lemma.

Two representations are provided:

* :class:`Polynomial` — an expanded sparse polynomial (mapping from monomials
  to integer coefficients).  Exact, used for the Lemma 1 oracle in tests and
  for small formulas; expansion may be exponential in the number of
  variables, which is fine for its intended use.
* direct evaluation of a DNF's characteristic polynomial at integer points
  (:func:`evaluate_characteristic`), which never expands anything and is what
  the PTIME randomized equivalence algorithm of Figure 3 relies on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition
from repro.utils.seeding import RngLike, make_rng

# A monomial is a frozenset of variable names (each with exponent 1: after the
# Definition 11 normalization every variable has degree at most one).
Monomial = FrozenSet[str]


class Polynomial:
    """A multilinear multivariate polynomial with integer coefficients.

    Monomials are sets of variables (each variable appears with exponent at
    most 1, which is all Definition 11 ever produces).  The zero polynomial
    has no monomials.
    """

    __slots__ = ("_coefficients",)

    def __init__(self, coefficients: Mapping[Monomial, int] | None = None) -> None:
        cleaned: Dict[Monomial, int] = {}
        if coefficients:
            for monomial, coefficient in coefficients.items():
                if coefficient:
                    cleaned[frozenset(monomial)] = int(coefficient)
        self._coefficients = cleaned

    # -- constructors ------------------------------------------------------

    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def constant(value: int) -> "Polynomial":
        return Polynomial({frozenset(): value})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        return Polynomial({frozenset([name]): 1})

    @staticmethod
    def one_minus(name: str) -> "Polynomial":
        """The polynomial ``1 − X`` used for negative literals."""
        return Polynomial({frozenset(): 1, frozenset([name]): -1})

    # -- inspection --------------------------------------------------------

    @property
    def coefficients(self) -> Dict[Monomial, int]:
        return dict(self._coefficients)

    def variables(self) -> FrozenSet[str]:
        result: set = set()
        for monomial in self._coefficients:
            result |= monomial
        return frozenset(result)

    def is_zero(self) -> bool:
        return not self._coefficients

    def degree(self) -> int:
        """Total degree (0 for the zero polynomial, by convention)."""
        if not self._coefficients:
            return 0
        return max(len(monomial) for monomial in self._coefficients)

    def evaluate(self, point: Mapping[str, int]) -> int:
        """Evaluate at an integer point (missing variables default to 0)."""
        total = 0
        for monomial, coefficient in self._coefficients.items():
            term = coefficient
            for variable in monomial:
                term *= point.get(variable, 0)
            total += term
        return total

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        result = dict(self._coefficients)
        for monomial, coefficient in other._coefficients.items():
            result[monomial] = result.get(monomial, 0) + coefficient
        return Polynomial(result)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        result = dict(self._coefficients)
        for monomial, coefficient in other._coefficients.items():
            result[monomial] = result.get(monomial, 0) - coefficient
        return Polynomial(result)

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._coefficients.items()})

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        result: Dict[Monomial, int] = {}
        for mono_a, coeff_a in self._coefficients.items():
            for mono_b, coeff_b in other._coefficients.items():
                monomial = mono_a | mono_b
                result[monomial] = result.get(monomial, 0) + coeff_a * coeff_b
        return Polynomial(result)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._coefficients == other._coefficients

    def __hash__(self) -> int:
        return hash(frozenset(self._coefficients.items()))

    def __str__(self) -> str:
        if not self._coefficients:
            return "0"
        parts = []
        for monomial in sorted(self._coefficients, key=lambda m: (len(m), sorted(m))):
            coefficient = self._coefficients[monomial]
            if monomial:
                term = "*".join(sorted(monomial))
                if coefficient == 1:
                    parts.append(term)
                elif coefficient == -1:
                    parts.append(f"-{term}")
                else:
                    parts.append(f"{coefficient}*{term}")
            else:
                parts.append(str(coefficient))
        return " + ".join(parts).replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"Polynomial({self._coefficients!r})"


# ---------------------------------------------------------------------------
# Characteristic polynomials (Definition 11).
# ---------------------------------------------------------------------------


def condition_polynomial(condition: Condition) -> Polynomial:
    """Expanded characteristic polynomial of a single conjunction.

    Inconsistent conjunctions map to the zero polynomial (they correspond to
    ``False`` after the Definition 11 normalization).
    """
    if not condition.is_consistent():
        return Polynomial.zero()
    result = Polynomial.constant(1)
    for literal in sorted(condition.literals):
        factor = (
            Polynomial.one_minus(literal.event)
            if literal.negated
            else Polynomial.variable(literal.event)
        )
        result = result * factor
    return result


def characteristic_polynomial(formula: DNF) -> Polynomial:
    """Expanded characteristic polynomial ``Pψ`` of a DNF (Definition 11)."""
    result = Polynomial.zero()
    for disjunct in formula.normalized().disjuncts:
        result = result + condition_polynomial(disjunct)
    return result


def evaluate_characteristic(formula: DNF, point: Mapping[str, int]) -> int:
    """Evaluate ``Pψ`` at an integer point **without expanding** it.

    This is the operation the Figure 3 algorithm performs: each consistent
    disjunct contributes the product of ``point[X]`` for positive literals and
    ``1 − point[X]`` for negative literals.  Runs in time linear in the size
    of the formula.
    """
    total = 0
    for disjunct in formula.disjuncts:
        if not disjunct.is_consistent():
            continue
        term = 1
        for literal in disjunct.literals:
            value = point.get(literal.event, 0)
            term *= (1 - value) if literal.negated else value
        total += term
    return total


def schwartz_zippel_equal(
    left: DNF,
    right: DNF,
    trials: int = 8,
    sample_size: int = 1 << 20,
    seed: RngLike = None,
) -> bool:
    """Randomized test for ``P_left == P_right`` via the Schwartz–Zippel lemma.

    Evaluates the difference polynomial at *trials* random integer points with
    coordinates drawn from ``{0, …, sample_size − 1}``.  If the polynomials
    are equal the answer is always ``True``; if they differ, each trial
    reports a spurious zero with probability at most ``d / sample_size`` where
    ``d`` is the degree (bounded by the number of literals), so the error
    probability drops exponentially with *trials*.
    """
    rng = make_rng(seed)
    variables = sorted(left.events() | right.events())
    if not variables:
        return evaluate_characteristic(left, {}) == evaluate_characteristic(right, {})
    for _ in range(max(1, trials)):
        point = {variable: rng.randrange(sample_size) for variable in variables}
        if evaluate_characteristic(left, point) != evaluate_characteristic(right, point):
            return False
    return True


__all__ = [
    "Monomial",
    "Polynomial",
    "condition_polynomial",
    "characteristic_polynomial",
    "evaluate_characteristic",
    "schwartz_zippel_equal",
]
