"""Arbitrary propositional formulas (the Section 5 "arbitrary formula" variant).

Plain prob-trees restrict node conditions to conjunctions of literals.
Section 5 of the paper considers allowing *any* propositional formula as a
condition and observes the trade-off flips: updates (including deletions)
become polynomial — the update just annotates nodes with a formula such as
``¬(c₁ ∨ c₂)`` without expanding it — while evaluating boolean queries
becomes NP-hard.

This module provides the small formula AST that variant needs: variables,
negation, conjunction, disjunction and the two constants, with world
evaluation, exact (exponential-time) probability computation and a size
measure used by the E12 benchmark.

These trees remain the construction surface for ad-hoc callers and the
reference representation for the differential harness; the *engines* price
through the hash-consed id-based IR of :mod:`repro.formulas.ir`, which
interns any :class:`BoolExpr` via :meth:`repro.formulas.ir.FormulaPool.intern`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import AbstractSet, Mapping, Set, Tuple

from repro.formulas.literals import Condition, all_worlds


class BoolExpr(ABC):
    """A propositional formula over event variables."""

    @abstractmethod
    def holds_in(self, world: AbstractSet[str]) -> bool:
        """Evaluate the formula in the world *world* (set of true events)."""

    @abstractmethod
    def events(self) -> AbstractSet[str]:
        """Event variables mentioned by the formula (do not mutate)."""

    @abstractmethod
    def size(self) -> int:
        """Number of AST nodes (the formula's representation size)."""

    def probability(self, distribution: Mapping[str, float]) -> float:
        """Exact probability under independent events (exponential time).

        The paper's point is precisely that no polynomial-time procedure is
        expected here (evaluation of boolean queries becomes NP-hard in this
        variant); the exhaustive enumeration is the reference semantics.
        """
        mentioned = sorted(self.events())
        total = 0.0
        for world in all_worlds(mentioned):
            if self.holds_in(world):
                probability = 1.0
                for event in mentioned:
                    p = distribution[event]
                    probability *= p if event in world else (1.0 - p)
                total += probability
        return total

    # -- operators -----------------------------------------------------------

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And((self, other))

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or((self, other))

    def __invert__(self) -> "BoolExpr":
        return Not(self)


@dataclass(frozen=True)
class TrueExpr(BoolExpr):
    """The constant ``true``."""

    def holds_in(self, world: AbstractSet[str]) -> bool:
        return True

    def events(self) -> AbstractSet[str]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseExpr(BoolExpr):
    """The constant ``false``."""

    def holds_in(self, world: AbstractSet[str]) -> bool:
        return False

    def events(self) -> AbstractSet[str]:
        return frozenset()

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Var(BoolExpr):
    """An event variable used as an atomic formula."""

    event: str

    def holds_in(self, world: AbstractSet[str]) -> bool:
        return self.event in world

    def events(self) -> AbstractSet[str]:
        return frozenset((self.event,))

    def size(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.event


@dataclass(frozen=True)
class Not(BoolExpr):
    """Negation."""

    operand: BoolExpr

    def holds_in(self, world: AbstractSet[str]) -> bool:
        return not self.operand.holds_in(world)

    def events(self) -> AbstractSet[str]:
        return _cached_events(self, lambda: self.operand.events())

    def size(self) -> int:
        return 1 + self.operand.size()

    def __hash__(self) -> int:
        return _cached_hash(self, lambda: hash(("Not", self.operand)))

    def __str__(self) -> str:
        return f"not ({self.operand})"


@dataclass(frozen=True)
class And(BoolExpr):
    """Conjunction of zero or more formulas (empty = true)."""

    operands: Tuple[BoolExpr, ...]

    def holds_in(self, world: AbstractSet[str]) -> bool:
        return all(operand.holds_in(world) for operand in self.operands)

    def events(self) -> AbstractSet[str]:
        return _cached_events(self, lambda: _union_events(self.operands))

    def size(self) -> int:
        return 1 + sum(operand.size() for operand in self.operands)

    def __hash__(self) -> int:
        return _cached_hash(self, lambda: hash(("And", self.operands)))

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " and ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Or(BoolExpr):
    """Disjunction of zero or more formulas (empty = false)."""

    operands: Tuple[BoolExpr, ...]

    def holds_in(self, world: AbstractSet[str]) -> bool:
        return any(operand.holds_in(world) for operand in self.operands)

    def events(self) -> AbstractSet[str]:
        return _cached_events(self, lambda: _union_events(self.operands))

    def size(self) -> int:
        return 1 + sum(operand.size() for operand in self.operands)

    def __hash__(self) -> int:
        return _cached_hash(self, lambda: hash(("Or", self.operands)))

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " or ".join(f"({operand})" for operand in self.operands)


def _union_events(operands: Tuple[BoolExpr, ...]) -> Set[str]:
    result: Set[str] = set()
    for operand in operands:
        result |= operand.events()
    return result


def _cached_events(expr: BoolExpr, compute) -> frozenset:
    # Formula ASTs are routinely DAGs with massive sharing (e.g. the
    # cardinality constructions of the DTD compiler); caching per node keeps
    # events() linear in the DAG instead of its exponential tree unfolding.
    cached = expr.__dict__.get("_events_cache")
    if cached is None:
        cached = frozenset(compute())
        object.__setattr__(expr, "_events_cache", cached)
    return cached


def _cached_hash(expr: BoolExpr, compute) -> int:
    # Same sharing argument as _cached_events: a node's hash must not
    # recursively re-hash an exponentially unfolded subtree on every dict
    # lookup in the engine's memo tables.
    cached = expr.__dict__.get("_hash_cache")
    if cached is None:
        cached = compute()
        object.__setattr__(expr, "_hash_cache", cached)
    return cached


def from_condition(condition: Condition) -> BoolExpr:
    """Translate a conjunctive :class:`Condition` into a :class:`BoolExpr`."""
    operands = []
    for literal in sorted(condition.literals):
        atom: BoolExpr = Var(literal.event)
        if literal.negated:
            atom = Not(atom)
        operands.append(atom)
    if not operands:
        return TrueExpr()
    if len(operands) == 1:
        return operands[0]
    return And(tuple(operands))


def conjunction(*operands: BoolExpr) -> BoolExpr:
    """N-ary conjunction with trivial simplifications."""
    flat = [op for op in operands if not isinstance(op, TrueExpr)]
    if any(isinstance(op, FalseExpr) for op in flat):
        return FalseExpr()
    if not flat:
        return TrueExpr()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(*operands: BoolExpr) -> BoolExpr:
    """N-ary disjunction with trivial simplifications."""
    flat = [op for op in operands if not isinstance(op, FalseExpr)]
    if any(isinstance(op, TrueExpr) for op in flat):
        return TrueExpr()
    if not flat:
        return FalseExpr()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


__all__ = [
    "BoolExpr",
    "TrueExpr",
    "FalseExpr",
    "Var",
    "Not",
    "And",
    "Or",
    "from_condition",
    "conjunction",
    "disjunction",
]
