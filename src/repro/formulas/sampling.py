"""Anytime Monte-Carlo pricing of interned event formulas.

The paper's hardness results (Section 5) guarantee adversarial instances on
which *any* exact engine is exponential: a formula whose event-sharing graph
has one big entangled component defeats both the independent-component
decomposition and the Shannon memo.  This module turns those worst cases
from outages into bounded-latency answers:

* :func:`sample_probability` draws seeded worlds over the formula's
  mentioned events and evaluates the interned IR DAG per world — cheap
  thanks to hash-consing (one topological pass over distinct nodes, batched
  over worlds, vectorized with numpy when available);
* the returned :class:`SampleEstimate` carries a **confidence interval**
  (Wilson score by default — tight near 0/1, where answer probabilities
  live); :func:`hoeffding_samples` gives the distribution-free a-priori
  sample count for a target half-width;
* the loop is **anytime**: it stops as soon as the interval half-width
  reaches ``epsilon``, the sample budget ``max_samples`` is spent, or the
  wall-clock ``deadline`` passes — whichever comes first — so callers get
  the tightest estimate their budget affords;
* small formulas short-circuit to the **budgeted exact path** (at most
  ``exact_event_threshold`` mentioned events means at most ``2^threshold``
  worlds — cheaper than sampling and exact): the estimate comes back with a
  zero-width interval and ``exact=True``.

A :class:`PricingPolicy` bundles every knob (exact budget, sampling
tolerances, seed) so an :class:`~repro.core.context.ExecutionContext` can
carry one session-wide pricing policy next to its engine/matcher modes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from statistics import NormalDist
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

try:  # pragma: no cover - exercised through whichever backend is present
    import numpy as _np
except ImportError:  # pragma: no cover - pure-python fallback container
    _np = None

from repro.formulas.ir import (
    FALSE_ID,
    KIND_AND,
    KIND_NOT,
    KIND_VAR,
    TRUE_ID,
    FormulaPool,
)
from repro.utils.errors import BudgetExceededError

#: Default target half-width of the confidence interval (a full width of
#: 0.01 — the ISSUE's gate — at the default 95% confidence).
DEFAULT_EPSILON = 0.005

#: Default confidence level of the reported interval.
DEFAULT_CONFIDENCE = 0.95

#: Default cap on drawn samples (reached only when epsilon never is).
DEFAULT_MAX_SAMPLES = 200_000

#: Formulas mentioning at most this many events are priced exactly (at most
#: ``2^threshold`` worlds via the budgeted exact path) instead of sampled.
DEFAULT_EXACT_EVENT_THRESHOLD = 10

#: Default Shannon-expansion budget ``engine="auto-sample"`` applies to its
#: exact attempt when the policy leaves ``max_expansions`` unset.
DEFAULT_AUTO_EXPANSIONS = 50_000

#: Worlds drawn per batch between stopping-rule checks.
SAMPLE_BATCH = 4096


def _bump(stats, name: str, amount: int = 1) -> None:
    """Add *amount* to ``stats.<name>`` when the duck-typed sink carries it."""
    if stats is not None and hasattr(stats, name):
        setattr(stats, name, getattr(stats, name) + amount)


@dataclass(frozen=True)
class PricingPolicy:
    """Session-wide budget knobs for exact and Monte-Carlo pricing.

    Attributes:
        max_expansions: Shannon-expansion budget of the exact path (``None``
            = unbounded for ``engine="formula"``; ``engine="auto-sample"``
            substitutes :data:`DEFAULT_AUTO_EXPANSIONS` so its exact attempt
            always terminates).
        epsilon: target confidence-interval *half*-width of the sampler
            (``None`` disables the width stopping rule).
        confidence: confidence level of the reported interval.
        max_samples: cap on drawn worlds per estimate.
        deadline: wall-clock budget in seconds per estimate (``None`` = no
            deadline; checked between batches).
        seed: Monte-Carlo seed — estimates are deterministic per seed.
        exact_event_threshold: mentioned-event count at or below which the
            sampler short-circuits to the budgeted exact path.
    """

    max_expansions: Optional[int] = None
    epsilon: Optional[float] = DEFAULT_EPSILON
    confidence: float = DEFAULT_CONFIDENCE
    max_samples: int = DEFAULT_MAX_SAMPLES
    deadline: Optional[float] = None
    seed: int = 0
    exact_event_threshold: int = DEFAULT_EXACT_EVENT_THRESHOLD

    def merged(self, **overrides) -> "PricingPolicy":
        """A copy with the non-``None`` entries of *overrides* applied."""
        effective = {
            key: value for key, value in overrides.items() if value is not None
        }
        return replace(self, **effective) if effective else self


@dataclass(frozen=True)
class SampleEstimate:
    """A probability estimate with its confidence interval.

    ``exact=True`` marks estimates produced by the exact path (small-formula
    short-circuit or ``engine="enumerate"``); their interval is zero-width
    and ``confidence`` is 1.  ``method`` records which path produced the
    value (``"exact"``, ``"sample"`` or ``"enumerate"``).
    """

    estimate: float
    low: float
    high: float
    samples: int
    confidence: float
    exact: bool = False
    method: str = "sample"

    @property
    def width(self) -> float:
        """Full width of the confidence interval."""
        return self.high - self.low

    @property
    def interval(self) -> Tuple[float, float]:
        """The ``(low, high)`` confidence interval."""
        return (self.low, self.high)

    def __float__(self) -> float:
        return self.estimate


def _z_score(confidence: float) -> float:
    """Two-sided normal quantile for a *confidence* level in ]0; 1[."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in ]0; 1[, got {confidence!r}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    successes: int, samples: int, confidence: float = DEFAULT_CONFIDENCE
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the naive normal approximation because it stays valid
    (and tight) near 0 and 1 — where boolean-query probabilities
    concentrate — and never leaves ``[0; 1]``.
    """
    if samples <= 0:
        return (0.0, 1.0)
    z = _z_score(confidence)
    rate = successes / samples
    z2_over_n = z * z / samples
    denominator = 1.0 + z2_over_n
    center = (rate + z2_over_n / 2.0) / denominator
    margin = (
        z
        * math.sqrt(rate * (1.0 - rate) / samples + z2_over_n / (4.0 * samples))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def hoeffding_epsilon(samples: int, confidence: float = DEFAULT_CONFIDENCE) -> float:
    """Distribution-free half-width guaranteed after *samples* draws."""
    if samples <= 0:
        return 1.0
    return math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * samples))


def hoeffding_samples(
    epsilon: float, confidence: float = DEFAULT_CONFIDENCE
) -> int:
    """Samples guaranteeing a half-width of *epsilon* at *confidence*."""
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    return math.ceil(math.log(2.0 / (1.0 - confidence)) / (2.0 * epsilon * epsilon))


def _linearize(pool: FormulaPool, node: int) -> List[int]:
    """Reachable nodes of *node* in topological (children-first) order."""
    order: List[int] = []
    seen = {TRUE_ID, FALSE_ID}
    stack: List[Tuple[int, bool]] = [(node, False)]
    while stack:
        current, ready = stack.pop()
        if ready:
            order.append(current)
            continue
        if current in seen:
            continue
        seen.add(current)
        stack.append((current, True))
        kind = pool.kind(current)
        if kind == KIND_NOT:
            stack.append((pool.operands(current), False))
        elif kind != KIND_VAR:
            stack.extend((operand, False) for operand in pool.operands(current))
    return order


def _count_true_numpy(
    pool: FormulaPool,
    order: List[int],
    node: int,
    worlds,
    column_of: Mapping[str, int],
) -> int:
    """Worlds (rows of the boolean matrix *worlds*) satisfying *node*."""
    if node == TRUE_ID:
        return int(worlds.shape[0])
    if node == FALSE_ID:
        return 0
    values: Dict[int, object] = {}
    for current in order:
        kind = pool.kind(current)
        if kind == KIND_VAR:
            values[current] = worlds[:, column_of[pool.operands(current)]]
        elif kind == KIND_NOT:
            values[current] = _np.logical_not(values[pool.operands(current)])
        else:
            operands = pool.operands(current)
            combine = _np.logical_and if kind == KIND_AND else _np.logical_or
            accumulated = combine(values[operands[0]], values[operands[1]])
            for operand in operands[2:]:
                combine(accumulated, values[operand], out=accumulated)
            values[current] = accumulated
    return int(values[node].sum())


def _holds_python(
    pool: FormulaPool, order: List[int], node: int, world: FrozenSet[str]
) -> bool:
    """Pure-python per-world DAG evaluation (numpy-less fallback)."""
    if node == TRUE_ID:
        return True
    if node == FALSE_ID:
        return False
    values: Dict[int, bool] = {TRUE_ID: True, FALSE_ID: False}
    for current in order:
        kind = pool.kind(current)
        if kind == KIND_VAR:
            values[current] = pool.operands(current) in world
        elif kind == KIND_NOT:
            values[current] = not values[pool.operands(current)]
        elif kind == KIND_AND:
            values[current] = all(
                values[operand] for operand in pool.operands(current)
            )
        else:
            values[current] = any(
                values[operand] for operand in pool.operands(current)
            )
    return values[node]


def sample_probability(
    pool: FormulaPool,
    node: int,
    distribution: Mapping[str, float],
    policy: Optional[PricingPolicy] = None,
    stats=None,
) -> SampleEstimate:
    """Anytime Monte-Carlo estimate of ``P(node)`` under independent events.

    Seeded (same policy seed ⇒ same estimate on the same backend), batched,
    and stopped by whichever budget trips first: interval half-width ≤
    ``policy.epsilon``, ``policy.max_samples`` drawn, or ``policy.deadline``
    seconds elapsed.  Formulas mentioning at most
    ``policy.exact_event_threshold`` events are priced exactly through the
    budgeted exact path instead (zero-width interval, ``exact=True``); if
    even that trips the expansion budget, sampling proceeds as the fallback.

    *stats* is an optional duck-typed counter sink
    (:class:`~repro.core.context.ContextStats`): ``samples_drawn``
    accumulates drawn worlds and ``exact_budget_exceeded`` counts
    short-circuit attempts that tripped their budget.
    """
    policy = policy if policy is not None else PricingPolicy()
    events = sorted(pool.events(node))
    if len(events) <= policy.exact_event_threshold:
        try:
            value = pool.probability(
                node, distribution, max_expansions=policy.max_expansions
            )
            return SampleEstimate(
                estimate=value,
                low=value,
                high=value,
                samples=0,
                confidence=1.0,
                exact=True,
                method="exact",
            )
        except BudgetExceededError:
            _bump(stats, "exact_budget_exceeded")

    order = _linearize(pool, node)
    column_of = {event: index for index, event in enumerate(events)}
    if _np is not None:
        generator = _np.random.default_rng(policy.seed)
        thresholds = _np.array([distribution[event] for event in events])
    else:
        import random

        generator = random.Random(policy.seed)
        thresholds = [distribution[event] for event in events]

    start = time.monotonic()
    successes = 0
    drawn = 0
    low, high = 0.0, 1.0
    while drawn < policy.max_samples:
        if (
            policy.deadline is not None
            and time.monotonic() - start >= policy.deadline
        ):
            break
        batch = min(SAMPLE_BATCH, policy.max_samples - drawn)
        if _np is not None:
            worlds = generator.random((batch, len(events))) < thresholds
            successes += _count_true_numpy(pool, order, node, worlds, column_of)
        else:
            for _ in range(batch):
                world = frozenset(
                    event
                    for event, threshold in zip(events, thresholds)
                    if generator.random() < threshold
                )
                if _holds_python(pool, order, node, world):
                    successes += 1
        drawn += batch
        low, high = wilson_interval(successes, drawn, policy.confidence)
        if policy.epsilon is not None and (high - low) / 2.0 <= policy.epsilon:
            break

    _bump(stats, "samples_drawn", drawn)
    estimate = successes / drawn if drawn else 0.5
    return SampleEstimate(
        estimate=estimate,
        low=low,
        high=high,
        samples=drawn,
        confidence=policy.confidence,
        exact=False,
        method="sample",
    )


__all__ = [
    "DEFAULT_EPSILON",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_EXACT_EVENT_THRESHOLD",
    "DEFAULT_AUTO_EXPANSIONS",
    "SAMPLE_BATCH",
    "PricingPolicy",
    "SampleEstimate",
    "wilson_interval",
    "hoeffding_epsilon",
    "hoeffding_samples",
    "sample_probability",
]
