"""Satisfiability and tautology checks for small formulas.

The library needs classical propositional reasoning in a few places:

* the Theorem 5 reductions are validated by comparing DTD
  satisfiability/validity of the constructed prob-tree against SAT of the
  source CNF;
* the *set-semantics* variant (Section 5) turns structural equivalence into
  plain propositional equivalence of the children's DNF conditions;
* tests use tautology checks as oracles.

Formulas here are tiny (tens of variables at most), so a DPLL-style search
with unit propagation plus a brute-force fallback is more than enough — and
keeping it exact avoids importing a solver that is unavailable offline.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Union

from repro.formulas.cnf import CNF
from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition, Literal, Valuation, all_worlds

Formula = Union[CNF, DNF]


def _formula_events(formula: Formula) -> Set[str]:
    if isinstance(formula, CNF):
        return formula.variables()
    return formula.events()


def satisfying_valuations(formula: Formula) -> Iterator[Valuation]:
    """Enumerate every satisfying valuation of *formula* over its variables."""
    events = sorted(_formula_events(formula))
    for world in all_worlds(events):
        if formula.holds_in(world):
            yield Valuation(world, events)


def is_satisfiable(formula: Formula) -> bool:
    """Whether the formula has at least one satisfying valuation."""
    if isinstance(formula, DNF):
        # A DNF is satisfiable iff some disjunct is consistent.
        return any(disjunct.is_consistent() for disjunct in formula.disjuncts)
    return _dpll(list(formula.clauses), {})


def is_tautology(formula: Formula) -> bool:
    """Whether the formula holds in every valuation of its variables."""
    if isinstance(formula, CNF):
        # A CNF is a tautology iff every clause is (x ∨ ¬x ∨ ...)-style valid.
        return all(_clause_is_valid(clause) for clause in formula.clauses)
    # DNF tautology: the negation (a CNF with the literals flipped) must be
    # unsatisfiable.
    negated = CNF(
        [literal.negate() for literal in disjunct.literals]
        for disjunct in formula.disjuncts
    )
    return not is_satisfiable(negated)


def _clause_is_valid(clause: FrozenSet[Literal]) -> bool:
    positive = {lit.event for lit in clause if not lit.negated}
    negative = {lit.event for lit in clause if lit.negated}
    return bool(positive & negative)


def equivalent(left: Formula, right: Formula) -> bool:
    """Classical propositional equivalence (same truth value in every world).

    This is the notion the *set-semantics* variant of Section 5 reduces
    structural equivalence to.  Note it is weaker than count-equivalence:
    ``A ∨ (A ∧ B)`` is equivalent but not count-equivalent to ``A``.
    """
    events = sorted(_formula_events(left) | _formula_events(right))
    return all(
        left.holds_in(world) == right.holds_in(world) for world in all_worlds(events)
    )


def models_count(formula: Formula) -> int:
    """Number of satisfying valuations over the formula's own variables."""
    events = sorted(_formula_events(formula))
    return sum(1 for world in all_worlds(events) if formula.holds_in(world))


# ---------------------------------------------------------------------------
# A small DPLL solver for CNF satisfiability.
# ---------------------------------------------------------------------------


def _dpll(clauses: List[FrozenSet[Literal]], assignment: Dict[str, bool]) -> bool:
    simplified = _simplify(clauses, assignment)
    if simplified is None:
        return False
    if not simplified:
        return True
    # Unit propagation.
    for clause in simplified:
        if len(clause) == 1:
            literal = next(iter(clause))
            new_assignment = dict(assignment)
            new_assignment[literal.event] = not literal.negated
            return _dpll(clauses, new_assignment)
    # Branch on the first unassigned variable of the first clause.
    literal = next(iter(simplified[0]))
    for value in (True, False):
        new_assignment = dict(assignment)
        new_assignment[literal.event] = value
        if _dpll(clauses, new_assignment):
            return True
    return False


def _simplify(
    clauses: List[FrozenSet[Literal]], assignment: Dict[str, bool]
) -> Optional[List[FrozenSet[Literal]]]:
    """Apply *assignment* to *clauses*.

    Returns ``None`` if some clause became empty (conflict), otherwise the
    list of not-yet-satisfied clauses restricted to unassigned literals.
    """
    result: List[FrozenSet[Literal]] = []
    for clause in clauses:
        satisfied = False
        remaining: Set[Literal] = set()
        for literal in clause:
            if literal.event in assignment:
                value = assignment[literal.event]
                if value != literal.negated:
                    satisfied = True
                    break
            else:
                remaining.add(literal)
        if satisfied:
            continue
        if not remaining:
            return None
        result.append(frozenset(remaining))
    return result


__all__ = [
    "Formula",
    "satisfying_valuations",
    "is_satisfiable",
    "is_tautology",
    "equivalent",
    "models_count",
]
