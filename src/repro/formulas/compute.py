"""Exact event-formula probability computation by Shannon expansion.

This module is the computational heart of the formula-based probability
engine (:mod:`repro.core.probability`).  Instead of materializing the
``2^|W|`` possible worlds of a prob-tree, questions about a prob-tree are
*compiled* into a propositional formula over the event variables (a
:class:`~repro.formulas.boolean.BoolExpr`) and the probability of that
formula is computed directly.

Algorithm
=========

``shannon_probability`` evaluates ``P(φ)`` under independent events by a
classic top-down decomposition:

1. **Constant folding** — ``true``, ``false`` and bare (possibly negated)
   variables are immediate: ``P(w) = π(w)``, ``P(¬φ) = 1 − P(φ)``.

2. **Independent-component decomposition** — the operands of a conjunction
   (resp. disjunction) are grouped into connected components of the "shares
   an event variable" relation.  Components are statistically independent, so

   * ``P(φ₁ ∧ … ∧ φₖ) = ∏ᵢ P(φᵢ)`` and
   * ``P(φ₁ ∨ … ∨ φₖ) = 1 − ∏ᵢ (1 − P(φᵢ))``

   when the ``φᵢ`` are the components.  This single rule makes the engine
   *linear* in the number of events for the ubiquitous case of conditions
   introduced by independent probabilistic updates (one fresh event each).

3. **Shannon expansion** — otherwise pick the first event ``w`` in DFS order
   (a constant-time choice aligned with the formula's own structure: the top
   guard of a cardinality DP, the first link of a chain) and split on it:

   ``P(φ) = π(w)·P(φ[w:=true]) + (1 − π(w))·P(φ[w:=false])``

   where ``φ[w:=v]`` is the *cofactor* — the formula with ``w`` substituted
   and constants propagated.  Cofactoring stays local to the subgraph
   mentioning ``w`` and shrinks the formula, which re-opens the door for
   rule 2 on each branch.

4. **Memoization** — results are cached on the (hashable) cofactored
   formula, in a cache that the caller may share across many queries against
   the same distribution.  Splitting on a shared variable produces identical
   residual subformulas along different branches, which the cache collapses;
   this is equivalent to memoizing on ``(formula, partial assignment)``
   because the cofactor *is* the pair's canonical representative.

5. **Enumeration fallback** — once a (sub)formula mentions at most
   ``enumeration_cutoff`` events, plain world enumeration is cheaper than
   further decomposition and is used as the base case.

Complexity
==========

Worst case remains exponential — Section 5 of the paper shows computing
query probabilities over arbitrary formulas is NP-hard, so no engine can do
better in general.  The point is that the cost is now driven by the
*entanglement* of the relevant events rather than their count: read-once
formulas (every event appears once) cost ``O(size)``; formulas whose
event-sharing graph has components of at most ``k`` events cost
``O(size · 2^k)``; full enumeration of ``2^n`` worlds is only reached when
every event interacts with every other.

Since the formula-IR refactor the engines run the *id-based* rebase of this
algorithm (:meth:`repro.formulas.ir.FormulaPool.probability`), whose memo is
keyed by interned node id instead of recursive structural hashing.  The
tree-based functions here are retained as the pre-refactor pricing oracle
(``tests/formulas/test_formula_ir_differential.py`` asserts the two agree)
and for callers without a pool.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.formulas.boolean import (
    And,
    BoolExpr,
    FalseExpr,
    Not,
    Or,
    TrueExpr,
    Var,
    conjunction,
    disjunction,
    from_condition,
)
from repro.formulas.dnf import DNF

#: Below this many mentioned events a (sub)formula is evaluated by direct
#: world enumeration instead of further Shannon expansion.
DEFAULT_ENUMERATION_CUTOFF = 3


# ---------------------------------------------------------------------------
# Stack management
# ---------------------------------------------------------------------------


def _depth_and_event_count(expr: BoolExpr) -> Tuple[int, int]:
    """``(DAG depth, distinct event count)`` computed without recursion."""
    depths: Dict[int, int] = {}
    events: Set[str] = set()
    stack: List[Tuple[BoolExpr, bool]] = [(expr, False)]
    while stack:
        node, ready = stack.pop()
        if isinstance(node, Not):
            children: Tuple[BoolExpr, ...] = (node.operand,)
        elif isinstance(node, (And, Or)):
            children = node.operands
        else:
            children = ()
        if ready:
            depths[id(node)] = 1 + max(
                (depths[id(child)] for child in children), default=0
            )
        elif id(node) not in depths:
            if isinstance(node, Var):
                events.add(node.event)
            stack.append((node, True))
            stack.extend(
                (child, False) for child in children if id(child) not in depths
            )
    return depths[id(expr)], len(events)


def formula_depth(expr: BoolExpr) -> int:
    """Depth of the formula DAG, computed without recursion."""
    return _depth_and_event_count(expr)[0]


# Active _generous_stack guards.  sys.setrecursionlimit is process-global, so
# a naive save/restore is not re-entrancy-safe: two guards interleaved through
# generators (enter A, enter B, exit A, exit B) would have A's exit restore a
# limit below B's still-active requirement mid-expansion.  The registry makes
# the guard raise-only-monotonic — on exit the limit is only ever lowered to
# the maximum of the remaining active targets (or the limit observed when the
# first guard of the batch entered), never below another live guard.
_guard_targets: List[int] = []
_guard_baseline: int = 0


@contextmanager
def _generous_stack(depth_hint: int) -> Iterator[None]:
    """Temporarily raise the recursion limit for deep (chain- or DP-shaped) formulas.

    The recursive walkers below use a bounded number of frames per formula
    level; deep DAGs (thousands of cardinality guards, long literal chains)
    legitimately exceed CPython's default 1000-frame limit.

    Re-entrancy-safe: nested or *interleaved* guards (lazy generators holding
    a guard open across another engine call) never lower the process-global
    limit below any still-active guard's target; the outermost exit restores
    the limit observed before the whole batch entered.
    """
    global _guard_baseline
    target = 1000 + 10 * depth_hint
    current = sys.getrecursionlimit()
    if not _guard_targets:
        _guard_baseline = current
    _guard_targets.append(target)
    if target > current:
        sys.setrecursionlimit(target)
    try:
        yield
    finally:
        _guard_targets.remove(target)
        floor = max(_guard_targets, default=_guard_baseline)
        floor = max(floor, _guard_baseline)
        if sys.getrecursionlimit() > floor:
            sys.setrecursionlimit(floor)


# ---------------------------------------------------------------------------
# Formula manipulation
# ---------------------------------------------------------------------------


def negation(expr: BoolExpr) -> BoolExpr:
    """``¬expr`` with constant folding and double-negation elimination."""
    if isinstance(expr, TrueExpr):
        return FalseExpr()
    if isinstance(expr, FalseExpr):
        return TrueExpr()
    if isinstance(expr, Not):
        return expr.operand
    return Not(expr)


def simplify(expr: BoolExpr) -> BoolExpr:
    """Bottom-up constant propagation (no variable is touched).

    Formula ASTs may be DAGs with heavy sharing; the per-call memo visits
    every distinct node once.
    """
    memo: Dict[int, BoolExpr] = {}

    def walk(node: BoolExpr) -> BoolExpr:
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Not):
            result = negation(walk(node.operand))
        elif isinstance(node, And):
            result = conjunction(*(walk(operand) for operand in node.operands))
        elif isinstance(node, Or):
            result = disjunction(*(walk(operand) for operand in node.operands))
        else:
            result = node
        memo[id(node)] = result
        return result

    return walk(expr)


def cofactor(expr: BoolExpr, event: str, value: bool) -> BoolExpr:
    """The Shannon cofactor ``expr[event := value]`` with constants propagated.

    Subtrees that do not mention *event* are returned as-is (preserving
    sharing), and every distinct DAG node is rewritten at most once.
    """
    memo: Dict[int, BoolExpr] = {}

    def walk(node: BoolExpr) -> BoolExpr:
        if event not in node.events():
            return node
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Var):
            result: BoolExpr = TrueExpr() if value else FalseExpr()
        elif isinstance(node, Not):
            result = negation(walk(node.operand))
        elif isinstance(node, And):
            result = conjunction(*(walk(operand) for operand in node.operands))
        elif isinstance(node, Or):
            result = disjunction(*(walk(operand) for operand in node.operands))
        else:
            result = node
        memo[id(node)] = result
        return result

    return walk(expr)


def dnf_to_expr(formula: DNF) -> BoolExpr:
    """Translate a :class:`DNF` into the equivalent :class:`BoolExpr`."""
    return disjunction(*(from_condition(disjunct) for disjunct in formula.disjuncts))


def independent_components(operands: Sequence[BoolExpr]) -> List[List[BoolExpr]]:
    """Group *operands* into connected components of shared event variables.

    Two operands belong to the same component when they (transitively) share
    an event; distinct components are statistically independent under the
    independent-event semantics.  An event→group index makes the grouping
    near-linear — the all-disjoint case (one fresh event per probabilistic
    update) costs one dictionary probe per event.
    """
    group_of: Dict[str, int] = {}
    groups: List[Optional[Tuple[List[BoolExpr], List[str]]]] = []
    for operand in operands:
        events = operand.events()
        hits = {group_of[event] for event in events if event in group_of}
        if not hits:
            group_of.update((event, len(groups)) for event in events)
            groups.append(([operand], list(events)))
            continue
        target = min(hits)
        ops, known_events = groups[target]  # type: ignore[misc]
        ops.append(operand)
        known_events.extend(events)
        for event in events:
            group_of[event] = target
        for other in hits - {target}:
            other_ops, other_events = groups[other]  # type: ignore[misc]
            ops.extend(other_ops)
            known_events.extend(other_events)
            for event in other_events:
                group_of[event] = target
            groups[other] = None
    return [group[0] for group in groups if group is not None]


# ---------------------------------------------------------------------------
# Probability computation
# ---------------------------------------------------------------------------


def enumeration_probability(expr: BoolExpr, distribution: Mapping[str, float]) -> float:
    """Reference semantics: enumerate the ``2^n`` worlds over mentioned events.

    Delegates to :meth:`BoolExpr.probability` — the single definition of the
    exhaustive semantics — and exists as the named entry point the engine's
    ``"enumerate"`` mode and the cutoff fallback share.  The recursion guard
    covers ``holds_in``/``events`` on deep formulas.
    """
    depth, event_count = _depth_and_event_count(expr)
    with _generous_stack(depth + event_count):
        return expr.probability(distribution)


def shannon_probability(
    expr: BoolExpr,
    distribution: Mapping[str, float],
    cache: Optional[Dict[BoolExpr, float]] = None,
    enumeration_cutoff: int = DEFAULT_ENUMERATION_CUTOFF,
) -> float:
    """Exact ``P(expr)`` under independent events, by Shannon expansion.

    Args:
        expr: the formula; every mentioned event must appear in
            *distribution*.
        distribution: mapping from event name to probability.
        cache: optional memoization table, shared across calls with the same
            distribution (e.g. all questions against one prob-tree).
        enumeration_cutoff: subformulas mentioning at most this many events
            fall back to direct enumeration.
    """
    memo: Dict[BoolExpr, float] = cache if cache is not None else {}

    def probability_of(formula: BoolExpr) -> float:
        if isinstance(formula, TrueExpr):
            return 1.0
        if isinstance(formula, FalseExpr):
            return 0.0
        if isinstance(formula, Var):
            return distribution[formula.event]
        if isinstance(formula, Not):
            return 1.0 - probability_of(formula.operand)
        cached = memo.get(formula)
        if cached is not None:
            return cached
        events = formula.events()
        if len(events) <= enumeration_cutoff:
            result = enumeration_probability(formula, distribution)
        else:
            result = _decomposed(formula)
        memo[formula] = result
        return result

    def _decomposed(formula: BoolExpr) -> float:
        if isinstance(formula, (And, Or)):
            components = independent_components(formula.operands)
            if len(components) > 1:
                if isinstance(formula, And):
                    result = 1.0
                    for component in components:
                        result *= probability_of(conjunction(*component))
                    return result
                result = 1.0
                for component in components:
                    result *= 1.0 - probability_of(disjunction(*component))
                return 1.0 - result
        # The first event in DFS order is a constant-time pivot that tracks
        # the formula's own structure (top guard of a cardinality DP, first
        # link of a chain), so cofactoring stays local and residuals collapse
        # into the formula's natural state space; a full occurrence count per
        # split (choose_pivot) costs more than it saves.
        pivot = _first_event(formula)
        p = distribution[pivot]
        high = probability_of(cofactor(formula, pivot, True))
        low = probability_of(cofactor(formula, pivot, False))
        return p * high + (1.0 - p) * low

    depth, event_count = _depth_and_event_count(expr)
    with _generous_stack(depth + event_count):
        return probability_of(simplify(expr))


def shannon_satisfiable(expr: BoolExpr, cache: Optional[Dict[BoolExpr, bool]] = None) -> bool:
    """Exact satisfiability of *expr* by the same split-and-memoize scheme.

    Unlike :func:`shannon_probability` this is a pure boolean question — no
    floating point is involved, so it is safe for decision procedures (DTD
    satisfiability / validity) where a probability of ``1e-300`` must still
    count as "some world exists".  Two exact shortcuts keep common shapes
    linear: a disjunction is satisfiable iff *any* disjunct is (regardless of
    shared events), and a conjunction of event-disjoint components is
    satisfiable iff every component is; pivot splitting only remains for
    genuinely entangled conjunctions.
    """
    memo: Dict[BoolExpr, bool] = cache if cache is not None else {}

    def satisfiable(formula: BoolExpr) -> bool:
        if isinstance(formula, TrueExpr):
            return True
        if isinstance(formula, FalseExpr):
            return False
        if isinstance(formula, Var):
            return True
        if isinstance(formula, Not) and isinstance(formula.operand, Var):
            return True
        cached = memo.get(formula)
        if cached is not None:
            return cached
        if isinstance(formula, Or):
            result = any(satisfiable(operand) for operand in formula.operands)
        elif isinstance(formula, Not) and isinstance(formula.operand, And):
            # De Morgan: SAT(¬(a ∧ b)) = SAT(¬a ∨ ¬b).
            result = any(
                satisfiable(negation(operand)) for operand in formula.operand.operands
            )
        elif isinstance(formula, Not) and isinstance(formula.operand, Or):
            # De Morgan: SAT(¬(a ∨ b)) = SAT(¬a ∧ ¬b).
            result = satisfiable(
                conjunction(*(negation(operand) for operand in formula.operand.operands))
            )
        elif isinstance(formula, And) and len(
            components := independent_components(formula.operands)
        ) > 1:
            result = all(
                satisfiable(conjunction(*component)) for component in components
            )
        else:
            # Cheap pivot: any event will do for termination, and the first
            # one sits near the top of the DAG, so cofactoring (which skips
            # subtrees not mentioning the event) stays local.
            pivot = _first_event(formula)
            result = satisfiable(cofactor(formula, pivot, True)) or satisfiable(
                cofactor(formula, pivot, False)
            )
        memo[formula] = result
        return result

    depth, event_count = _depth_and_event_count(expr)
    with _generous_stack(depth + event_count):
        return satisfiable(simplify(expr))


def _first_event(expr: BoolExpr) -> str:
    """The first event encountered in a DFS of the DAG (no recursion)."""
    stack = [expr]
    seen = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Var):
            return node.event
        if isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (And, Or)):
            stack.extend(reversed(node.operands))
    raise ValueError(f"formula {expr} mentions no event to split on")


def shannon_tautology(expr: BoolExpr) -> bool:
    """Whether *expr* holds in every world (no counterexample assignment)."""
    # negation() only touches the top node; the simplification happens inside
    # shannon_satisfiable, under its recursion-limit guard.
    return not shannon_satisfiable(negation(expr))


__all__ = [
    "DEFAULT_ENUMERATION_CUTOFF",
    "negation",
    "simplify",
    "cofactor",
    "dnf_to_expr",
    "formula_depth",
    "independent_components",
    "enumeration_probability",
    "shannon_probability",
    "shannon_satisfiable",
    "shannon_tautology",
]
