"""Propositional machinery underlying prob-tree conditions.

This subpackage contains everything the paper needs about propositional
formulas:

* :mod:`repro.formulas.literals` — event literals, conjunctive conditions
  (Section 2 of the paper) and valuations;
* :mod:`repro.formulas.dnf` / :mod:`repro.formulas.cnf` — disjunctive and
  conjunctive normal forms with conversions;
* :mod:`repro.formulas.sat` — satisfiability / tautology checks (used by the
  Theorem 5 reductions and the set-semantics variant);
* :mod:`repro.formulas.polynomial` — sparse multivariate polynomials with
  integer coefficients, the characteristic polynomial of a DNF
  (Definition 11) and the Schwartz–Zippel identity test;
* :mod:`repro.formulas.count_equivalence` — count-equivalence of DNF formulas
  (Definition 10) and its polynomial characterization (Lemma 1);
* :mod:`repro.formulas.compute` — exact formula probabilities by Shannon
  expansion over :class:`~repro.formulas.boolean.BoolExpr` trees (kept as the
  pre-refactor pricing oracle for the differential harness);
* :mod:`repro.formulas.ir` — the hash-consed formula IR: a context-owned
  :class:`~repro.formulas.ir.FormulaPool` interning every formula node into a
  shared DAG with stable integer ids, with id-based Shannon pricing and a
  pool-wide SAT cache (the computational core of the formula engine since
  the formula-IR refactor).
"""

from repro.formulas.literals import Literal, Condition, Valuation
from repro.formulas.compute import (
    cofactor,
    dnf_to_expr,
    enumeration_probability,
    shannon_probability,
)
from repro.formulas.dnf import DNF
from repro.formulas.cnf import CNF
from repro.formulas.ir import FormulaPool
from repro.formulas.polynomial import Polynomial, characteristic_polynomial
from repro.formulas.count_equivalence import (
    count_equivalent_exhaustive,
    count_equivalent_polynomial,
    count_equivalent_randomized,
)
from repro.formulas.sat import (
    is_satisfiable,
    is_tautology,
    satisfying_valuations,
    equivalent,
)

__all__ = [
    "Literal",
    "Condition",
    "Valuation",
    "DNF",
    "CNF",
    "FormulaPool",
    "Polynomial",
    "characteristic_polynomial",
    "count_equivalent_exhaustive",
    "count_equivalent_polynomial",
    "count_equivalent_randomized",
    "is_satisfiable",
    "is_tautology",
    "satisfying_valuations",
    "equivalent",
    "cofactor",
    "dnf_to_expr",
    "enumeration_probability",
    "shannon_probability",
]
