"""Disjunctive normal form formulas.

A DNF formula is a disjunction of conjunctions of literals; in this library a
disjunct is a :class:`~repro.formulas.literals.Condition`.  DNF formulas show
up in three places in the paper:

* the inductive characterization of structural equivalence (Lemma 2) compares
  the *disjunction* of the conditions attached to equivalent children;
* count-equivalence (Definition 10) and characteristic polynomials
  (Definition 11) are defined on DNF formulas;
* the Theorem 5 reductions turn a CNF SAT instance ``θ`` into the DNF of
  ``¬θ`` whose disjuncts annotate the children of the constructed prob-tree.

The class keeps disjuncts as a tuple (duplicates are *meaningful* for
count-equivalence, e.g. ``A ∨ A`` is not count-equivalent to ``A``), with an
optional normalization used by Definition 11.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from repro.formulas.literals import Condition, Literal, all_worlds


class DNF:
    """A propositional formula in disjunctive normal form.

    The empty DNF (no disjuncts) is *false*; a DNF containing the empty
    condition has a disjunct that is always true.
    """

    __slots__ = ("_disjuncts",)

    def __init__(self, disjuncts: Iterable[Condition] = ()) -> None:
        items: List[Condition] = []
        for disjunct in disjuncts:
            if not isinstance(disjunct, Condition):
                raise TypeError(f"expected Condition, got {disjunct!r}")
            items.append(disjunct)
        self._disjuncts = tuple(items)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def false() -> "DNF":
        """The empty disjunction (unsatisfiable)."""
        return DNF()

    @staticmethod
    def true() -> "DNF":
        """A single always-true disjunct."""
        return DNF([Condition.true()])

    @staticmethod
    def of(*disjuncts: Sequence[str]) -> "DNF":
        """Build a DNF from string atoms, e.g. ``DNF.of(["w1"], ["not w1", "w2"])``."""
        return DNF(Condition.of(*atoms) for atoms in disjuncts)

    @staticmethod
    def single(condition: Condition) -> "DNF":
        """A DNF with exactly one disjunct."""
        return DNF([condition])

    # -- inspection --------------------------------------------------------

    @property
    def disjuncts(self) -> Tuple[Condition, ...]:
        return self._disjuncts

    def events(self) -> Set[str]:
        """Every event variable mentioned by some disjunct."""
        result: Set[str] = set()
        for disjunct in self._disjuncts:
            result |= disjunct.events()
        return result

    def is_false(self) -> bool:
        return not self._disjuncts

    def holds_in(self, world: AbstractSet[str]) -> bool:
        """Whether at least one disjunct is satisfied in *world*."""
        return any(disjunct.holds_in(world) for disjunct in self._disjuncts)

    def count_satisfied(self, world: AbstractSet[str]) -> int:
        """Number of disjuncts satisfied in *world* (Definition 10)."""
        return sum(1 for disjunct in self._disjuncts if disjunct.holds_in(world))

    def probability(self, distribution: Mapping[str, float]) -> float:
        """Exact probability that the DNF holds under independent events.

        Computed by enumerating the worlds over the mentioned events, so it is
        exponential in the number of distinct events — acceptable because the
        paper itself shows (Section 5) that evaluating arbitrary formulas is
        NP-hard, and this helper is only used on small formulas and in the
        formula-condition variant.
        """
        mentioned = sorted(self.events())
        total = 0.0
        for world in all_worlds(mentioned):
            if self.holds_in(world):
                p = 1.0
                for event in mentioned:
                    q = distribution[event]
                    p *= q if event in world else (1.0 - q)
                total += p
        return total

    # -- algebra -----------------------------------------------------------

    def disjoin(self, other: "DNF") -> "DNF":
        """Disjunction (concatenation of disjuncts)."""
        return DNF(self._disjuncts + other.disjuncts)

    def __or__(self, other: "DNF") -> "DNF":
        return self.disjoin(other)

    def conjoin(self, other: "DNF") -> "DNF":
        """Conjunction via distribution (cartesian product of disjuncts)."""
        return DNF(
            left.conjoin(right)
            for left in self._disjuncts
            for right in other.disjuncts
        )

    def __and__(self, other: "DNF") -> "DNF":
        return self.conjoin(other)

    def conjoin_condition(self, condition: Condition) -> "DNF":
        """Conjoin every disjunct with *condition*."""
        return DNF(disjunct.conjoin(condition) for disjunct in self._disjuncts)

    def negate(self) -> "DNF":
        """Negation, re-expressed in DNF.

        This is the exponential step the paper blames for the deletion blowup
        (Proposition 2, Theorem 3): the negation of a disjunction of
        conjunctions must be distributed back into a disjunction of
        conjunctions.
        """
        result = DNF.true()
        for disjunct in self._disjuncts:
            negated_literals = DNF(
                [Condition([literal.negate()]) for literal in disjunct.literals]
            )
            if not disjunct.literals:
                # Negating an always-true disjunct yields false.
                return DNF.false()
            result = result.conjoin(negated_literals)
        return result.normalized()

    def normalized(self) -> "DNF":
        """Normalization used by Definition 11.

        Removes disjuncts containing incompatible atomic conditions and
        removes duplicate literals inside each disjunct (the latter is
        automatic since conditions are sets).  Duplicate *disjuncts* are kept:
        they matter for count-equivalence.
        """
        return DNF(d for d in self._disjuncts if d.is_consistent())

    def deduplicated(self) -> "DNF":
        """Remove duplicate disjuncts (changes count-equivalence class)."""
        seen: Set[Condition] = set()
        result: List[Condition] = []
        for disjunct in self._disjuncts:
            if disjunct not in seen:
                seen.add(disjunct)
                result.append(disjunct)
        return DNF(result)

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[Condition]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNF):
            return NotImplemented
        # Syntactic equality as multisets of disjuncts (order irrelevant).
        return sorted(map(str, self._disjuncts)) == sorted(map(str, other.disjuncts))

    def __hash__(self) -> int:
        return hash(("DNF", tuple(sorted(map(str, self._disjuncts)))))

    def __str__(self) -> str:
        if not self._disjuncts:
            return "false"
        return " or ".join(f"({disjunct})" for disjunct in self._disjuncts)

    def __repr__(self) -> str:
        return f"DNF({list(self._disjuncts)!r})"


def disjoint_dnf(formula: DNF) -> DNF:
    """Rewrite *formula* as an equivalent DNF with pairwise-exclusive disjuncts.

    The construction generalizes the sequential trick of Appendix A (where the
    conjunction ``a1 ∧ … ∧ ap`` is negated into the disjoint disjunction
    ``¬a1 ∨ (a1 ∧ ¬a2) ∨ …``): disjunct ``i`` is conjoined with the negation
    of every earlier disjunct, expanded by distribution.  The result is
    equivalent to the input and no world satisfies two output disjuncts,
    which is exactly what the multiset semantics of prob-trees needs when a
    node is replaced by several conditional copies.

    Worst-case output size is exponential in the input size; the paper shows
    (Theorem 3) that this is unavoidable.
    """
    result: List[Condition] = []
    previously_negated = DNF.true()  # disjoint decomposition of ¬(earlier disjuncts)
    for disjunct in formula.disjuncts:
        if not disjunct.is_consistent():
            continue
        for guard in previously_negated.disjuncts:
            combined = disjunct.conjoin(guard)
            if combined.is_consistent():
                result.append(combined)
        if not disjunct.literals:
            # An always-true disjunct absorbs everything after it.
            previously_negated = DNF.false()
        else:
            # Sequential (chain) decomposition of ¬disjunct — the pieces are
            # pairwise exclusive, so conjoining keeps the guard disjoint.
            ordered = sorted(disjunct.literals)
            pieces: List[Condition] = []
            prefix: List[Literal] = []
            for literal in ordered:
                pieces.append(Condition(prefix + [literal.negate()]))
                prefix.append(literal)
            previously_negated = previously_negated.conjoin(DNF(pieces)).normalized()
        if previously_negated.is_false():
            break
    return DNF(result)


__all__ = ["DNF", "disjoint_dnf"]
