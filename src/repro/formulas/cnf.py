"""Conjunctive normal form formulas.

CNF formulas appear in the paper only as inputs to the SAT reductions of
Theorem 5: a CNF formula ``θ`` is negated into the DNF of ``¬θ`` (which is
linear: each clause becomes a conjunction of negated literals) and the
disjuncts of that DNF annotate the children of the constructed prob-tree.
This module provides the CNF representation, the linear ``¬θ`` conversion and
a small random 3-CNF generator used by the E9 benchmark.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition, Literal
from repro.utils.seeding import RngLike, make_rng


class CNF:
    """A propositional formula in conjunctive normal form.

    A clause is a frozenset of literals (a disjunction); the formula is the
    conjunction of its clauses.  The empty CNF is *true*; a CNF containing an
    empty clause is *false*.
    """

    __slots__ = ("_clauses",)

    def __init__(self, clauses: Iterable[Iterable[Literal]] = ()) -> None:
        self._clauses: Tuple[FrozenSet[Literal], ...] = tuple(
            frozenset(clause) for clause in clauses
        )

    @staticmethod
    def of(*clauses: Sequence[str]) -> "CNF":
        """Build a CNF from string atoms, e.g. ``CNF.of(["x1", "not x2"], ["x2"])``."""
        return CNF([Literal.parse(atom) for atom in clause] for clause in clauses)

    @property
    def clauses(self) -> Tuple[FrozenSet[Literal], ...]:
        return self._clauses

    def variables(self) -> Set[str]:
        """Every propositional variable mentioned by some clause."""
        result: Set[str] = set()
        for clause in self._clauses:
            result |= {literal.event for literal in clause}
        return result

    def holds_in(self, world: AbstractSet[str]) -> bool:
        """Whether every clause has a satisfied literal in *world*."""
        return all(
            any(literal.holds_in(world) for literal in clause)
            for clause in self._clauses
        )

    def negation_dnf(self) -> DNF:
        """The DNF of ``¬θ``, computed in linear time.

        Each clause ``l1 ∨ … ∨ lk`` contributes the disjunct
        ``¬l1 ∧ … ∧ ¬lk``.  This is exactly the ``ψ1 … ψn`` construction of
        the Theorem 5 proof.
        """
        return DNF(
            Condition(literal.negate() for literal in clause)
            for clause in self._clauses
        )

    def __iter__(self) -> Iterator[FrozenSet[Literal]]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNF):
            return NotImplemented
        return sorted(map(_clause_key, self._clauses)) == sorted(
            map(_clause_key, other.clauses)
        )

    def __hash__(self) -> int:
        return hash(("CNF", tuple(sorted(map(_clause_key, self._clauses)))))

    def __str__(self) -> str:
        if not self._clauses:
            return "true"
        parts = []
        for clause in self._clauses:
            if clause:
                parts.append("(" + " or ".join(str(l) for l in sorted(clause)) + ")")
            else:
                parts.append("(false)")
        return " and ".join(parts)

    def __repr__(self) -> str:
        return f"CNF({[sorted(clause) for clause in self._clauses]!r})"


def _clause_key(clause: FrozenSet[Literal]) -> Tuple[Tuple[str, bool], ...]:
    return tuple(sorted((literal.event, literal.negated) for literal in clause))


def random_3cnf(
    num_variables: int,
    num_clauses: int,
    seed: RngLike = None,
    variable_prefix: str = "x",
) -> CNF:
    """Generate a random 3-CNF formula.

    Used to drive the Theorem 5 reduction benchmarks (E9).  Each clause picks
    three distinct variables uniformly and negates each with probability 1/2.
    """
    if num_variables < 3:
        raise ValueError("random_3cnf needs at least 3 variables")
    rng = make_rng(seed)
    variables = [f"{variable_prefix}{i}" for i in range(1, num_variables + 1)]
    clauses: List[List[Literal]] = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, 3)
        clauses.append(
            [Literal(var, negated=bool(rng.getrandbits(1))) for var in chosen]
        )
    return CNF(clauses)


__all__ = ["CNF", "random_3cnf"]
