"""Event literals, conjunctive conditions and valuations.

The prob-tree model (Definition 2 of the paper) annotates tree nodes with
*conditions*: conjunctions of atomic conditions of the form ``w`` or ``¬w``
where ``w`` is an event variable.  This module provides:

* :class:`Literal` — one atomic condition;
* :class:`Condition` — an immutable conjunction of literals, the annotation
  attached to prob-tree nodes;
* :class:`Valuation` — a truth assignment for event variables, i.e. one
  "world" ``V ⊆ W`` seen as its characteristic function.

Conditions follow the paper's conventions: the empty condition is the
always-true condition, and a condition containing both ``w`` and ``¬w`` is
inconsistent (its probability is zero, see Definition 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple


@dataclass(frozen=True, order=True)
class Literal:
    """An atomic condition ``w`` or ``¬w`` over an event variable.

    Attributes:
        event: name of the event variable.
        negated: ``True`` for ``¬w``, ``False`` for ``w``.
    """

    event: str
    negated: bool = False

    def negate(self) -> "Literal":
        """Return the complementary literal (``w`` ↔ ``¬w``)."""
        return Literal(self.event, not self.negated)

    def holds_in(self, world: AbstractSet[str]) -> bool:
        """Evaluate the literal in the world *world* (set of true events)."""
        present = self.event in world
        return not present if self.negated else present

    def __str__(self) -> str:
        return f"not {self.event}" if self.negated else self.event

    @staticmethod
    def parse(text: str) -> "Literal":
        """Parse ``"w"``, ``"not w"``, ``"!w"`` or ``"¬w"`` into a literal."""
        stripped = text.strip()
        for prefix in ("not ", "!", "¬", "~"):
            if stripped.startswith(prefix):
                return Literal(stripped[len(prefix):].strip(), negated=True)
        return Literal(stripped, negated=False)


class Condition:
    """An immutable conjunction of :class:`Literal` objects.

    The empty condition is *true*.  Conditions are hashable and comparable,
    and support conjunction via ``&``.  They deliberately do **not** collapse
    inconsistent conjunctions (containing ``w`` and ``¬w``): the paper keeps
    such conditions around and defines their probability to be zero
    (Definition 8); the cleaning pass of Section 3 is what removes them.
    """

    __slots__ = ("_literals",)

    def __init__(self, literals: Iterable[Literal] = ()) -> None:
        frozen = frozenset(literals)
        for literal in frozen:
            if not isinstance(literal, Literal):
                raise TypeError(f"expected Literal, got {literal!r}")
        object.__setattr__(self, "_literals", frozen)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def true() -> "Condition":
        """The empty (always satisfied) condition."""
        return _TRUE

    @staticmethod
    def of(*atoms: str) -> "Condition":
        """Build a condition from string atoms, e.g. ``Condition.of("w1", "not w2")``."""
        return Condition(Literal.parse(atom) for atom in atoms)

    @staticmethod
    def positive(*events: str) -> "Condition":
        """Condition asserting that every event in *events* is true."""
        return Condition(Literal(event) for event in events)

    @staticmethod
    def negative(*events: str) -> "Condition":
        """Condition asserting that every event in *events* is false."""
        return Condition(Literal(event, negated=True) for event in events)

    # -- inspection --------------------------------------------------------

    @property
    def literals(self) -> FrozenSet[Literal]:
        """The set of literals of the conjunction."""
        return self._literals

    def events(self) -> Set[str]:
        """The event variables mentioned by the condition."""
        return {literal.event for literal in self._literals}

    def is_true(self) -> bool:
        """Whether this is the empty (always true) condition."""
        return not self._literals

    def is_consistent(self) -> bool:
        """Whether no event appears both positively and negatively."""
        positive = {lit.event for lit in self._literals if not lit.negated}
        negative = {lit.event for lit in self._literals if lit.negated}
        return not (positive & negative)

    def holds_in(self, world: AbstractSet[str]) -> bool:
        """Evaluate the conjunction in the world *world* (set of true events)."""
        return all(literal.holds_in(world) for literal in self._literals)

    def probability(self, distribution: Mapping[str, float]) -> float:
        """Probability of the conjunction under independent events.

        Implements ``eval`` of Definition 8: zero when inconsistent, and the
        product of ``π(w)`` for positive literals and ``1 − π(w)`` for
        negative literals otherwise.
        """
        if not self.is_consistent():
            return 0.0
        result = 1.0
        # Sorted so the product's rounding is independent of the per-process
        # string-hash salt: frozenset order varies with PYTHONHASHSEED, and a
        # float product is not associative in the last ulp.  Bit-identical
        # probabilities across processes are part of the service contract.
        for literal in sorted(self._literals):
            p = distribution[literal.event]
            result *= (1.0 - p) if literal.negated else p
        return result

    # -- algebra -----------------------------------------------------------

    def conjoin(self, other: "Condition") -> "Condition":
        """Conjunction of two conditions (set union of their literals)."""
        return Condition(self._literals | other.literals)

    @staticmethod
    def conjoin_all(conditions: Iterable["Condition"]) -> "Condition":
        """Conjunction of arbitrarily many conditions in a single pass.

        Equivalent to folding :meth:`conjoin` over *conditions* but linear in
        the total literal count — repeated pairwise conjunction rebuilds the
        accumulated frozenset at every step, which is quadratic in the number
        of conditions (it dominated answer-bundle construction in query
        evaluation before this existed).

        Duplicate conjuncts are detected up front and unioned only once
        (conditions are already flat conjunctions, so this is the whole
        canonicalization story at this level — nesting cannot arise).
        Repeated-insert update chains routinely hand the same target
        condition in once per match, and answer bundles repeat each shared
        ancestor's condition once per answer node below it; skipping the
        redundant unions keeps those paths proportional to the *distinct*
        conjuncts.
        """
        literals: Set[Literal] = set()
        seen: Set[FrozenSet[Literal]] = set()
        for condition in conditions:
            frozen = condition._literals
            if not frozen or frozen in seen:
                continue
            seen.add(frozen)
            literals |= frozen
        if not literals:
            return _TRUE
        return Condition(literals)

    def __and__(self, other: "Condition") -> "Condition":
        return self.conjoin(other)

    def with_literal(self, literal: Literal) -> "Condition":
        """Return a new condition with *literal* added."""
        return Condition(self._literals | {literal})

    def without_events(self, events: AbstractSet[str]) -> "Condition":
        """Drop every literal whose event is in *events*."""
        return Condition(lit for lit in self._literals if lit.event not in events)

    def minus(self, other: "Condition") -> "Condition":
        """Set difference of literals (used by the Appendix A update rules)."""
        return Condition(self._literals - other.literals)

    def restricted_to(self, events: AbstractSet[str]) -> "Condition":
        """Keep only literals whose event is in *events*."""
        return Condition(lit for lit in self._literals if lit.event in events)

    def implies(self, other: "Condition") -> bool:
        """Syntactic implication: every literal of *other* appears here."""
        return other.literals <= self._literals

    def contradicts(self, other: "Condition") -> bool:
        """Whether the conjunction of both conditions is inconsistent."""
        return not self.conjoin(other).is_consistent()

    # -- dunder ------------------------------------------------------------

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self._literals))

    def __len__(self) -> int:
        return len(self._literals)

    def __contains__(self, literal: Literal) -> bool:
        return literal in self._literals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Condition):
            return NotImplemented
        return self._literals == other.literals

    def __hash__(self) -> int:
        return hash(("Condition", self._literals))

    def __bool__(self) -> bool:
        # A condition is "falsy" only when empty (always true); explicit
        # methods should be preferred, but this mirrors set semantics.
        return bool(self._literals)

    def __str__(self) -> str:
        if not self._literals:
            return "true"
        return " and ".join(str(lit) for lit in sorted(self._literals))

    def __repr__(self) -> str:
        return f"Condition({sorted(self._literals)!r})"


_TRUE = Condition()


class Valuation:
    """A truth assignment for event variables.

    A valuation is the characteristic function of a world ``V ⊆ W``: events in
    ``V`` are true, all the others are false.  The set of known events is kept
    so iteration and complementation are well defined.
    """

    __slots__ = ("_true", "_events")

    def __init__(self, true_events: Iterable[str], events: Optional[Iterable[str]] = None) -> None:
        true_set = frozenset(true_events)
        all_events = frozenset(events) if events is not None else true_set
        if not true_set <= all_events:
            raise ValueError(
                f"true events {sorted(true_set - all_events)} missing from event domain"
            )
        self._true = true_set
        self._events = all_events

    @staticmethod
    def from_mapping(assignment: Mapping[str, bool]) -> "Valuation":
        """Build a valuation from a ``{event: bool}`` mapping."""
        return Valuation(
            (event for event, value in assignment.items() if value),
            assignment.keys(),
        )

    @property
    def true_events(self) -> FrozenSet[str]:
        return self._true

    @property
    def events(self) -> FrozenSet[str]:
        return self._events

    def __getitem__(self, event: str) -> bool:
        if event not in self._events:
            raise KeyError(event)
        return event in self._true

    def satisfies(self, condition: Condition) -> bool:
        """Whether the condition holds under this valuation."""
        return condition.holds_in(self._true)

    def as_mapping(self) -> Dict[str, bool]:
        return {event: event in self._true for event in sorted(self._events)}

    def probability(self, distribution: Mapping[str, float]) -> float:
        """Probability of this world under independent events (Definition 4)."""
        result = 1.0
        # Sorted for hash-salt-independent rounding (see Condition.probability).
        for event in sorted(self._events):
            p = distribution[event]
            result *= p if event in self._true else (1.0 - p)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Valuation):
            return NotImplemented
        return self._true == other._true and self._events == other._events

    def __hash__(self) -> int:
        return hash((self._true, self._events))

    def __repr__(self) -> str:
        return f"Valuation(true={sorted(self._true)}, events={sorted(self._events)})"


def all_valuations(events: Iterable[str]) -> Iterator[Valuation]:
    """Enumerate every valuation over *events* (2^n of them).

    Enumeration order is deterministic: events are sorted and subsets are
    produced in increasing binary-counter order.
    """
    ordered = sorted(set(events))
    n = len(ordered)
    for mask in range(1 << n):
        yield Valuation(
            (ordered[i] for i in range(n) if mask >> i & 1),
            ordered,
        )


def all_worlds(events: Iterable[str]) -> Iterator[FrozenSet[str]]:
    """Enumerate every subset ``V ⊆ W`` of the given events."""
    ordered = sorted(set(events))
    n = len(ordered)
    for mask in range(1 << n):
        yield frozenset(ordered[i] for i in range(n) if mask >> i & 1)


__all__ = ["Literal", "Condition", "Valuation", "all_valuations", "all_worlds"]
