"""Hash-consed event-formula IR: one shared DAG of interned nodes.

The :mod:`repro.formulas.boolean` layer builds throwaway formula *trees* (or
ad-hoc DAGs) per call: two calls compiling the same question produce two
structurally equal but distinct object graphs, so the Shannon engine's memo
tables must re-hash and deep-compare whole subtrees to discover the sharing.
This module replaces that with a :class:`FormulaPool` — an intern table that
hash-conses every formula node into a pool-wide DAG with stable integer ids:

* **canonical on construction** — n-ary conjunctions/disjunctions are
  flattened (operands of the same kind are spliced in), deduplicated, sorted
  by id and constant-folded (neutral operands dropped, absorbing operands and
  complementary ``φ``/``¬φ`` pairs short-circuit the whole node); negation
  folds constants and double negations.  Two semantically identical
  constructions therefore yield the *same integer*, and "is this the formula
  I already priced?" becomes an O(1) integer probe instead of a recursive
  structural hash + deep equality walk;
* **per-node metadata computed once** — the mentioned-event set, DAG depth
  and the Shannon pivot (first event) are stored at allocation, so the
  pricing loops below never re-derive them;
* **id-based Shannon pricing** (:meth:`FormulaPool.probability`) — the same
  algorithm as :func:`repro.formulas.compute.shannon_probability`
  (constant folding, independent-component decomposition, Shannon expansion
  with an enumeration base case) rebased on node ids; cofactors are interned
  through the pool, so identical residuals collapse *globally*, across every
  formula the pool has ever seen;
* **a pool-wide SAT cache** (:meth:`FormulaPool.satisfiable`) —
  satisfiability is distribution-independent, so its memo is shared across
  every caller of the pool (every DTD check of a session hits one table).

The pool is owned by an :class:`~repro.core.context.ExecutionContext` (one
intern table per session, shared by all of its
:class:`~repro.core.probability.ProbabilityEngine` instances); the tree-based
functions in :mod:`repro.formulas.compute` remain as the pre-refactor pricing
oracle for the differential harness
(``tests/formulas/test_formula_ir_differential.py``).

Intern-table probes are counted (``intern_hits`` — the node already existed —
vs ``intern_misses`` — a new node was allocated) on the pool's stats sink,
which an execution context wires to its own
:class:`~repro.core.context.ContextStats` so warm-vs-cold behaviour is
observable through ``warehouse.stats`` and the CLI ``--stats``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.formulas.boolean import (
    And,
    BoolExpr,
    FalseExpr,
    Not,
    Or,
    TrueExpr,
    Var,
)
from repro.formulas.compute import DEFAULT_ENUMERATION_CUTOFF, _generous_stack
from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition, all_worlds
from repro.utils.errors import BudgetExceededError

#: Node kinds (stored per node; payload layout depends on the kind).
KIND_FALSE = 0  # payload None
KIND_TRUE = 1   # payload None
KIND_VAR = 2    # payload: the event name (str)
KIND_NOT = 3    # payload: the operand id (int)
KIND_AND = 4    # payload: sorted tuple of operand ids
KIND_OR = 5     # payload: sorted tuple of operand ids

#: The two constants occupy fixed slots in every pool.
FALSE_ID = 0
TRUE_ID = 1

_NO_EVENTS: FrozenSet[str] = frozenset()


class _InternCounters:
    """Fallback stats sink for pools created outside an execution context."""

    __slots__ = ("intern_hits", "intern_misses")

    def __init__(self) -> None:
        self.intern_hits = 0
        self.intern_misses = 0


class FormulaPool:
    """An intern table hash-consing event formulas into a shared DAG.

    Node ids are stable for the lifetime of the pool and canonical: equal
    formulas (up to flattening, operand order, duplicate operands and the
    constant folds listed in the module docstring) get equal ids.  The pool
    only ever grows — it is bounded by the number of *distinct* formula
    nodes a session constructs, which the memoized pricing keeps proportional
    to genuine new work.

    Args:
        stats: optional counter sink; only needs mutable ``intern_hits`` /
            ``intern_misses`` attributes (an execution context passes its
            :class:`~repro.core.context.ContextStats`).
    """

    __slots__ = (
        "_kind",
        "_payload",
        "_events",
        "_depth",
        "_pivot",
        "_var_ids",
        "_not_ids",
        "_nary_ids",
        "_condition_ids",
        "_sat_cache",
        "_stats",
    )

    def __init__(self, stats=None) -> None:
        # The sink contract is duck-typed; a caller's sink that only carries
        # other counters (e.g. a bare engine's formulas_evaluated-only stats
        # object) falls back to private intern counters.
        if stats is None or not (
            hasattr(stats, "intern_hits") and hasattr(stats, "intern_misses")
        ):
            stats = _InternCounters()
        self._stats = stats
        self._kind: List[int] = [KIND_FALSE, KIND_TRUE]
        self._payload: List[object] = [None, None]
        self._events: List[FrozenSet[str]] = [_NO_EVENTS, _NO_EVENTS]
        self._depth: List[int] = [1, 1]
        self._pivot: List[Optional[str]] = [None, None]
        self._var_ids: Dict[str, int] = {}
        self._not_ids: Dict[int, int] = {}
        self._nary_ids: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._condition_ids: Dict[Condition, int] = {}
        self._sat_cache: Dict[int, bool] = {}

    # -- introspection -------------------------------------------------------

    @property
    def stats(self):
        """The intern-counter sink this pool reports to."""
        return self._stats

    def __len__(self) -> int:
        return len(self._kind)

    def node_count(self) -> int:
        """Number of distinct interned nodes (constants included)."""
        return len(self._kind)

    def kind(self, node: int) -> int:
        """The ``KIND_*`` discriminator of *node*."""
        return self._kind[node]

    def operands(self, node: int):
        """The payload of *node* (event name, operand id or id tuple)."""
        return self._payload[node]

    def events(self, node: int) -> FrozenSet[str]:
        """Event variables mentioned by *node* (computed once, at allocation)."""
        return self._events[node]

    def depth(self, node: int) -> int:
        """DAG depth of *node* (a leaf has depth 1)."""
        return self._depth[node]

    # -- construction --------------------------------------------------------

    def _new(
        self,
        kind: int,
        payload: object,
        events: FrozenSet[str],
        depth: int,
        pivot: Optional[str],
    ) -> int:
        node = len(self._kind)
        self._kind.append(kind)
        self._payload.append(payload)
        self._events.append(events)
        self._depth.append(depth)
        self._pivot.append(pivot)
        return node

    def var(self, event: str) -> int:
        """The interned variable node for *event*."""
        node = self._var_ids.get(event)
        if node is None:
            self._stats.intern_misses += 1
            node = self._new(KIND_VAR, event, frozenset((event,)), 1, event)
            self._var_ids[event] = node
        else:
            self._stats.intern_hits += 1
        return node

    def neg(self, node: int) -> int:
        """``¬node`` with constant folding and double-negation elimination."""
        if node == TRUE_ID:
            return FALSE_ID
        if node == FALSE_ID:
            return TRUE_ID
        if self._kind[node] == KIND_NOT:
            return self._payload[node]  # type: ignore[return-value]
        cached = self._not_ids.get(node)
        if cached is None:
            self._stats.intern_misses += 1
            cached = self._new(
                KIND_NOT,
                node,
                self._events[node],
                self._depth[node] + 1,
                self._pivot[node],
            )
            self._not_ids[node] = cached
        else:
            self._stats.intern_hits += 1
        return cached

    def conj(self, operands: Iterable[int]) -> int:
        """Canonical n-ary conjunction of interned nodes (empty = true)."""
        return self._nary(KIND_AND, operands)

    def disj(self, operands: Iterable[int]) -> int:
        """Canonical n-ary disjunction of interned nodes (empty = false)."""
        return self._nary(KIND_OR, operands)

    def _nary(self, kind: int, operands: Iterable[int]) -> int:
        absorbing = FALSE_ID if kind == KIND_AND else TRUE_ID
        neutral = TRUE_ID if kind == KIND_AND else FALSE_ID
        kinds = self._kind
        flat: set = set()
        for operand in operands:
            if operand == absorbing:
                return absorbing
            if operand == neutral:
                continue
            if kinds[operand] == kind:
                # Same-kind children are themselves canonical (flat), so one
                # level of splicing yields the fully flattened operand set.
                flat.update(self._payload[operand])  # type: ignore[arg-type]
            else:
                flat.add(operand)
        payloads = self._payload
        for operand in flat:
            if kinds[operand] == KIND_NOT and payloads[operand] in flat:
                # φ together with ¬φ: the conjunction is false, the
                # disjunction true — exactly the absorbing constant.
                return absorbing
        if not flat:
            return neutral
        if len(flat) == 1:
            return next(iter(flat))
        ids = tuple(sorted(flat))
        key = (kind, ids)
        node = self._nary_ids.get(key)
        if node is None:
            self._stats.intern_misses += 1
            events = frozenset().union(*(self._events[i] for i in ids))
            depth = 1 + max(self._depth[i] for i in ids)
            # The smallest *event name* among the operands' pivots — which is
            # inductively the smallest mentioned event.  Pivoting must be a
            # function of the formula's structure alone: keying it off node
            # ids (e.g. ids[0]'s pivot) would make the Shannon expansion tree
            # — and the last-ulp rounding of exact probabilities — depend on
            # the pool's interning history, which differs across processes
            # (and across a crash-restart of a shard worker).
            pivot = min(self._pivot[i] for i in ids)  # type: ignore[type-var]
            node = self._new(kind, ids, events, depth, pivot)
            self._nary_ids[key] = node
        else:
            self._stats.intern_hits += 1
        return node

    def condition(self, condition: Condition) -> int:
        """The interned conjunction-of-literals of a :class:`Condition`.

        Memoized per condition, so re-pricing the answer bundles of a warm
        query is one dictionary probe per condition.  Inconsistent
        conditions (``w ∧ ¬w``) canonicalize to :data:`FALSE_ID`, matching
        the Definition 8 convention that their probability is zero.
        """
        node = self._condition_ids.get(condition)
        if node is None:
            self._stats.intern_misses += 1
            literals = []
            # Sorted: frozenset order varies with the per-process hash salt,
            # and the order of first-time var() calls decides node ids — which
            # decide the Shannon pivot and therefore the last-ulp rounding of
            # every exact probability priced off this pool.  Bit-identical
            # results across processes are part of the service contract.
            for literal in sorted(condition.literals):
                atom = self.var(literal.event)
                literals.append(self.neg(atom) if literal.negated else atom)
            node = self.conj(literals)
            self._condition_ids[condition] = node
        else:
            self._stats.intern_hits += 1
        return node

    def dnf(self, formula: DNF) -> int:
        """The interned disjunction of a DNF's (interned) disjuncts."""
        return self.disj([self.condition(disjunct) for disjunct in formula.disjuncts])

    def intern(self, expr: BoolExpr) -> int:
        """Intern an existing :class:`BoolExpr` tree/DAG, bottom-up.

        Iterative (formula DAGs are routinely thousands of levels deep) and
        memoized per distinct object, so shared subgraphs are translated
        once.
        """
        memo: Dict[int, int] = {}
        stack: List[BoolExpr] = [expr]
        while stack:
            node = stack[-1]
            key = id(node)
            if key in memo:
                stack.pop()
                continue
            if isinstance(node, Var):
                memo[key] = self.var(node.event)
            elif isinstance(node, TrueExpr):
                memo[key] = TRUE_ID
            elif isinstance(node, FalseExpr):
                memo[key] = FALSE_ID
            elif isinstance(node, Not):
                operand = memo.get(id(node.operand))
                if operand is None:
                    stack.append(node.operand)
                    continue
                memo[key] = self.neg(operand)
            else:  # And / Or
                pending = [
                    child for child in node.operands if id(child) not in memo
                ]
                if pending:
                    stack.extend(pending)
                    continue
                ids = (memo[id(child)] for child in node.operands)
                memo[key] = (
                    self.conj(ids) if isinstance(node, And) else self.disj(ids)
                )
            stack.pop()
        return memo[id(expr)]

    def to_expr(self, node: int) -> BoolExpr:
        """Rebuild a :class:`BoolExpr` for *node* (interop / oracle paths)."""
        memo: Dict[int, BoolExpr] = {FALSE_ID: FalseExpr(), TRUE_ID: TrueExpr()}
        stack = [node]
        kinds, payloads = self._kind, self._payload
        while stack:
            current = stack[-1]
            if current in memo:
                stack.pop()
                continue
            kind = kinds[current]
            if kind == KIND_VAR:
                memo[current] = Var(payloads[current])  # type: ignore[arg-type]
            elif kind == KIND_NOT:
                operand = payloads[current]
                if operand not in memo:
                    stack.append(operand)  # type: ignore[arg-type]
                    continue
                memo[current] = Not(memo[operand])
            else:
                pending = [i for i in payloads[current] if i not in memo]  # type: ignore[union-attr]
                if pending:
                    stack.extend(pending)
                    continue
                children = tuple(memo[i] for i in payloads[current])  # type: ignore[union-attr]
                memo[current] = And(children) if kind == KIND_AND else Or(children)
            stack.pop()
        return memo[node]

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, node: int, world) -> bool:
        """Truth value of *node* in *world* (a set of true events)."""
        memo: Dict[int, bool] = {}
        kinds, payloads = self._kind, self._payload

        def walk(current: int) -> bool:
            if current == TRUE_ID:
                return True
            if current == FALSE_ID:
                return False
            kind = kinds[current]
            if kind == KIND_VAR:
                return payloads[current] in world
            cached = memo.get(current)
            if cached is not None:
                return cached
            if kind == KIND_NOT:
                result = not walk(payloads[current])  # type: ignore[arg-type]
            elif kind == KIND_AND:
                result = all(walk(operand) for operand in payloads[current])  # type: ignore[union-attr]
            else:
                result = any(walk(operand) for operand in payloads[current])  # type: ignore[union-attr]
            memo[current] = result
            return result

        with _generous_stack(self._depth[node]):
            return walk(node)

    def cofactor(self, node: int, event: str, value: bool) -> int:
        """The interned Shannon cofactor ``node[event := value]``.

        Subgraphs not mentioning *event* are returned as-is; rewritten nodes
        go back through the pool constructors, so identical residuals from
        different splits collapse onto the same id.
        """
        memo: Dict[int, int] = {}
        events = self._events
        kinds, payloads = self._kind, self._payload

        def walk(current: int) -> int:
            if event not in events[current]:
                return current
            cached = memo.get(current)
            if cached is not None:
                return cached
            kind = kinds[current]
            if kind == KIND_VAR:
                result = TRUE_ID if value else FALSE_ID
            elif kind == KIND_NOT:
                result = self.neg(walk(payloads[current]))  # type: ignore[arg-type]
            elif kind == KIND_AND:
                result = self.conj(walk(operand) for operand in payloads[current])  # type: ignore[union-attr]
            else:
                result = self.disj(walk(operand) for operand in payloads[current])  # type: ignore[union-attr]
            memo[current] = result
            return result

        return walk(node)

    def _components(self, operands: Tuple[int, ...]) -> List[List[int]]:
        """Connected components of the shared-event relation, over node ids.

        The id-based mirror of
        :func:`repro.formulas.compute.independent_components`: an event →
        group index keeps the all-disjoint case (fresh event per update)
        linear.
        """
        events = self._events
        group_of: Dict[str, int] = {}
        groups: List[Optional[Tuple[List[int], List[str]]]] = []
        for operand in operands:
            mentioned = events[operand]
            hits = {group_of[event] for event in mentioned if event in group_of}
            if not hits:
                group_of.update((event, len(groups)) for event in mentioned)
                groups.append(([operand], list(mentioned)))
                continue
            target = min(hits)
            ops, known = groups[target]  # type: ignore[misc]
            ops.append(operand)
            known.extend(mentioned)
            for event in mentioned:
                group_of[event] = target
            for other in hits - {target}:
                other_ops, other_events = groups[other]  # type: ignore[misc]
                ops.extend(other_ops)
                known.extend(other_events)
                for event in other_events:
                    group_of[event] = target
                groups[other] = None
        return [group[0] for group in groups if group is not None]

    def _enumeration(self, node: int, distribution: Mapping[str, float]) -> float:
        """Base case: enumerate the worlds over the node's mentioned events."""
        mentioned = sorted(self._events[node])
        total = 0.0
        for world in all_worlds(mentioned):
            if self.evaluate(node, world):
                probability = 1.0
                for event in mentioned:
                    p = distribution[event]
                    probability *= p if event in world else (1.0 - p)
                total += probability
        return total

    def probability(
        self,
        node: int,
        distribution: Mapping[str, float],
        cache: Optional[Dict[int, float]] = None,
        enumeration_cutoff: int = DEFAULT_ENUMERATION_CUTOFF,
        max_expansions: Optional[int] = None,
    ) -> float:
        """Exact ``P(node)`` under independent events, by Shannon expansion.

        The id-based rebase of
        :func:`repro.formulas.compute.shannon_probability`: same constant
        folding, independent-component decomposition, first-event pivot and
        enumeration base case, but the memo (*cache*, shared across calls
        pricing under the same distribution) is keyed by interned id — a
        warm formula costs one integer probe, with no structural hashing or
        deep equality anywhere.  No ``simplify`` pre-pass is needed either:
        pool nodes are canonical by construction.

        ``max_expansions`` bounds the number of Shannon cofactor expansions
        (the exponential step; component splits and enumeration base cases
        are not counted).  Past the bound a
        :class:`~repro.utils.errors.BudgetExceededError` is raised instead
        of running unbounded on adversarially entangled formulas.  The memo
        entries written before the budget tripped are each individually
        exact, so a shared *cache* stays sound for later (budgeted or
        unbudgeted) calls.
        """
        memo: Dict[int, float] = cache if cache is not None else {}
        kinds, payloads, events = self._kind, self._payload, self._events
        expansions = 0

        def probability_of(current: int) -> float:
            if current == TRUE_ID:
                return 1.0
            if current == FALSE_ID:
                return 0.0
            kind = kinds[current]
            if kind == KIND_VAR:
                return distribution[payloads[current]]  # type: ignore[index]
            if kind == KIND_NOT:
                return 1.0 - probability_of(payloads[current])  # type: ignore[arg-type]
            cached = memo.get(current)
            if cached is not None:
                return cached
            if len(events[current]) <= enumeration_cutoff:
                result = self._enumeration(current, distribution)
            else:
                result = decomposed(current)
            memo[current] = result
            return result

        def decomposed(current: int) -> float:
            nonlocal expansions
            kind = kinds[current]
            operands = payloads[current]
            components = self._components(operands)  # type: ignore[arg-type]
            if len(components) > 1:
                # Canonical order (smallest event per component): a float
                # product is not associative in the last ulp, and component
                # discovery order follows operand ids, which are an artifact
                # of interning history — see the pivot comment in _nary.
                components.sort(
                    key=lambda ops: min(self._pivot[i] for i in ops)  # type: ignore[type-var]
                )
                if kind == KIND_AND:
                    result = 1.0
                    for component in components:
                        result *= probability_of(self.conj(component))
                    return result
                result = 1.0
                for component in components:
                    result *= 1.0 - probability_of(self.disj(component))
                return 1.0 - result
            expansions += 1
            if max_expansions is not None and expansions > max_expansions:
                raise BudgetExceededError(
                    f"exact pricing exceeded its Shannon-expansion budget "
                    f"({max_expansions} expansions); use engine='sample' or "
                    f"'auto-sample' for a bounded-latency estimate",
                    spent=expansions,
                    budget=max_expansions,
                )
            pivot = self._pivot[current]
            p = distribution[pivot]  # type: ignore[index]
            high = probability_of(self.cofactor(current, pivot, True))  # type: ignore[arg-type]
            low = probability_of(self.cofactor(current, pivot, False))  # type: ignore[arg-type]
            return p * high + (1.0 - p) * low

        with _generous_stack(self._depth[node] + len(events[node])):
            return probability_of(node)

    def satisfiable(self, node: int) -> bool:
        """Exact satisfiability of *node*, memoized **pool-wide**.

        Satisfiability does not depend on any distribution, so the memo
        (`_sat_cache`) is shared by every caller of the pool: a DTD check
        repeated across a session — or sharing subformulas with another
        document's check — is an O(1) probe.  Mirrors
        :func:`repro.formulas.compute.shannon_satisfiable`: disjunctions
        short-circuit per disjunct, De Morgan rewrites push negations one
        level, event-disjoint conjunction components split, and only
        genuinely entangled conjunctions pivot.
        """
        memo = self._sat_cache
        kinds, payloads = self._kind, self._payload

        def sat(current: int) -> bool:
            if current == TRUE_ID:
                return True
            if current == FALSE_ID:
                return False
            kind = kinds[current]
            if kind == KIND_VAR:
                return True
            payload = payloads[current]
            if kind == KIND_NOT and kinds[payload] == KIND_VAR:  # type: ignore[index]
                return True
            cached = memo.get(current)
            if cached is not None:
                return cached
            if kind == KIND_OR:
                result = any(sat(operand) for operand in payload)  # type: ignore[union-attr]
            elif kind == KIND_NOT:
                # Canonical NOT wraps a VAR (handled above), AND or OR.
                inner = payloads[payload]  # type: ignore[index]
                if kinds[payload] == KIND_AND:  # type: ignore[index]
                    result = any(sat(self.neg(operand)) for operand in inner)  # type: ignore[union-attr]
                else:
                    result = sat(self.conj(self.neg(operand) for operand in inner))  # type: ignore[union-attr]
            else:  # AND
                components = self._components(payload)  # type: ignore[arg-type]
                if len(components) > 1:
                    result = all(
                        sat(self.conj(component)) for component in components
                    )
                else:
                    pivot = self._pivot[current]
                    result = sat(self.cofactor(current, pivot, True)) or sat(  # type: ignore[arg-type]
                        self.cofactor(current, pivot, False)  # type: ignore[arg-type]
                    )
            memo[current] = result
            return result

        with _generous_stack(self._depth[node] + len(self._events[node])):
            return sat(node)

    def tautology(self, node: int) -> bool:
        """Whether *node* holds in every world."""
        return not self.satisfiable(self.neg(node))

    # -- garbage collection --------------------------------------------------

    def collect(self, roots: Iterable[int]):
        """Mark-and-sweep compaction: keep *roots* and their operands only.

        Hash consing never evicts — ids must stay stable between calls — so
        a long-lived pool accumulates every formula a session ever built,
        including cofactor residuals whose memoized prices were dropped long
        ago.  ``collect`` reclaims them: every node reachable from *roots*
        (plus the two constants) survives, everything else is swept, and the
        survivors are compacted onto fresh consecutive ids.

        The pool is mutated **in place** (object identity is preserved, so
        every engine holding a reference keeps pricing through the same
        pool) and stays canonical: children are always interned before their
        parents, so the old→new remap is monotonic and remapped operand
        tuples remain sorted; the intern tables are rebuilt from the
        compacted nodes.  The distribution-independent SAT cache is *pruned*
        to surviving nodes rather than treated as a root set — otherwise a
        repeated-DTD workload whose every cofactor lands in the SAT cache
        could never reclaim anything.

        Returns ``(remap, swept)``: *remap* maps each surviving old id to
        its new id (callers rekey their id-keyed memos through it) or is
        ``None`` when nothing was swept (ids unchanged, no rekeying needed);
        *swept* is the number of nodes reclaimed.
        """
        kinds, payloads = self._kind, self._payload
        total = len(kinds)
        live = bytearray(total)
        live[FALSE_ID] = live[TRUE_ID] = 1
        stack = [root for root in set(roots) if not live[root]]
        while stack:
            node = stack.pop()
            if live[node]:
                continue
            live[node] = 1
            kind = kinds[node]
            if kind == KIND_NOT:
                operand = payloads[node]
                if not live[operand]:  # type: ignore[index]
                    stack.append(operand)  # type: ignore[arg-type]
            elif kind == KIND_AND or kind == KIND_OR:
                stack.extend(
                    operand for operand in payloads[node] if not live[operand]  # type: ignore[union-attr]
                )
        swept = total - sum(live)
        if swept == 0:
            return None, 0

        remap: Dict[int, int] = {}
        new_kind: List[int] = []
        new_payload: List[object] = []
        new_events: List[FrozenSet[str]] = []
        new_depth: List[int] = []
        new_pivot: List[Optional[str]] = []
        events, depths, pivots = self._events, self._depth, self._pivot
        for old in range(total):
            if not live[old]:
                continue
            remap[old] = len(new_kind)
            kind = kinds[old]
            payload = payloads[old]
            if kind == KIND_NOT:
                payload = remap[payload]  # type: ignore[index]
            elif kind == KIND_AND or kind == KIND_OR:
                # Monotonic remap (children precede parents in id order), so
                # the remapped operand tuple is still sorted — canonical.
                payload = tuple(remap[operand] for operand in payload)  # type: ignore[union-attr]
            new_kind.append(kind)
            new_payload.append(payload)
            new_events.append(events[old])
            new_depth.append(depths[old])
            new_pivot.append(pivots[old])
        self._kind = new_kind
        self._payload = new_payload
        self._events = new_events
        self._depth = new_depth
        self._pivot = new_pivot

        var_ids: Dict[str, int] = {}
        not_ids: Dict[int, int] = {}
        nary_ids: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        for node in range(2, len(new_kind)):
            kind = new_kind[node]
            payload = new_payload[node]
            if kind == KIND_VAR:
                var_ids[payload] = node  # type: ignore[index]
            elif kind == KIND_NOT:
                not_ids[payload] = node  # type: ignore[index]
            else:
                nary_ids[(kind, payload)] = node  # type: ignore[index]
        self._var_ids = var_ids
        self._not_ids = not_ids
        self._nary_ids = nary_ids
        self._condition_ids = {
            condition: remap[node]
            for condition, node in self._condition_ids.items()
            if node in remap
        }
        self._sat_cache = {
            remap[node]: value
            for node, value in self._sat_cache.items()
            if node in remap
        }
        return remap, swept

    def __repr__(self) -> str:
        return (
            f"FormulaPool(nodes={len(self._kind)}, vars={len(self._var_ids)}, "
            f"conditions={len(self._condition_ids)}, sat_cached={len(self._sat_cache)})"
        )


__all__ = [
    "FALSE_ID",
    "TRUE_ID",
    "KIND_FALSE",
    "KIND_TRUE",
    "KIND_VAR",
    "KIND_NOT",
    "KIND_AND",
    "KIND_OR",
    "FormulaPool",
]
