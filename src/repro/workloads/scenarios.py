"""A synthetic "hidden web" information-extraction scenario.

The paper's motivation: a system discovers Web data sources, runs imprecise
analysis (classification, extraction, semantic tagging) over them and stores
the resulting knowledge in an XML warehouse; every imprecise finding becomes
a probabilistic update with the extractor's confidence.  No real traces from
that system are available, so this module generates a synthetic but faithful
workload:

* the warehouse starts as a bare ``warehouse`` root with ``source`` children;
* extraction events arrive as probabilistic insertions ("this source appears
  to describe a *movie* titled X, confidence 0.8") and occasional
  probabilistic deletions ("the earlier classification of this source looks
  wrong, retract it, confidence 0.6");
* analyst queries ask for titles, entity types or sources with given
  properties.

The generator is deterministic given a seed, and produces both the
update/query stream and the ground data needed to replay it against the
prob-tree engine and the explicit possible-world baseline (E14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.queries.treepattern import TreePattern, WILDCARD
from repro.trees.builders import tree
from repro.trees.datatree import DataTree
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.utils.seeding import RngLike, make_rng

_ENTITY_TYPES = ("movie", "person", "conference", "product")
_TITLE_WORDS = (
    "nights",
    "shadows",
    "journey",
    "garden",
    "engine",
    "archive",
    "harbor",
    "signal",
)


@dataclass(frozen=True)
class ExtractionEvent:
    """One step of the scenario: a probabilistic update plus a description."""

    description: str
    update: ProbabilisticUpdate


@dataclass
class HiddenWebScenario:
    """A reproducible extraction workload over an XML warehouse.

    Attributes:
        source_count: number of data sources discovered up front.
        event_count: number of extraction events (probabilistic updates).
        deletion_ratio: fraction of events that are retractions (deletions).
        seed: RNG seed for reproducibility.
    """

    source_count: int = 5
    event_count: int = 20
    deletion_ratio: float = 0.15
    seed: RngLike = 0

    def initial_document(self) -> DataTree:
        """The warehouse before any extraction: a root with bare sources."""
        document = DataTree("warehouse")
        for index in range(1, self.source_count + 1):
            document.add_child(document.root, f"source{index}")
        return document

    def events(self) -> List[ExtractionEvent]:
        """The extraction event stream (deterministic given the seed)."""
        rng = make_rng(self.seed)
        stream: List[ExtractionEvent] = []
        for step in range(self.event_count):
            source = rng.randint(1, self.source_count)
            if step > 2 and rng.random() < self.deletion_ratio:
                stream.append(self._retraction(rng, source))
            else:
                stream.append(self._extraction(rng, source, step))
        return stream

    def queries(self) -> List[Tuple[str, TreePattern]]:
        """A handful of analyst queries over the warehouse."""
        by_entity = []
        for entity in _ENTITY_TYPES:
            pattern = TreePattern("warehouse")
            source = pattern.add_child(pattern.root, WILDCARD)
            pattern.add_child(source, entity)
            by_entity.append((f"sources describing a {entity}", pattern))
        titled = TreePattern("warehouse")
        source = titled.add_child(titled.root, WILDCARD)
        entity = titled.add_child(source, WILDCARD)
        titled.add_child(entity, "title", edge="child")
        by_entity.append(("entities with an extracted title", titled))
        return by_entity

    # -- internal ------------------------------------------------------------

    def _extraction(self, rng, source: int, step: int) -> ExtractionEvent:
        entity_type = rng.choice(_ENTITY_TYPES)
        title = f"{rng.choice(_TITLE_WORDS)}-{step}"
        confidence = round(rng.uniform(0.5, 0.95), 2)
        extracted = tree(entity_type, tree("title", title), tree("url", f"http://s{source}.example"))
        pattern = TreePattern("warehouse")
        focus = pattern.add_child(pattern.root, f"source{source}")
        update = ProbabilisticUpdate(
            Insertion(pattern, focus, extracted), confidence=confidence
        )
        description = (
            f"extractor found a {entity_type} titled {title!r} on source{source} "
            f"(confidence {confidence})"
        )
        return ExtractionEvent(description, update)

    def _retraction(self, rng, source: int) -> ExtractionEvent:
        entity_type = rng.choice(_ENTITY_TYPES)
        confidence = round(rng.uniform(0.4, 0.8), 2)
        pattern = TreePattern("warehouse")
        source_node = pattern.add_child(pattern.root, f"source{source}")
        focus = pattern.add_child(source_node, entity_type)
        update = ProbabilisticUpdate(Deletion(pattern, focus), confidence=confidence)
        description = (
            f"curator retracted {entity_type} annotations on source{source} "
            f"(confidence {confidence})"
        )
        return ExtractionEvent(description, update)


__all__ = ["ExtractionEvent", "HiddenWebScenario"]
