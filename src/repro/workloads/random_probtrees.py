"""Random prob-tree generation.

A random prob-tree is a random data tree whose non-root nodes are annotated,
with a configurable probability, by small random conditions over a pool of
event variables.  Keeping the pool small relative to the node count produces
the correlation patterns (shared events across nodes) that make equivalence
and update benchmarks interesting; a larger pool approaches the
fully-independent case of the paper's worst-case constructions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition, Literal
from repro.trees.datatree import DataTree
from repro.utils.seeding import RngLike, make_rng
from repro.workloads.random_trees import DEFAULT_LABELS, random_datatree


def random_condition(
    events: Sequence[str],
    seed: RngLike = None,
    max_literals: int = 2,
    negation_probability: float = 0.3,
) -> Condition:
    """A random conjunction of at most *max_literals* literals over *events*."""
    rng = make_rng(seed)
    if not events or max_literals <= 0:
        return Condition.true()
    count = rng.randint(1, min(max_literals, len(events)))
    chosen = rng.sample(list(events), count)
    return Condition(
        Literal(event, negated=rng.random() < negation_probability)
        for event in chosen
    )


def random_probtree(
    node_count: int,
    event_count: int,
    seed: RngLike = None,
    labels: Sequence[str] = DEFAULT_LABELS,
    condition_probability: float = 0.6,
    max_literals: int = 2,
    root_label: Optional[str] = None,
    tree: Optional[DataTree] = None,
) -> ProbTree:
    """Generate a random prob-tree.

    Args:
        node_count: nodes of the underlying data tree (ignored when *tree*
            is supplied).
        event_count: size of the event pool; probabilities are drawn
            uniformly from ``[0.1, 0.9]``.
        condition_probability: chance that a non-root node carries a
            non-trivial condition.
        max_literals: maximum number of literals per condition.
        tree: optionally reuse an existing data tree instead of generating
            one.
    """
    rng = make_rng(seed)
    if tree is None:
        tree = random_datatree(
            node_count, labels=labels, seed=rng, root_label=root_label
        )
    events = [f"w{i}" for i in range(1, event_count + 1)]
    distribution = ProbabilityDistribution(
        {event: round(rng.uniform(0.1, 0.9), 3) for event in events}
    )
    probtree = ProbTree(tree, distribution, {})
    for node in tree.nodes():
        if node == tree.root:
            continue
        if events and rng.random() < condition_probability:
            condition = random_condition(events, seed=rng, max_literals=max_literals)
            if not condition.is_true():
                probtree.set_condition(node, condition)
    return probtree


__all__ = ["random_condition", "random_probtree"]
