"""Workload generators for tests, examples and benchmarks.

* :mod:`repro.workloads.random_trees` — random data trees of configurable
  shape;
* :mod:`repro.workloads.random_probtrees` — random prob-trees (random tree +
  random conditions over a configurable event pool);
* :mod:`repro.workloads.random_queries` — tree-pattern queries sampled from a
  tree so they are guaranteed to match, plus random updates;
* :mod:`repro.workloads.constructions` — the worst-case families used in the
  paper's proofs (Figure 1, Theorem 3, Theorem 4, Theorem 5);
* :mod:`repro.workloads.scenarios` — a synthetic "hidden web" information
  extraction scenario reproducing the paper's motivating use case.
"""

from repro.workloads.random_trees import random_datatree
from repro.workloads.random_probtrees import random_probtree, random_condition
from repro.workloads.random_queries import (
    random_matching_pattern,
    random_insertion,
    random_deletion,
    random_update,
)
from repro.workloads.constructions import (
    figure1_probtree,
    theorem3_probtree,
    theorem3_deletion,
    wide_independent_probtree,
)
from repro.workloads.scenarios import HiddenWebScenario, ExtractionEvent

__all__ = [
    "random_datatree",
    "random_probtree",
    "random_condition",
    "random_matching_pattern",
    "random_insertion",
    "random_deletion",
    "random_update",
    "figure1_probtree",
    "theorem3_probtree",
    "theorem3_deletion",
    "wide_independent_probtree",
    "HiddenWebScenario",
    "ExtractionEvent",
]
