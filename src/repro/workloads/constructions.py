"""The concrete constructions appearing in the paper.

* :func:`figure1_probtree` — the running example of Figures 1 and 2;
* :func:`theorem3_probtree` / :func:`theorem3_deletion` — the family showing
  deletions may force exponential prob-trees, together with the deletion
  ``d₀`` ("if the root has a C-child, delete all B-children of the root");
* :func:`wide_independent_probtree` — a root with ``n`` independent optional
  children, the factorizable family driving the E1 representation benchmark
  (its explicit PW set has ``2ⁿ`` worlds while the prob-tree stays linear);
* :func:`entangled_cnf_ir` — an adversarial event formula whose clauses
  couple every event with distant neighbours, defeating the exact engine's
  independent-component decomposition (the budgeted-pricing / sampling
  workload).

The Theorem 4 and Theorem 5 constructions live next to their algorithms
(:mod:`repro.threshold.constructions`, :mod:`repro.dtd.reductions`).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition, Literal
from repro.queries.treepattern import TreePattern
from repro.trees.datatree import DataTree
from repro.updates.operations import Deletion, ProbabilisticUpdate


def figure1_probtree() -> ProbTree:
    """The prob-tree of Figure 1: A with B[w1, ¬w2] and C[w2]/D children.

    Its possible-world semantics is the PW set of Figure 2.
    """
    tree = DataTree("A")
    node_b = tree.add_child(tree.root, "B")
    node_c = tree.add_child(tree.root, "C")
    tree.add_child(node_c, "D")
    distribution = ProbabilityDistribution({"w1": 0.8, "w2": 0.7})
    probtree = ProbTree(tree, distribution, {})
    probtree.set_condition(node_b, Condition.of("w1", "not w2"))
    probtree.set_condition(node_c, Condition.of("w2"))
    return probtree


def theorem3_probtree(n: int, probability: float = 0.5) -> ProbTree:
    """The Theorem 3 prob-tree: root A, one B child, and n C children.

    Each ``C`` child is conditioned by the conjunction ``w⁽⁰⁾ₖ ∧ w⁽¹⁾ₖ`` of
    two private events, so the tree has ``n + 2`` nodes and ``2n`` event
    variables, each appearing exactly once.
    """
    if n < 1:
        raise ValueError("theorem3_probtree needs n >= 1")
    tree = DataTree("A")
    tree.add_child(tree.root, "B")
    conditions = {}
    probabilities = {}
    for k in range(1, n + 1):
        low, high = f"w{k}_0", f"w{k}_1"
        probabilities[low] = probability
        probabilities[high] = probability
        node = tree.add_child(tree.root, "C")
        conditions[node] = Condition([Literal(low), Literal(high)])
    return ProbTree(tree, ProbabilityDistribution(probabilities), conditions)


def theorem3_deletion(confidence: float = 1.0) -> ProbabilisticUpdate:
    """The deletion ``d₀``: if the root has a C-child, delete all B-children.

    Expressed as a tree-pattern update: the pattern requires both a ``C``
    child and a ``B`` child of the root, and the deletion targets the ``B``
    pattern node — so it fires exactly on trees with at least one ``C`` child
    and removes every ``B`` child (one match per (C, B) pair).
    """
    pattern = TreePattern("A")
    pattern.add_child(pattern.root, "C")
    target = pattern.add_child(pattern.root, "B")
    return ProbabilisticUpdate(Deletion(pattern, target), confidence=confidence)


def wide_independent_probtree(
    n: int, probability: float = 0.5, distinct_labels: bool = True
) -> ProbTree:
    """A root with ``n`` independently-optional children (E1 workload).

    With *distinct_labels* the children are labeled ``C1 … Cn`` so all ``2ⁿ``
    worlds are pairwise non-isomorphic — the factorizable family on which the
    prob-tree encoding is exponentially more concise than the explicit
    possible-world set.
    """
    if n < 0:
        raise ValueError("wide_independent_probtree needs n >= 0")
    tree = DataTree("A")
    conditions = {}
    probabilities = {}
    for index in range(1, n + 1):
        event = f"w{index}"
        probabilities[event] = probability
        label = f"C{index}" if distinct_labels else "C"
        node = tree.add_child(tree.root, label)
        conditions[node] = Condition([Literal(event)])
    return ProbTree(tree, ProbabilityDistribution(probabilities), conditions)


def entangled_cnf_ir(
    pool, event_count: int = 48, seed: int = 7, probability: float = 0.5
) -> Tuple[int, Dict[str, float]]:
    """An adversarial interned CNF over *event_count* coupled events.

    One 3-literal clause per event ``i``, over events ``i``, ``i + 7`` and
    ``i + 23`` (mod *event_count*) with seeded polarities.  The cyclic strides
    tie every event to distant neighbours, so the conjunction has a single
    connected component: the exact engine's independent-component
    decomposition never applies and Shannon expansion degenerates to its
    exponential worst case.  This is the workload on which a work budget
    (typed :class:`~repro.utils.errors.BudgetExceededError`) or the sampling
    engine is required for bounded latency.

    Returns ``(node_id, distribution_map)`` for the given
    :class:`~repro.formulas.ir.FormulaPool`.
    """
    if event_count < 24:
        raise ValueError("entangled_cnf_ir needs event_count >= 24")
    rng = random.Random(seed)
    events = [f"w{index}" for index in range(event_count)]
    clauses = []
    for index in range(event_count):
        literals = []
        for stride in (0, 7, 23):
            variable = pool.var(events[(index + stride) % event_count])
            literals.append(pool.neg(variable) if rng.random() < 0.5 else variable)
        clauses.append(pool.disj(literals))
    node = pool.conj(clauses)
    return node, {event: probability for event in events}


__all__ = [
    "figure1_probtree",
    "theorem3_probtree",
    "theorem3_deletion",
    "wide_independent_probtree",
    "entangled_cnf_ir",
]
