"""Random data tree generation.

Every generator takes a seed (or an existing ``random.Random``) so workloads
are reproducible.  The default shape is a uniform random attachment tree:
each new node picks its parent uniformly among the existing nodes, which
yields realistic mixed fan-out; ``max_children`` and ``max_depth`` constrain
the shape for DTD-oriented workloads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.trees.datatree import DataTree
from repro.utils.seeding import RngLike, make_rng

DEFAULT_LABELS: Sequence[str] = ("A", "B", "C", "D", "E")


def random_datatree(
    node_count: int,
    labels: Sequence[str] = DEFAULT_LABELS,
    seed: RngLike = None,
    root_label: Optional[str] = None,
    max_children: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> DataTree:
    """Generate a random data tree with exactly *node_count* nodes.

    Args:
        node_count: total number of nodes (must be ≥ 1).
        labels: label alphabet sampled uniformly.
        seed: RNG seed or instance.
        root_label: fixed root label (random when omitted).
        max_children: optional cap on the fan-out of every node.
        max_depth: optional cap on the depth of every node.
    """
    if node_count < 1:
        raise ValueError("a data tree needs at least one node")
    rng = make_rng(seed)
    tree = DataTree(root_label if root_label is not None else rng.choice(list(labels)))
    candidates: List[int] = [tree.root]
    depths = {tree.root: 0}
    while tree.node_count() < node_count:
        if not candidates:
            raise ValueError(
                "constraints too tight: no node can accept further children"
            )
        parent = rng.choice(candidates)
        node = tree.add_child(parent, rng.choice(list(labels)))
        depths[node] = depths[parent] + 1
        if max_depth is None or depths[node] < max_depth:
            candidates.append(node)
        if max_children is not None and len(tree.children(parent)) >= max_children:
            candidates.remove(parent)
    return tree


def chain_datatree(labels: Sequence[str]) -> DataTree:
    """A root-to-leaf chain with the given labels (depth benchmark helper)."""
    if not labels:
        raise ValueError("chain_datatree needs at least one label")
    tree = DataTree(labels[0])
    current = tree.root
    for label in labels[1:]:
        current = tree.add_child(current, label)
    return tree


def star_datatree(root_label: str, child_label: str, fanout: int) -> DataTree:
    """A root with *fanout* identical children (width benchmark helper)."""
    tree = DataTree(root_label)
    for _ in range(fanout):
        tree.add_child(tree.root, child_label)
    return tree


__all__ = ["DEFAULT_LABELS", "random_datatree", "chain_datatree", "star_datatree"]
