"""Random tree-pattern queries and random probabilistic updates.

Queries are sampled *from* a target tree so that they are guaranteed to have
at least one match: a random node is chosen, the root-to-node path becomes a
chain of pattern steps (each step kept as an exact label or generalized to a
wildcard / descendant edge with some probability), and optionally a sibling
branch is added.  Updates wrap such queries into insertions or deletions
with a random confidence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.queries.treepattern import (
    EDGE_CHILD,
    EDGE_DESCENDANT,
    WILDCARD,
    TreePattern,
)
from repro.trees.datatree import DataTree, NodeId
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.utils.seeding import RngLike, make_rng
from repro.workloads.random_trees import DEFAULT_LABELS, random_datatree


def random_matching_pattern(
    tree: DataTree,
    seed: RngLike = None,
    wildcard_probability: float = 0.2,
    descendant_probability: float = 0.2,
    branch_probability: float = 0.3,
) -> Tuple[TreePattern, int]:
    """A random tree pattern guaranteed to match *tree*.

    Returns the pattern together with the identifier of its "focus" pattern
    node (the last node of the sampled path), which updates use as their
    target ``n``.
    """
    rng = make_rng(seed)
    nodes = list(tree.nodes())
    target = rng.choice(nodes)
    path: List[NodeId] = list(tree.ancestors(target, include_self=True))
    path.reverse()  # root first

    pattern = TreePattern(tree.root_label)
    current = pattern.root
    for node in path[1:]:
        label = tree.label(node)
        if rng.random() < wildcard_probability:
            label = WILDCARD
        edge = (
            EDGE_DESCENDANT
            if rng.random() < descendant_probability
            else EDGE_CHILD
        )
        current = pattern.add_child(current, label, edge=edge)
    focus = current

    # Optionally require an existing sibling branch so multi-node patterns
    # (and hence multi-condition answers) appear in the workload.
    if rng.random() < branch_probability:
        parent_of_target = tree.parent(target)
        if parent_of_target is not None:
            siblings = [
                child
                for child in tree.children(parent_of_target)
                if child != target
            ]
            if siblings:
                sibling = rng.choice(siblings)
                parent_pattern_node = pattern.root if len(path) == 1 else _parent_of(pattern, focus)
                pattern.add_child(parent_pattern_node, tree.label(sibling))
    return pattern, focus


def _parent_of(pattern: TreePattern, node: int) -> int:
    for candidate in range(pattern.node_count()):
        if node in pattern.pattern_children(candidate):
            return candidate
    return pattern.root


def random_insertion(
    tree: DataTree,
    seed: RngLike = None,
    subtree_size: int = 3,
    labels: Sequence[str] = DEFAULT_LABELS,
    confidence: Optional[float] = None,
) -> ProbabilisticUpdate:
    """A random probabilistic insertion matching *tree*."""
    rng = make_rng(seed)
    pattern, focus = random_matching_pattern(tree, seed=rng)
    subtree = random_datatree(subtree_size, labels=labels, seed=rng)
    chosen_confidence = (
        confidence if confidence is not None else round(rng.uniform(0.3, 1.0), 2)
    )
    return ProbabilisticUpdate(
        Insertion(pattern, focus, subtree), confidence=chosen_confidence
    )


def random_deletion(
    tree: DataTree,
    seed: RngLike = None,
    confidence: Optional[float] = None,
) -> ProbabilisticUpdate:
    """A random probabilistic deletion matching *tree* (never targets the root)."""
    rng = make_rng(seed)
    for _ in range(64):
        pattern, focus = random_matching_pattern(tree, seed=rng)
        matches = pattern.matches(tree)
        targets = {match.target(focus) for match in matches}
        if tree.root not in targets:
            chosen_confidence = (
                confidence
                if confidence is not None
                else round(rng.uniform(0.3, 1.0), 2)
            )
            return ProbabilisticUpdate(
                Deletion(pattern, focus), confidence=chosen_confidence
            )
    raise ValueError("could not sample a deletion avoiding the root")


def random_update(
    tree: DataTree,
    seed: RngLike = None,
    deletion_probability: float = 0.4,
) -> ProbabilisticUpdate:
    """A random probabilistic update (insertion or deletion)."""
    rng = make_rng(seed)
    if tree.node_count() > 1 and rng.random() < deletion_probability:
        return random_deletion(tree, seed=rng)
    return random_insertion(tree, seed=rng)


__all__ = [
    "random_matching_pattern",
    "random_insertion",
    "random_deletion",
    "random_update",
]
