"""Size analysis utilities for Proposition 1 and the representation benchmark.

* :mod:`repro.analysis.counting` — counting unordered rooted trees (Otter's
  asymptotics, used by the Proposition 1 lower bound);
* :mod:`repro.analysis.sizes` — size measures for prob-trees and PW sets and
  the representation-compactness comparison of E1.
"""

from repro.analysis.counting import (
    rooted_tree_counts,
    rooted_trees_up_to,
    proposition1_lower_bound_bits,
)
from repro.analysis.sizes import (
    probtree_size,
    pwset_size,
    RepresentationComparison,
    compare_representations,
)

__all__ = [
    "rooted_tree_counts",
    "rooted_trees_up_to",
    "proposition1_lower_bound_bits",
    "probtree_size",
    "pwset_size",
    "RepresentationComparison",
    "compare_representations",
]
