"""Size measures for prob-trees and possible-world sets (E1).

The paper's compactness story has two sides:

* prob-trees can be exponentially more concise than the extensive
  possible-world description (the factorization benefit motivating the
  model);
* by Proposition 1, *no* model as expressive as PW sets can always stay
  polynomially small.

:func:`compare_representations` measures both sides on a given prob-tree:
its own size, the size of its explicit (normalized) PW set, and the size of
the prob-tree reconstructed from that PW set with the generic one-event-per-
world construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.pw.convert import pwset_to_probtree
from repro.pw.pwset import PWSet


def probtree_size(probtree: ProbTree) -> int:
    """``|T|``: number of nodes plus number of literals."""
    return probtree.size()


def pwset_size(pwset: PWSet) -> int:
    """Size of the extensive description: total node count over all worlds."""
    return pwset.description_size()


@dataclass(frozen=True)
class RepresentationComparison:
    """Sizes of the three representations of the same uncertain document."""

    probtree_size: int
    world_count: int
    pwset_size: int
    reencoded_probtree_size: int

    @property
    def compression_ratio(self) -> float:
        """How much larger the explicit PW set is than the prob-tree."""
        return self.pwset_size / max(1, self.probtree_size)


def compare_representations(probtree: ProbTree) -> RepresentationComparison:
    """Measure prob-tree vs explicit-PW-set vs re-encoded prob-tree sizes."""
    worlds = possible_worlds(probtree, restrict_to_used=True, normalize=True)
    reencoded = pwset_to_probtree(worlds)
    return RepresentationComparison(
        probtree_size=probtree_size(probtree),
        world_count=len(worlds),
        pwset_size=pwset_size(worlds),
        reencoded_probtree_size=probtree_size(reencoded),
    )


__all__ = [
    "probtree_size",
    "pwset_size",
    "RepresentationComparison",
    "compare_representations",
]
