"""Counting unordered rooted trees — the combinatorics behind Proposition 1.

Proposition 1 lower-bounds the average representation size of any model as
expressive as possible-world sets by counting: the number of *sets* of
unordered unlabeled rooted trees with at most ``n`` nodes is doubly
exponential in ``n``, because the number ``a_n`` of unordered unlabeled
rooted trees with exactly ``n`` nodes grows as ``α^n`` for ``α > 2`` (Otter,
1948).  The exact values of ``a_n`` (OEIS A000081) are computed here with the
classical Euler-transform recurrence; the benchmark E1 reports the implied
``Ω(2^n)``-bit lower bound next to the measured prob-tree sizes.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List


@lru_cache(maxsize=None)
def rooted_tree_counts(max_nodes: int) -> tuple:
    """The sequence ``a_1 … a_max_nodes`` of rooted unlabeled tree counts.

    ``a_1 = 1, a_2 = 1, a_3 = 2, a_4 = 4, a_5 = 9, …`` (OEIS A000081),
    computed with the recurrence

    ``a_{n+1} = (1/n) · Σ_{k=1..n} ( Σ_{d | k} d·a_d ) · a_{n−k+1}``.
    """
    if max_nodes < 1:
        return ()
    a: List[int] = [0, 1]  # a[0] unused, a[1] = 1
    for n in range(1, max_nodes):
        total = 0
        for k in range(1, n + 1):
            divisor_sum = sum(d * a[d] for d in range(1, k + 1) if k % d == 0)
            total += divisor_sum * a[n - k + 1]
        a.append(total // n)
    return tuple(a[1:])


def rooted_trees_up_to(max_nodes: int) -> int:
    """Number of rooted unlabeled trees with at most *max_nodes* nodes."""
    return sum(rooted_tree_counts(max_nodes))


def proposition1_lower_bound_bits(max_nodes: int) -> float:
    """The Proposition 1 average-size lower bound, in bits.

    There are at least ``2^{Σ a_i}`` sets of trees with at most *max_nodes*
    nodes, so any injective encoding needs at least ``Σ a_i`` bits on
    average; the proposition states this is ``Ω(2^n)``.
    """
    return float(rooted_trees_up_to(max_nodes))


def otter_growth_estimate(max_nodes: int) -> float:
    """Empirical estimate of Otter's growth constant ``α ≈ 2.9558``.

    Returns ``a_n / a_{n−1}`` for the largest available ``n``; used by tests
    to confirm ``α > 2``, the only property Proposition 1 needs.
    """
    counts = rooted_tree_counts(max_nodes)
    if len(counts) < 2:
        raise ValueError("need at least two terms to estimate the growth rate")
    return counts[-1] / counts[-2]


__all__ = [
    "rooted_tree_counts",
    "rooted_trees_up_to",
    "proposition1_lower_bound_bits",
    "otter_growth_estimate",
]
