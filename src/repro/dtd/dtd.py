"""The DTD model of Definition 12.

Since the data model is unordered, the paper strips DTDs down to cardinality
constraints: for every label ``n`` in the DTD's domain, ``D(n)`` lists
triples ``(n', p, q)`` bounding between ``p`` and ``q`` the number of
children labeled ``n'`` a node labeled ``n`` may have.  Labels not listed for
``n`` are implicitly bounded by ``(0, 0)`` — i.e. forbidden — while nodes
whose own label is outside the DTD's domain are unconstrained.

``q = None`` stands for ``+∞`` (the paper's ``J1; +∞K`` upper bounds).
Convenience constructors mirror the usual DTD repetition operators: ``?``
(0–1), ``*`` (0–∞), ``+`` (1–∞) and exact counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.utils.errors import DTDError


@dataclass(frozen=True)
class ChildConstraint:
    """Bounds on the number of children with a given label.

    ``maximum is None`` means unbounded (``+∞``).
    """

    label: str
    minimum: int = 0
    maximum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise DTDError(f"minimum occurrence must be non-negative, got {self.minimum}")
        if self.maximum is not None and self.maximum < self.minimum:
            raise DTDError(
                f"maximum occurrence {self.maximum} is below minimum {self.minimum}"
            )

    def allows(self, count: int) -> bool:
        if count < self.minimum:
            return False
        if self.maximum is not None and count > self.maximum:
            return False
        return True

    @staticmethod
    def optional(label: str) -> "ChildConstraint":
        """The ``?`` operator: zero or one."""
        return ChildConstraint(label, 0, 1)

    @staticmethod
    def any_number(label: str) -> "ChildConstraint":
        """The ``*`` operator: zero or more."""
        return ChildConstraint(label, 0, None)

    @staticmethod
    def at_least_one(label: str) -> "ChildConstraint":
        """The ``+`` operator: one or more."""
        return ChildConstraint(label, 1, None)

    @staticmethod
    def exactly(label: str, count: int) -> "ChildConstraint":
        return ChildConstraint(label, count, count)

    @staticmethod
    def forbidden(label: str) -> "ChildConstraint":
        return ChildConstraint(label, 0, 0)


class DTD:
    """A Document Type Definition over unordered trees (Definition 12)."""

    __slots__ = ("_rules",)

    def __init__(
        self, rules: Mapping[str, Iterable[ChildConstraint]] | None = None
    ) -> None:
        self._rules: Dict[str, Dict[str, ChildConstraint]] = {}
        if rules:
            for parent_label, constraints in rules.items():
                for constraint in constraints:
                    self.add_constraint(parent_label, constraint)

    def add_constraint(self, parent_label: str, constraint: ChildConstraint) -> None:
        """Register the constraint for children of nodes labeled *parent_label*.

        Definition 12 requires at most one triple per (parent, child) label
        pair; re-adding an identical constraint is a no-op, a conflicting one
        raises :class:`DTDError`.
        """
        bucket = self._rules.setdefault(str(parent_label), {})
        existing = bucket.get(constraint.label)
        if existing is not None and existing != constraint:
            raise DTDError(
                f"conflicting constraints for children {constraint.label!r} of "
                f"{parent_label!r}: {existing} vs {constraint}"
            )
        bucket[constraint.label] = constraint

    # -- inspection --------------------------------------------------------

    def domain(self) -> frozenset:
        """The set ``N'`` of parent labels the DTD constrains."""
        return frozenset(self._rules)

    def constrains(self, parent_label: str) -> bool:
        return parent_label in self._rules

    def constraints_for(self, parent_label: str) -> Tuple[ChildConstraint, ...]:
        return tuple(self._rules.get(parent_label, {}).values())

    def bounds(self, parent_label: str, child_label: str) -> Tuple[int, Optional[int]]:
        """``(D⁻(n)(n'), D⁺(n)(n'))`` — ``(0, 0)`` for unlisted child labels.

        Only meaningful when *parent_label* is in the DTD's domain.
        """
        constraint = self._rules.get(parent_label, {}).get(child_label)
        if constraint is None:
            return (0, 0)
        return (constraint.minimum, constraint.maximum)

    def size(self) -> int:
        """Number of constraints (the DTDs of Theorem 5 are constant-size)."""
        return sum(len(bucket) for bucket in self._rules.values())

    def fingerprint(self) -> Tuple[Tuple[str, str, int, Optional[int]], ...]:
        """A hashable, content-based identity of the rule set.

        Two DTDs with equal fingerprints constrain identically; the
        execution context keys its compiled-validity-formula cache on this
        (a DTD is mutable through :meth:`add_constraint`, so object identity
        would go stale).  Linear in :meth:`size`, which Theorem 5 keeps
        constant-ish in practice.
        """
        return tuple(
            sorted(
                (parent, constraint.label, constraint.minimum, constraint.maximum)
                for parent, bucket in self._rules.items()
                for constraint in bucket.values()
            )
        )

    def __repr__(self) -> str:
        return f"DTD(domain={sorted(self._rules)}, constraints={self.size()})"


__all__ = ["DTD", "ChildConstraint"]
