"""Validation of data trees against DTDs (Definition 13).

A data tree satisfies a DTD when, for every node whose label is in the DTD's
domain, the number of children with each label lies within the declared
bounds — with unlisted child labels implicitly bounded by ``(0, 0)``.  Nodes
whose own label is outside the domain are unconstrained.  Validation is
linear in the size of the tree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.dtd.dtd import DTD
from repro.trees.datatree import DataTree, NodeId


@dataclass(frozen=True)
class Violation:
    """One violated cardinality constraint, for error reporting."""

    node: NodeId
    parent_label: str
    child_label: str
    count: int
    minimum: int
    maximum: Optional[int]

    def __str__(self) -> str:
        upper = "inf" if self.maximum is None else str(self.maximum)
        return (
            f"node {self.node} ({self.parent_label!r}) has {self.count} "
            f"{self.child_label!r}-children, allowed [{self.minimum}; {upper}]"
        )


def violations(dtd: DTD, tree: DataTree) -> List[Violation]:
    """All constraint violations of *tree* against *dtd* (empty when valid)."""
    found: List[Violation] = []
    for node in tree.nodes():
        label = tree.label(node)
        if not dtd.constrains(label):
            continue
        counts = Counter(tree.label(child) for child in tree.children(node))
        # Check declared constraints (including unsatisfied minimums for
        # labels with zero occurrences).
        checked = set()
        for constraint in dtd.constraints_for(label):
            checked.add(constraint.label)
            count = counts.get(constraint.label, 0)
            if not constraint.allows(count):
                found.append(
                    Violation(
                        node,
                        label,
                        constraint.label,
                        count,
                        constraint.minimum,
                        constraint.maximum,
                    )
                )
        # Unlisted child labels are forbidden (bounds (0, 0)).
        for child_label, count in counts.items():
            if child_label not in checked and count > 0:
                found.append(Violation(node, label, child_label, count, 0, 0))
    return found


def validates(dtd: DTD, tree: DataTree) -> bool:
    """Whether ``t ⊨ D`` (Definition 13)."""
    for node in tree.nodes():
        label = tree.label(node)
        if not dtd.constrains(label):
            continue
        counts = Counter(tree.label(child) for child in tree.children(node))
        checked = set()
        for constraint in dtd.constraints_for(label):
            checked.add(constraint.label)
            if not constraint.allows(counts.get(constraint.label, 0)):
                return False
        for child_label, count in counts.items():
            if child_label not in checked and count > 0:
                return False
    return True


__all__ = ["Violation", "violations", "validates"]
