"""DTD satisfiability, validity and restriction over prob-trees (Section 4).

Given a prob-tree ``T`` and a DTD ``D`` the paper asks three questions:

1. **Satisfiability** — does some possible world satisfy ``D``?
   NP-complete in the number of event variables (Theorem 5.1); the decision
   procedure here guesses-by-enumeration over the worlds spanned by the used
   events (linear work per world).
2. **Validity** — do *all* possible worlds satisfy ``D``?
   co-NP-complete (Theorem 5.2); decided by searching for a violating world.
3. **Restriction** — build a prob-tree whose semantics is (``∼sub``) the set
   of valid worlds.  The output may be exponentially large (Theorem 5.3);
   the construction here materializes the valid worlds and re-encodes them
   with :func:`repro.pw.convert.pwset_to_probtree`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.context import ExecutionContext, resolve_context
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD
from repro.dtd.validation import validates
from repro.formulas.boolean import (
    BoolExpr,
    FalseExpr,
    TrueExpr,
    conjunction,
    disjunction,
    from_condition,
)
from repro.formulas.compute import negation
from repro.formulas.ir import FALSE_ID, TRUE_ID, FormulaPool
from repro.formulas.literals import all_worlds
from repro.pw.convert import pwset_to_probtree
from repro.pw.pwset import PWSet
from repro.trees.datatree import NodeId


def satisfying_world(probtree: ProbTree, dtd: DTD) -> Optional[FrozenSet[str]]:
    """A world (set of true events) whose value satisfies the DTD, if any.

    This is the NP certificate of Theorem 5.1: checking a guessed world is
    linear, finding one by enumeration is exponential in the number of used
    events.
    """
    for world in all_worlds(sorted(probtree.used_events())):
        if validates(dtd, probtree.value_in_world(world)):
            return frozenset(world)
    return None


def violating_world(probtree: ProbTree, dtd: DTD) -> Optional[FrozenSet[str]]:
    """A world whose value violates the DTD, if any (co-NP certificate)."""
    for world in all_worlds(sorted(probtree.used_events())):
        if not validates(dtd, probtree.value_in_world(world)):
            return frozenset(world)
    return None


def dtd_satisfiable(
    probtree: ProbTree,
    dtd: DTD,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """DTD Satisfiability: ``{(t, p) ∈ ⟦T⟧ | t ⊨ D} ≠ ∅``.

    ``engine="formula"`` (default) decides by an exact SAT check on the
    compiled validity formula — no floating point, no world enumeration;
    the formula is interned into the context's shared pool, whose
    distribution-independent SAT cache makes repeated (or
    subformula-sharing) checks O(1).  ``engine="enumerate"`` searches for a
    satisfying world explicitly (use :func:`satisfying_world` directly when
    the certificate itself is wanted).
    """
    ctx = resolve_context(context, engine=engine)
    if ctx.resolve_engine() == "enumerate":
        return satisfying_world(probtree, dtd) is not None
    # Compile first, then read the pool: validity_formula_for may restart
    # the formula layer (pool bound), and the id must be asked of the pool
    # it was interned into.
    node = ctx.validity_formula_for(probtree, dtd)
    return ctx.formula_pool.satisfiable(node)


def dtd_valid(
    probtree: ProbTree,
    dtd: DTD,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """DTD Validity: every possible world satisfies ``D``.

    ``engine="formula"`` (default) checks that the compiled validity formula
    is a tautology (an interned SAT check on its negation, cached pool-wide);
    ``engine="enumerate"`` searches for a violating world.
    """
    ctx = resolve_context(context, engine=engine)
    if ctx.resolve_engine() == "enumerate":
        return violating_world(probtree, dtd) is None
    # Compile-then-read ordering, as in dtd_satisfiable.
    node = ctx.validity_formula_for(probtree, dtd)
    return ctx.formula_pool.tautology(node)


def dtd_restriction_pwset(probtree: ProbTree, dtd: DTD) -> PWSet:
    """The sub-PW-set of valid worlds ``{(t, p) ∈ ⟦T⟧ | t ⊨ D}``."""
    worlds = possible_worlds(probtree, restrict_to_used=True, normalize=True)
    return worlds.filter(lambda tree, _probability: validates(dtd, tree))


def dtd_restriction_probtree(
    probtree: ProbTree, dtd: DTD, event_prefix: str = "dtd"
) -> ProbTree:
    """DTD Restriction: a prob-tree ``T'`` with the valid worlds as semantics.

    Following Definition 3, the missing probability mass (that of invalid
    worlds) is carried by a root-only world, so that
    ``{(t, p) ∈ ⟦T⟧ | t ⊨ D} ∼sub ⟦T'⟧``.  The construction goes through the
    explicit possible-world set, which Theorem 5.3 shows cannot be avoided in
    the worst case.
    """
    restricted = dtd_restriction_pwset(probtree, dtd)
    completed = restricted.completed(probtree.tree.root_label)
    return pwset_to_probtree(completed, event_prefix=event_prefix)


class _FormulaOps:
    """The algebra the validity compiler is generic over.

    Two instantiations exist: :data:`_EXPR_OPS` building
    :class:`~repro.formulas.boolean.BoolExpr` trees (the public
    :func:`dtd_validity_formula`, kept as the differential oracle) and
    :func:`_ir_ops` emitting interned node ids of a
    :class:`~repro.formulas.ir.FormulaPool`
    (:func:`dtd_validity_formula_ir`, what the engines consume).
    """

    __slots__ = ("true", "false", "neg", "conj", "disj", "condition")

    def __init__(self, true, false, neg, conj, disj, condition) -> None:
        self.true = true
        self.false = false
        self.neg = neg          # one formula -> its negation
        self.conj = conj        # iterable of formulas -> conjunction
        self.disj = disj        # iterable of formulas -> disjunction
        self.condition = condition  # Condition -> formula


_EXPR_OPS = _FormulaOps(
    true=TrueExpr(),
    false=FalseExpr(),
    neg=negation,
    conj=lambda operands: conjunction(*operands),
    disj=lambda operands: disjunction(*operands),
    condition=from_condition,
)


def _ir_ops(pool: FormulaPool) -> _FormulaOps:
    return _FormulaOps(
        true=TRUE_ID,
        false=FALSE_ID,
        neg=pool.neg,
        conj=pool.conj,
        disj=pool.disj,
        condition=pool.condition,
    )


def _count_formula(ops: _FormulaOps, guards: Sequence, minimum: int, maximum: Optional[int]):
    """Formula true iff the number of satisfied *guards* lies in ``[minimum, maximum]``.

    ``maximum is None`` means unbounded.  Common cardinalities get linear (or
    quadratic) encodings; the general case is a memoized interval split whose
    in-memory representation is a DAG of size ``O(k · minimum)``.
    """
    k = len(guards)
    if minimum > k:
        return ops.false
    if minimum <= 0 and (maximum is None or maximum >= k):
        return ops.true
    if maximum is None:
        if minimum == 1:
            return ops.disj(guards)
        if minimum == k:
            return ops.conj(guards)
    elif minimum == 0:
        if maximum == 0:
            return ops.conj([ops.neg(guard) for guard in guards])
        if maximum == k - 1:
            return ops.disj([ops.neg(guard) for guard in guards])
    # Bottom-up interval DP (iterative: k can be in the thousands, far past
    # the recursion limit).  A state is (index, low); the upper bound tracks
    # the lower one (high = low + span) so it needs no dimension of its own.
    span = None if maximum is None else maximum - minimum

    def terminal(index: int, low: int):
        remaining = k - index
        if low > remaining or (span is not None and low + span < 0):
            return ops.false
        if low <= 0 and (span is None or low + span >= remaining):
            return ops.true
        return None

    next_row: Dict[int, object] = {}
    for index in range(k, -1, -1):
        row: Dict[int, object] = {}
        for low in range(minimum - index, minimum + 1):
            result = terminal(index, low)
            if result is None:
                guard = guards[index]
                result = ops.disj(
                    [
                        ops.conj([guard, next_row[low - 1]]),
                        ops.conj([ops.neg(guard), next_row[low]]),
                    ]
                )
            row[low] = result
        next_row = row
    return next_row[minimum]


def _ir_presence_map(pool: FormulaPool, probtree: ProbTree) -> Dict[NodeId, int]:
    """Interned presence formulas (accumulated conditions) for every node.

    One top-down pass conjoining each node's own interned condition onto its
    parent's presence id.  Conditions are flat literal conjunctions, so the
    id-level conjunction flattens to exactly the interned form of
    ``from_condition(accumulated_condition(node))`` — but a warm recompile
    over an unchanged prob-tree is all dictionary probes, with no
    per-ancestor :class:`Condition` rebuilds.
    """
    tree = probtree.tree
    presence: Dict[NodeId, int] = {tree.root: TRUE_ID}
    stack = [tree.root]
    while stack:
        node = stack.pop()
        base = presence[node]
        for child in tree.children(node):
            own = probtree.condition(child)
            if own.is_true():
                presence[child] = base
            else:
                presence[child] = pool.conj([base, pool.condition(own)])
            stack.append(child)
    return presence


def _validity_formula(ops: _FormulaOps, probtree: ProbTree, dtd: DTD, presence_of):
    """The generic validity compiler; see :func:`dtd_validity_formula`.

    *presence_of* maps a tree node to the formula of its accumulated
    condition under *ops* (the two public wrappers choose the per-node
    recomputation or the incremental interned map).
    """
    tree = probtree.tree
    clauses: List[object] = []
    for node in tree.nodes():
        label = tree.label(node)
        if not dtd.constrains(label):
            continue
        by_label: Dict[str, List[NodeId]] = {}
        for child in tree.children(node):
            by_label.setdefault(tree.label(child), []).append(child)
        requirements: List[object] = []
        checked = set()
        for constraint in dtd.constraints_for(label):
            checked.add(constraint.label)
            guards = [
                ops.condition(probtree.condition(child))
                for child in by_label.get(constraint.label, ())
            ]
            requirements.append(
                _count_formula(ops, guards, constraint.minimum, constraint.maximum)
            )
        for child_label, children in by_label.items():
            if child_label not in checked:
                requirements.extend(
                    ops.neg(ops.condition(probtree.condition(child)))
                    for child in children
                )
        requirement = ops.conj(requirements)
        if requirement == ops.true:
            continue
        presence = presence_of(node)
        clauses.append(ops.disj([ops.neg(presence), requirement]))
    return ops.conj(clauses)


def dtd_validity_formula(probtree: ProbTree, dtd: DTD) -> BoolExpr:
    """The event formula holding in world ``V`` exactly when ``V(T) ⊨ D``.

    For every node ``n`` whose label the DTD constrains, the formula requires
    *if n is present* (its accumulated condition holds) *then* the surviving
    children of ``n`` — child ``c`` survives, given ``n`` does, iff ``γ(c)``
    holds — satisfy the cardinality bounds of Definition 12, with unlisted
    child labels forbidden.  The construction is polynomial in ``|T|`` for
    the usual ``? * + !`` cardinalities; evaluating the formula is the
    engine's job.

    This variant builds a :class:`BoolExpr` tree and is kept as the
    pre-refactor differential oracle; the engines consume
    :func:`dtd_validity_formula_ir`, which emits interned nodes of a
    context's formula pool.
    """
    return _validity_formula(
        _EXPR_OPS,
        probtree,
        dtd,
        lambda node: from_condition(probtree.accumulated_condition(node)),
    )


def dtd_validity_formula_ir(probtree: ProbTree, dtd: DTD, pool: FormulaPool) -> int:
    """:func:`dtd_validity_formula` compiled straight into *pool*'s DAG.

    Returns the interned node id.  Because every construction step goes
    through the pool — including the accumulated-condition presence
    formulas, conjoined incrementally at the id level
    (:func:`_ir_presence_map`) — a recompilation over an unchanged prob-tree
    resolves to intern-table hits and lands on the *same* id; the pricing
    and SAT caches then answer in O(1) with no structural hashing.
    """
    presence = _ir_presence_map(pool, probtree)
    return _validity_formula(_ir_ops(pool), probtree, dtd, presence.__getitem__)


def dtd_satisfaction_probability(
    probtree: ProbTree,
    dtd: DTD,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> float:
    """Total probability of the worlds satisfying the DTD.

    Not one of the paper's three questions, but a natural companion quantity
    the warehouse facade exposes (probability that the current imprecise
    document is valid).  With ``engine="formula"`` (the default) the per-node
    validity formulas are compiled once and evaluated by Shannon expansion —
    no possible world is materialized, and the context's pricing policy may
    budget the expansion (typed
    :class:`~repro.utils.errors.BudgetExceededError` past ``max_expansions``
    instead of an unbounded blowup); ``engine="enumerate"`` keeps the
    original exhaustive computation as a reference oracle; ``"sample"`` /
    ``"auto-sample"`` estimate the validity formula by anytime Monte-Carlo.
    """
    ctx = resolve_context(context, engine=engine)
    mode = ctx.resolve_engine()
    if mode == "enumerate":
        return dtd_restriction_pwset(probtree, dtd).total_probability()
    # Compile first, then hand the id to the engine: validity_formula_for
    # may restart the formula layer (pool bound), and engine_for after it
    # sees the already-small pool — the (engine, id) pair stays consistent.
    node = ctx.validity_formula_for(probtree, dtd)
    return ctx.engine_for(probtree, mode).probability(node)


__all__ = [
    "satisfying_world",
    "violating_world",
    "dtd_satisfiable",
    "dtd_valid",
    "dtd_restriction_pwset",
    "dtd_restriction_probtree",
    "dtd_validity_formula",
    "dtd_validity_formula_ir",
    "dtd_satisfaction_probability",
]
