"""DTD satisfiability, validity and restriction over prob-trees (Section 4).

Given a prob-tree ``T`` and a DTD ``D`` the paper asks three questions:

1. **Satisfiability** — does some possible world satisfy ``D``?
   NP-complete in the number of event variables (Theorem 5.1); the decision
   procedure here guesses-by-enumeration over the worlds spanned by the used
   events (linear work per world).
2. **Validity** — do *all* possible worlds satisfy ``D``?
   co-NP-complete (Theorem 5.2); decided by searching for a violating world.
3. **Restriction** — build a prob-tree whose semantics is (``∼sub``) the set
   of valid worlds.  The output may be exponentially large (Theorem 5.3);
   the construction here materializes the valid worlds and re-encodes them
   with :func:`repro.pw.convert.pwset_to_probtree`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.context import ExecutionContext, resolve_context
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD
from repro.dtd.validation import validates
from repro.formulas.boolean import (
    BoolExpr,
    FalseExpr,
    TrueExpr,
    conjunction,
    disjunction,
    from_condition,
)
from repro.formulas.compute import negation, shannon_satisfiable, shannon_tautology
from repro.formulas.literals import all_worlds
from repro.pw.convert import pwset_to_probtree
from repro.pw.pwset import PWSet
from repro.trees.datatree import NodeId


def satisfying_world(probtree: ProbTree, dtd: DTD) -> Optional[FrozenSet[str]]:
    """A world (set of true events) whose value satisfies the DTD, if any.

    This is the NP certificate of Theorem 5.1: checking a guessed world is
    linear, finding one by enumeration is exponential in the number of used
    events.
    """
    for world in all_worlds(sorted(probtree.used_events())):
        if validates(dtd, probtree.value_in_world(world)):
            return frozenset(world)
    return None


def violating_world(probtree: ProbTree, dtd: DTD) -> Optional[FrozenSet[str]]:
    """A world whose value violates the DTD, if any (co-NP certificate)."""
    for world in all_worlds(sorted(probtree.used_events())):
        if not validates(dtd, probtree.value_in_world(world)):
            return frozenset(world)
    return None


def dtd_satisfiable(
    probtree: ProbTree,
    dtd: DTD,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """DTD Satisfiability: ``{(t, p) ∈ ⟦T⟧ | t ⊨ D} ≠ ∅``.

    ``engine="formula"`` (default) decides by an exact SAT check on the
    compiled validity formula — no floating point, no world enumeration;
    ``engine="enumerate"`` searches for a satisfying world explicitly (use
    :func:`satisfying_world` directly when the certificate itself is wanted).
    """
    ctx = resolve_context(context, engine=engine)
    if ctx.resolve_engine() == "enumerate":
        return satisfying_world(probtree, dtd) is not None
    return shannon_satisfiable(dtd_validity_formula(probtree, dtd))


def dtd_valid(
    probtree: ProbTree,
    dtd: DTD,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """DTD Validity: every possible world satisfies ``D``.

    ``engine="formula"`` (default) checks that the compiled validity formula
    is a tautology; ``engine="enumerate"`` searches for a violating world.
    """
    ctx = resolve_context(context, engine=engine)
    if ctx.resolve_engine() == "enumerate":
        return violating_world(probtree, dtd) is None
    return shannon_tautology(dtd_validity_formula(probtree, dtd))


def dtd_restriction_pwset(probtree: ProbTree, dtd: DTD) -> PWSet:
    """The sub-PW-set of valid worlds ``{(t, p) ∈ ⟦T⟧ | t ⊨ D}``."""
    worlds = possible_worlds(probtree, restrict_to_used=True, normalize=True)
    return worlds.filter(lambda tree, _probability: validates(dtd, tree))


def dtd_restriction_probtree(
    probtree: ProbTree, dtd: DTD, event_prefix: str = "dtd"
) -> ProbTree:
    """DTD Restriction: a prob-tree ``T'`` with the valid worlds as semantics.

    Following Definition 3, the missing probability mass (that of invalid
    worlds) is carried by a root-only world, so that
    ``{(t, p) ∈ ⟦T⟧ | t ⊨ D} ∼sub ⟦T'⟧``.  The construction goes through the
    explicit possible-world set, which Theorem 5.3 shows cannot be avoided in
    the worst case.
    """
    restricted = dtd_restriction_pwset(probtree, dtd)
    completed = restricted.completed(probtree.tree.root_label)
    return pwset_to_probtree(completed, event_prefix=event_prefix)


def _count_formula(
    guards: Sequence[BoolExpr], minimum: int, maximum: Optional[int]
) -> BoolExpr:
    """Formula true iff the number of satisfied *guards* lies in ``[minimum, maximum]``.

    ``maximum is None`` means unbounded.  Common cardinalities get linear (or
    quadratic) encodings; the general case is a memoized interval split whose
    in-memory representation is a DAG of size ``O(k · minimum)``.
    """
    k = len(guards)
    if minimum > k:
        return FalseExpr()
    if minimum <= 0 and (maximum is None or maximum >= k):
        return TrueExpr()
    if maximum is None:
        if minimum == 1:
            return disjunction(*guards)
        if minimum == k:
            return conjunction(*guards)
    elif minimum == 0:
        if maximum == 0:
            return conjunction(*(negation(guard) for guard in guards))
        if maximum == k - 1:
            return disjunction(*(negation(guard) for guard in guards))
    # Bottom-up interval DP (iterative: k can be in the thousands, far past
    # the recursion limit).  A state is (index, low); the upper bound tracks
    # the lower one (high = low + span) so it needs no dimension of its own.
    span = None if maximum is None else maximum - minimum

    def terminal(index: int, low: int) -> Optional[BoolExpr]:
        remaining = k - index
        if low > remaining or (span is not None and low + span < 0):
            return FalseExpr()
        if low <= 0 and (span is None or low + span >= remaining):
            return TrueExpr()
        return None

    next_row: Dict[int, BoolExpr] = {}
    for index in range(k, -1, -1):
        row: Dict[int, BoolExpr] = {}
        for low in range(minimum - index, minimum + 1):
            result = terminal(index, low)
            if result is None:
                guard = guards[index]
                result = disjunction(
                    conjunction(guard, next_row[low - 1]),
                    conjunction(negation(guard), next_row[low]),
                )
            row[low] = result
        next_row = row
    return next_row[minimum]


def dtd_validity_formula(probtree: ProbTree, dtd: DTD) -> BoolExpr:
    """The event formula holding in world ``V`` exactly when ``V(T) ⊨ D``.

    For every node ``n`` whose label the DTD constrains, the formula requires
    *if n is present* (its accumulated condition holds) *then* the surviving
    children of ``n`` — child ``c`` survives, given ``n`` does, iff ``γ(c)``
    holds — satisfy the cardinality bounds of Definition 12, with unlisted
    child labels forbidden.  The construction is polynomial in ``|T|`` for
    the usual ``? * + !`` cardinalities; evaluating the formula is the
    engine's job.
    """
    tree = probtree.tree
    clauses: List[BoolExpr] = []
    for node in tree.nodes():
        label = tree.label(node)
        if not dtd.constrains(label):
            continue
        by_label: Dict[str, List[NodeId]] = {}
        for child in tree.children(node):
            by_label.setdefault(tree.label(child), []).append(child)
        requirements: List[BoolExpr] = []
        checked = set()
        for constraint in dtd.constraints_for(label):
            checked.add(constraint.label)
            guards = [
                from_condition(probtree.condition(child))
                for child in by_label.get(constraint.label, ())
            ]
            requirements.append(
                _count_formula(guards, constraint.minimum, constraint.maximum)
            )
        for child_label, children in by_label.items():
            if child_label not in checked:
                requirements.extend(
                    negation(from_condition(probtree.condition(child)))
                    for child in children
                )
        requirement = conjunction(*requirements)
        if isinstance(requirement, TrueExpr):
            continue
        presence = from_condition(probtree.accumulated_condition(node))
        clauses.append(disjunction(negation(presence), requirement))
    return conjunction(*clauses)


def dtd_satisfaction_probability(
    probtree: ProbTree,
    dtd: DTD,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> float:
    """Total probability of the worlds satisfying the DTD.

    Not one of the paper's three questions, but a natural companion quantity
    the warehouse facade exposes (probability that the current imprecise
    document is valid).  With ``engine="formula"`` (the default) the per-node
    validity formulas are compiled once and evaluated by Shannon expansion —
    no possible world is materialized; ``engine="enumerate"`` keeps the
    original exhaustive computation as a reference oracle.
    """
    ctx = resolve_context(context, engine=engine)
    if ctx.resolve_engine() == "enumerate":
        return dtd_restriction_pwset(probtree, dtd).total_probability()
    return ctx.engine_for(probtree, "formula").probability(
        dtd_validity_formula(probtree, dtd)
    )


__all__ = [
    "satisfying_world",
    "violating_world",
    "dtd_satisfiable",
    "dtd_valid",
    "dtd_restriction_pwset",
    "dtd_restriction_probtree",
    "dtd_validity_formula",
    "dtd_satisfaction_probability",
]
