"""DTD satisfiability, validity and restriction over prob-trees (Section 4).

Given a prob-tree ``T`` and a DTD ``D`` the paper asks three questions:

1. **Satisfiability** — does some possible world satisfy ``D``?
   NP-complete in the number of event variables (Theorem 5.1); the decision
   procedure here guesses-by-enumeration over the worlds spanned by the used
   events (linear work per world).
2. **Validity** — do *all* possible worlds satisfy ``D``?
   co-NP-complete (Theorem 5.2); decided by searching for a violating world.
3. **Restriction** — build a prob-tree whose semantics is (``∼sub``) the set
   of valid worlds.  The output may be exponentially large (Theorem 5.3);
   the construction here materializes the valid worlds and re-encodes them
   with :func:`repro.pw.convert.pwset_to_probtree`.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD
from repro.dtd.validation import validates
from repro.formulas.literals import all_worlds
from repro.pw.convert import pwset_to_probtree
from repro.pw.pwset import PWSet


def satisfying_world(probtree: ProbTree, dtd: DTD) -> Optional[FrozenSet[str]]:
    """A world (set of true events) whose value satisfies the DTD, if any.

    This is the NP certificate of Theorem 5.1: checking a guessed world is
    linear, finding one by enumeration is exponential in the number of used
    events.
    """
    for world in all_worlds(sorted(probtree.used_events())):
        if validates(dtd, probtree.value_in_world(world)):
            return frozenset(world)
    return None


def violating_world(probtree: ProbTree, dtd: DTD) -> Optional[FrozenSet[str]]:
    """A world whose value violates the DTD, if any (co-NP certificate)."""
    for world in all_worlds(sorted(probtree.used_events())):
        if not validates(dtd, probtree.value_in_world(world)):
            return frozenset(world)
    return None


def dtd_satisfiable(probtree: ProbTree, dtd: DTD) -> bool:
    """DTD Satisfiability: ``{(t, p) ∈ ⟦T⟧ | t ⊨ D} ≠ ∅``."""
    return satisfying_world(probtree, dtd) is not None


def dtd_valid(probtree: ProbTree, dtd: DTD) -> bool:
    """DTD Validity: every possible world satisfies ``D``."""
    return violating_world(probtree, dtd) is None


def dtd_restriction_pwset(probtree: ProbTree, dtd: DTD) -> PWSet:
    """The sub-PW-set of valid worlds ``{(t, p) ∈ ⟦T⟧ | t ⊨ D}``."""
    worlds = possible_worlds(probtree, restrict_to_used=True, normalize=True)
    return worlds.filter(lambda tree, _probability: validates(dtd, tree))


def dtd_restriction_probtree(
    probtree: ProbTree, dtd: DTD, event_prefix: str = "dtd"
) -> ProbTree:
    """DTD Restriction: a prob-tree ``T'`` with the valid worlds as semantics.

    Following Definition 3, the missing probability mass (that of invalid
    worlds) is carried by a root-only world, so that
    ``{(t, p) ∈ ⟦T⟧ | t ⊨ D} ∼sub ⟦T'⟧``.  The construction goes through the
    explicit possible-world set, which Theorem 5.3 shows cannot be avoided in
    the worst case.
    """
    restricted = dtd_restriction_pwset(probtree, dtd)
    completed = restricted.completed(probtree.tree.root_label)
    return pwset_to_probtree(completed, event_prefix=event_prefix)


def dtd_satisfaction_probability(probtree: ProbTree, dtd: DTD) -> float:
    """Total probability of the worlds satisfying the DTD.

    Not one of the paper's three questions, but a natural companion quantity
    the warehouse facade exposes (probability that the current imprecise
    document is valid).
    """
    return dtd_restriction_pwset(probtree, dtd).total_probability()


__all__ = [
    "satisfying_world",
    "violating_world",
    "dtd_satisfiable",
    "dtd_valid",
    "dtd_restriction_pwset",
    "dtd_restriction_probtree",
    "dtd_satisfaction_probability",
]
