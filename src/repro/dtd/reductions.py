"""The SAT reductions of Theorem 5 and the restriction blow-up instance.

Given a CNF formula ``θ``, the DNF of ``¬θ`` has one conjunction ``ψᵢ`` per
clause of ``θ`` (negate every literal of the clause).  The reduction builds
the prob-tree

.. code-block:: text

        A
      / ... \\
    B[ψ₁] ... B[ψ_n]

over the variables of ``θ`` (with an arbitrary probability, 1/2 here).  Then

* with the DTD ``D(A) = {(B, 0, 0)}`` (no ``B``-children allowed), some world
  satisfies the DTD iff some valuation falsifies every ``ψᵢ``, i.e. iff ``θ``
  is satisfiable — establishing NP-hardness of DTD satisfiability;
* with the DTD ``D(A) = {(B, 1, +∞)}`` (at least one ``B``-child), every
  world satisfies the DTD iff ``ψ₁ ∨ … ∨ ψ_n`` is a tautology, i.e. iff
  ``θ`` is unsatisfiable — establishing co-NP-hardness of DTD validity.

Both constructions are linear in ``|θ|`` and use constant-size DTDs, exactly
as in the paper.  :func:`restriction_blowup_instance` builds the Theorem 5.3
family showing that DTD restriction may require exponentially large outputs.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.dtd.dtd import DTD, ChildConstraint
from repro.formulas.cnf import CNF
from repro.formulas.literals import Condition, Literal
from repro.trees.datatree import DataTree


def _reduction_probtree(theta: CNF, root_label: str = "A", child_label: str = "B") -> ProbTree:
    """The prob-tree shared by both reductions: one ``B[ψᵢ]`` child per clause."""
    negation = theta.negation_dnf()
    tree = DataTree(root_label)
    conditions = {}
    for disjunct in negation.disjuncts:
        node = tree.add_child(tree.root, child_label)
        if not disjunct.is_true():
            conditions[node] = disjunct
    distribution = ProbabilityDistribution.uniform(theta.variables(), 0.5)
    return ProbTree(tree, distribution, conditions)


def sat_to_dtd_satisfiability(theta: CNF) -> Tuple[ProbTree, DTD]:
    """Theorem 5.1 reduction: ``θ`` satisfiable ⇔ the instance is DTD-satisfiable."""
    probtree = _reduction_probtree(theta)
    dtd = DTD({"A": [ChildConstraint.forbidden("B")]})
    return probtree, dtd


def sat_to_dtd_validity(theta: CNF) -> Tuple[ProbTree, DTD]:
    """Theorem 5.2 reduction: ``θ`` unsatisfiable ⇔ the instance is DTD-valid."""
    probtree = _reduction_probtree(theta)
    dtd = DTD({"A": [ChildConstraint.at_least_one("B")]})
    return probtree, dtd


def restriction_blowup_instance(n: int) -> Tuple[ProbTree, DTD]:
    """The Theorem 5.3 family: restriction output is exponential in ``n``.

    The prob-tree has ``2n`` independent optional ``C`` children (each made
    distinguishable through a ``Dᵢ`` grandchild, as in the paper's proof) and
    the DTD allows at most ``n`` ``C``-children under ``A``.  The set of
    valid worlds then contains all subsets of size ≤ n of the 2n children,
    which no polynomial-size prob-tree can represent.
    """
    if n < 1:
        raise ValueError("restriction_blowup_instance needs n >= 1")
    tree = DataTree("A")
    conditions = {}
    probabilities = {}
    for index in range(1, 2 * n + 1):
        event = f"w{index}"
        probabilities[event] = 0.5
        child = tree.add_child(tree.root, "C")
        tree.add_child(child, f"D{index}")
        conditions[child] = Condition([Literal(event)])
    probtree = ProbTree(tree, ProbabilityDistribution(probabilities), conditions)
    dtd = DTD({"A": [ChildConstraint("C", 0, n)]})
    return probtree, dtd


__all__ = [
    "sat_to_dtd_satisfiability",
    "sat_to_dtd_validity",
    "restriction_blowup_instance",
]
