"""DTDs over unordered trees and their interaction with prob-trees (Theorem 5).

* :mod:`repro.dtd.dtd` — the DTD model of Definition 12 (per-parent-label
  lower/upper bounds on the number of children with each label);
* :mod:`repro.dtd.validation` — validation of plain data trees
  (Definition 13);
* :mod:`repro.dtd.probtree_dtd` — DTD satisfiability, validity and
  restriction over prob-trees (the three questions of Section 4);
* :mod:`repro.dtd.reductions` — the SAT reductions proving NP-hardness /
  co-NP-hardness (Theorem 5), used to generate hard benchmark instances.
"""

from repro.dtd.dtd import DTD, ChildConstraint
from repro.dtd.validation import validates, violations
from repro.dtd.probtree_dtd import (
    dtd_satisfiable,
    dtd_valid,
    dtd_restriction_pwset,
    dtd_restriction_probtree,
    dtd_satisfaction_probability,
    dtd_validity_formula,
    dtd_validity_formula_ir,
    satisfying_world,
    violating_world,
)
from repro.dtd.reductions import (
    sat_to_dtd_satisfiability,
    sat_to_dtd_validity,
    restriction_blowup_instance,
)

__all__ = [
    "DTD",
    "ChildConstraint",
    "validates",
    "violations",
    "dtd_satisfiable",
    "dtd_valid",
    "dtd_restriction_pwset",
    "dtd_restriction_probtree",
    "dtd_satisfaction_probability",
    "dtd_validity_formula",
    "dtd_validity_formula_ir",
    "satisfying_world",
    "violating_world",
    "sat_to_dtd_satisfiability",
    "sat_to_dtd_validity",
    "restriction_blowup_instance",
]
