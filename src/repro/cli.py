"""Command-line interface for the probabilistic XML warehouse.

The CLI covers the read-only operations a user typically wants against a
serialized prob-tree document (see :mod:`repro.xmlio` for the format):

.. code-block:: console

    $ python -m repro.cli worlds warehouse.xml --top 3
    $ python -m repro.cli query warehouse.xml "/catalog/movie/title"
    $ python -m repro.cli probability warehouse.xml "//movie"
    $ python -m repro.cli stats warehouse.xml
    $ python -m repro.cli validate warehouse.xml --dtd "catalog: movie*, source?"
    $ python -m repro.cli serve warehouse.xml --shards 4 --port 8080

``serve`` starts the process-sharded service (:mod:`repro.service`): shard
worker subprocesses behind a scatter/gather router and an asyncio JSON
front-end; ``shard`` is the worker entry point the router spawns.

DTDs are given in a compact textual syntax, one rule per ``;``-separated
segment: ``parent: child*, child2?, child3+, child4`` (the bare form means
"exactly one").
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.core.context import ExecutionContext
from repro.core.engine import ProbXMLWarehouse
from repro.formulas.sampling import PricingPolicy
from repro.dtd.dtd import DTD, ChildConstraint
from repro.utils.errors import DTDError, ProbXMLError
from repro.xmlio.parse import probtree_from_xml


def parse_dtd_spec(spec: str) -> DTD:
    """Parse the compact DTD syntax used by the CLI.

    ``"catalog: movie*, source?; movie: title"`` means: a ``catalog`` node may
    have any number of ``movie`` children and at most one ``source`` child; a
    ``movie`` node has exactly one ``title`` child.
    """
    dtd = DTD()
    for rule in spec.split(";"):
        rule = rule.strip()
        if not rule:
            continue
        if ":" not in rule:
            raise DTDError(f"malformed DTD rule (missing ':'): {rule!r}")
        parent, children = rule.split(":", 1)
        parent = parent.strip()
        if not parent:
            raise DTDError(f"malformed DTD rule (empty parent): {rule!r}")
        for item in children.split(","):
            item = item.strip()
            if not item:
                continue
            if item.endswith("*"):
                constraint = ChildConstraint.any_number(item[:-1].strip())
            elif item.endswith("?"):
                constraint = ChildConstraint.optional(item[:-1].strip())
            elif item.endswith("+"):
                constraint = ChildConstraint.at_least_one(item[:-1].strip())
            else:
                constraint = ChildConstraint.exactly(item, 1)
            dtd.add_constraint(parent, constraint)
    if not dtd.domain():
        raise DTDError(f"the DTD specification {spec!r} defines no rule")
    return dtd


def _load(arguments: argparse.Namespace) -> ProbXMLWarehouse:
    """Build the warehouse for one CLI invocation.

    All commands run through one :class:`ExecutionContext` carrying the
    ``--engine`` / ``--matcher`` policy; ``--stats`` prints its counters
    after the command so cache behaviour is observable from the shell.
    """
    text = Path(arguments.document).read_text()
    context = ExecutionContext(
        engine=arguments.engine,
        matcher=arguments.matcher,
        max_cached_answers=getattr(arguments, "max_cached_answers", None),
        pricing=_pricing_policy(arguments),
    )
    return ProbXMLWarehouse(
        probtree_from_xml(text),
        context=context,
        isolation=getattr(arguments, "isolation", "snapshot"),
    )


def _pricing_policy(arguments: argparse.Namespace) -> PricingPolicy:
    """The pricing policy of one invocation (defaults where flags are absent)."""
    return PricingPolicy().merged(
        max_expansions=getattr(arguments, "max_expansions", None),
        epsilon=getattr(arguments, "epsilon", None),
        confidence=getattr(arguments, "confidence", None),
        max_samples=getattr(arguments, "max_samples", None),
        seed=getattr(arguments, "sample_seed", None),
    )


def _maybe_print_stats(arguments: argparse.Namespace, warehouse, output) -> None:
    if getattr(arguments, "stats", False):
        for key, value in warehouse.stats.as_dict().items():
            print(f"stats.{key}: {value}", file=output)


def _command_stats(arguments: argparse.Namespace, output) -> int:
    warehouse = _load(arguments)
    probtree = warehouse.probtree
    print(f"nodes          : {probtree.node_count()}", file=output)
    print(f"literals       : {probtree.literal_count()}", file=output)
    print(f"size |T|       : {probtree.size()}", file=output)
    print(f"events declared: {len(probtree.distribution)}", file=output)
    print(f"events used    : {len(probtree.used_events())}", file=output)
    _maybe_print_stats(arguments, warehouse, output)
    return 0


def _command_worlds(arguments: argparse.Namespace, output) -> int:
    warehouse = _load(arguments)
    for world, probability in warehouse.most_probable_worlds(arguments.top):
        print(f"p = {probability:.6f}  {world.to_nested()}", file=output)
    _maybe_print_stats(arguments, warehouse, output)
    return 0


def _command_query(arguments: argparse.Namespace, output) -> int:
    warehouse = _load(arguments)
    if arguments.top is not None:
        answers = warehouse.top_answers(arguments.path, count=arguments.top)
    else:
        answers = warehouse.query(arguments.path)
    if not answers:
        print("no answers", file=output)
        return 1
    for answer in answers:
        print(f"p = {answer.probability:.6f}  {answer.tree.to_nested()}", file=output)
    _maybe_print_stats(arguments, warehouse, output)
    return 0


def _command_probability(arguments: argparse.Namespace, output) -> int:
    warehouse = _load(arguments)
    if arguments.engine in ("sample", "auto-sample"):
        estimate = warehouse.probability_anytime(arguments.path)
        print(f"{estimate.estimate:.6f}", file=output)
        if estimate.exact:
            print("exact (small formula: no sampling needed)", file=output)
        else:
            level = round(estimate.confidence * 100)
            print(
                f"{level}% CI [{estimate.low:.6f}; {estimate.high:.6f}] "
                f"from {estimate.samples} samples",
                file=output,
            )
    else:
        probability = warehouse.probability(arguments.path)
        print(f"{probability:.6f}", file=output)
    _maybe_print_stats(arguments, warehouse, output)
    return 0


def _command_validate(arguments: argparse.Namespace, output) -> int:
    warehouse = _load(arguments)
    dtd = parse_dtd_spec(arguments.dtd)
    satisfiable = warehouse.dtd_satisfiable(dtd)
    valid = warehouse.dtd_valid(dtd)
    probability = warehouse.dtd_probability(dtd)
    print(f"satisfiable: {satisfiable}", file=output)
    print(f"valid      : {valid}", file=output)
    print(f"P(valid)   : {probability:.6f}", file=output)
    _maybe_print_stats(arguments, warehouse, output)
    if valid:
        return 0
    return 0 if satisfiable else 1


def _command_shard(arguments: argparse.Namespace, output) -> int:
    """Serve one shard over stdin/stdout (spawned by the service router)."""
    from repro.service.worker import worker_main

    return worker_main()


def _command_serve(arguments: argparse.Namespace, output) -> int:
    """Run the sharded warehouse service with an HTTP JSON front-end."""
    from repro.service.http import ServiceFrontend
    from repro.service.router import ShardedWarehouse

    documents = []
    for path in arguments.documents:
        text = Path(path).read_text()
        documents.append((Path(path).stem, probtree_from_xml(text)))
    with ShardedWarehouse(
        shards=arguments.shards,
        engine=arguments.engine,
        matcher=arguments.matcher,
        max_cached_answers=getattr(arguments, "max_cached_answers", None),
        pricing=_pricing_policy(arguments),
        formula_pool_node_limit=arguments.formula_pool_node_limit,
        isolation=getattr(arguments, "isolation", "snapshot"),
    ) as warehouse:
        for name, probtree in documents:
            warehouse.add_document(name, probtree)
        frontend = ServiceFrontend(
            warehouse, host=arguments.host, port=arguments.port
        ).start()
        print(
            f"serving {len(documents)} document(s) on "
            f"{arguments.shards} shard(s) at "
            f"http://{frontend.host}:{frontend.port}",
            file=output,
        )
        output.flush()
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        finally:
            frontend.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Query and inspect probabilistic XML (prob-tree) documents.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--engine",
        choices=("formula", "enumerate", "sample", "auto-sample"),
        default="formula",
        help="probability engine: 'formula' (Shannon expansion over event "
        "formulas, the default; bounded by --max-expansions), 'enumerate' "
        "(materialize possible worlds), 'sample' (seeded anytime "
        "Monte-Carlo estimates with confidence intervals) or 'auto-sample' "
        "(budgeted-exact first, degrading to sampling on a tripped budget)",
    )
    common.add_argument(
        "--matcher",
        choices=("indexed", "naive", "columnar", "auto"),
        default="indexed",
        help="tree-pattern matcher: 'indexed' (compiled plans over a "
        "structural index, the default), 'naive' (direct backtracking), "
        "'columnar' (vectorized interval merges over a flat-array snapshot, "
        "journal-patched forward across updates) or 'auto' (cost-model "
        "choice per pattern; treats a patchable column as warm)",
    )
    common.add_argument(
        "--stats",
        action="store_true",
        help="print the execution context's cache/plan counters after the command",
    )
    common.add_argument(
        "--max-cached-answers",
        type=int,
        default=None,
        metavar="N",
        help="per-document LRU bound on cached answer entries "
        "(default: the context's generous built-in bound)",
    )
    common.add_argument(
        "--max-expansions",
        type=int,
        default=None,
        metavar="N",
        help="Shannon-expansion budget of the exact engine; past it the "
        "command fails with a typed BudgetExceededError (exit 2) instead of "
        "hanging, or falls back to sampling under --engine auto-sample "
        "(default: unbounded for 'formula', a generous built-in bound for "
        "the 'auto-sample' exact attempt)",
    )
    common.add_argument(
        "--epsilon",
        type=float,
        default=None,
        metavar="E",
        help="target confidence-interval half-width of the sampling engines "
        "(default: 0.005, i.e. a 0.01-wide interval)",
    )
    common.add_argument(
        "--confidence",
        type=float,
        default=None,
        metavar="C",
        help="confidence level of the sampling engines' intervals (default: 0.95)",
    )
    common.add_argument(
        "--max-samples",
        type=int,
        default=None,
        metavar="N",
        help="cap on Monte-Carlo worlds drawn per estimate (default: 200000)",
    )
    common.add_argument(
        "--sample-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="Monte-Carlo seed; estimates are deterministic per seed (default: 0)",
    )
    common.add_argument(
        "--isolation",
        choices=("snapshot", "lock"),
        default="snapshot",
        help=(
            "warehouse concurrency mode: 'snapshot' pins an MVCC view per "
            "read, 'lock' serializes everything behind one gate (default: "
            "snapshot)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = subparsers.add_parser(
        "stats", help="size statistics of a prob-tree document", parents=[common]
    )
    stats.add_argument("document", help="path to a <probtree> XML file")
    stats.set_defaults(handler=_command_stats)

    worlds = subparsers.add_parser(
        "worlds", help="most probable possible worlds", parents=[common]
    )
    worlds.add_argument("document")
    worlds.add_argument("--top", type=int, default=3, help="how many worlds to show")
    worlds.set_defaults(handler=_command_worlds)

    query = subparsers.add_parser("query", help="evaluate a path query", parents=[common])
    query.add_argument("document")
    query.add_argument("path", help="path query, e.g. /catalog/movie//title")
    query.add_argument("--top", type=int, default=None, help="rank and keep the top K answers")
    query.set_defaults(handler=_command_query)

    probability = subparsers.add_parser(
        "probability",
        help="probability that a path query has an answer",
        parents=[common],
    )
    probability.add_argument("document")
    probability.add_argument("path")
    probability.set_defaults(handler=_command_probability)

    validate = subparsers.add_parser(
        "validate", help="check the document against a DTD", parents=[common]
    )
    validate.add_argument("document")
    validate.add_argument("--dtd", required=True, help='e.g. "catalog: movie*, source?"')
    validate.set_defaults(handler=_command_validate)

    serve = subparsers.add_parser(
        "serve",
        help="serve documents over HTTP via the process-sharded service",
        parents=[common],
    )
    serve.add_argument(
        "documents", nargs="+", help="one or more <probtree> XML files"
    )
    serve.add_argument(
        "--shards", type=int, default=4, help="shard worker processes (default: 4)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 for ephemeral)"
    )
    serve.add_argument(
        "--formula-pool-node-limit",
        type=int,
        default=None,
        metavar="N",
        help="per-worker formula-pool node bound; past it a worker runs the "
        "mark-and-sweep pool GC and only restarts its formula layer if the "
        "pool is still oversized afterwards (default: the library bound)",
    )
    serve.set_defaults(handler=_command_serve)

    shard = subparsers.add_parser(
        "shard",
        help="serve one shard over stdin/stdout (used by the service router)",
    )
    shard.set_defaults(handler=_command_shard)

    return parser


def main(argv: Optional[List[str]] = None, output=None) -> int:
    """CLI entry point; returns the process exit code."""
    output = output if output is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments, output)
    except (ProbXMLError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
