"""Independence of a prob-tree from an event variable.

Section 3 of the paper observes that deciding whether a prob-tree is
independent of some event variable is computationally as hard as deciding
structural equivalence: ``T ≡struct T'`` iff the tree obtained by putting
``T`` under condition ``w`` and ``T'`` under condition ``¬w`` (for a fresh
``w``) below a common root is independent of ``w``.  This module provides

* :func:`condition_on` — fixing the value of an event (partial evaluation of
  the conditions);
* :func:`is_independent_of` — the independence test itself, by comparing the
  two conditionings for structural equivalence;
* :func:`equivalence_via_independence` — the reduction in the other
  direction, used by tests to confirm the interreduction.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.probtree import ProbTree
from repro.equivalence.randomized import structurally_equivalent_randomized
from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.formulas.literals import Condition, Literal
from repro.trees.datatree import DataTree, NodeId
from repro.utils.errors import InvalidConditionError
from repro.utils.seeding import RngLike


def condition_on(probtree: ProbTree, event: str, value: bool) -> ProbTree:
    """Partially evaluate a prob-tree by fixing *event* to *value*.

    Nodes whose condition contains the falsified literal are pruned (with
    their subtrees); satisfied literals are dropped from the remaining
    conditions.  The event is removed from the distribution of the result.
    """
    if event not in probtree.events():
        raise InvalidConditionError(f"event {event!r} is not part of the prob-tree")
    tree = probtree.tree

    def removed(node: NodeId) -> bool:
        condition = probtree.condition(node)
        for literal in condition.literals:
            if literal.event == event and literal.negated == value:
                return True
        return False

    pruned = tree.prune_where(removed)
    conditions = {}
    for node in pruned.nodes():
        if node == pruned.root:
            continue
        condition = probtree.condition(node).without_events({event})
        if not condition.is_true():
            conditions[node] = condition
    return ProbTree(pruned, probtree.distribution.without_event(event), conditions)


def is_independent_of(
    probtree: ProbTree,
    event: str,
    method: str = "randomized",
    seed: RngLike = None,
) -> bool:
    """Whether the prob-tree's semantics does not depend on *event*.

    ``T`` is independent of ``w`` when for every world over the other events,
    adding or removing ``w`` yields isomorphic values — equivalently, when
    the two conditionings ``T[w:=true]`` and ``T[w:=false]`` are structurally
    equivalent.  ``method`` selects ``"randomized"`` (Figure 3, one-sided
    error) or ``"exhaustive"``.
    """
    fixed_true = condition_on(probtree, event, True)
    fixed_false = condition_on(probtree, event, False)
    if method == "exhaustive":
        return structurally_equivalent_exhaustive(fixed_true, fixed_false)
    if method == "randomized":
        return structurally_equivalent_randomized(fixed_true, fixed_false, seed=seed)
    raise ValueError(f"unknown method {method!r}; use 'randomized' or 'exhaustive'")


def equivalence_via_independence(
    left: ProbTree,
    right: ProbTree,
    method: str = "exhaustive",
    fresh_event: str = "__equiv_switch__",
    seed: RngLike = None,
) -> bool:
    """Decide structural equivalence through the independence reduction.

    Builds the tree of Section 3 — a fresh root with ``left`` attached under
    condition ``w`` and ``right`` attached under ``¬w`` — and tests
    independence from ``w``.  Root labels must coincide for equivalence to be
    possible at all.
    """
    if left.tree.root_label != right.tree.root_label:
        return False
    combined_tree = DataTree("__equivalence_root__")
    distribution = left.distribution
    for event, probability in right.distribution.items():
        if event not in distribution:
            distribution = distribution.with_event(event, probability)
    if fresh_event in distribution:
        raise InvalidConditionError(f"event {fresh_event!r} already used")
    distribution = distribution.with_event(fresh_event, 0.5)

    conditions = {}
    for source, literal in ((left, Literal(fresh_event)), (right, Literal(fresh_event, negated=True))):
        mapping = combined_tree.add_subtree(combined_tree.root, source.tree)
        attached_root = mapping[source.tree.root]
        conditions[attached_root] = Condition([literal])
        for node, condition in source.conditions().items():
            conditions[mapping[node]] = condition

    combined = ProbTree(combined_tree, distribution, conditions)
    return is_independent_of(combined, fresh_event, method=method, seed=seed)


__all__ = ["condition_on", "is_independent_of", "equivalence_via_independence"]
