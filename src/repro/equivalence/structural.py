"""Structural equivalence of prob-trees, decided exhaustively (Proposition 3).

Two prob-trees over the same event variables are *structurally equivalent*
(Definition 9) when they define isomorphic data trees in every world
``V ⊆ W``.  The obvious decision procedure enumerates every world — linear
work per world but exponentially many worlds, which is exactly the co-NP
upper bound of Proposition 3.  The randomized polynomial-time procedure of
Figure 3 lives in :mod:`repro.equivalence.randomized`; this exhaustive
version serves as the correctness oracle in tests and as the baseline in the
E6 benchmark.

Note that the probability values ``π`` play no role in structural
equivalence — only the event *set* does — so the functions here accept
prob-trees whose distributions differ in probabilities (but see
:func:`repro.equivalence.semantic.semantically_equivalent` and Proposition 4
for how probabilities re-enter the picture).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.probtree import ProbTree
from repro.formulas.literals import all_worlds
from repro.trees.isomorphism import isomorphic


def structurally_equivalent_exhaustive(
    left: ProbTree,
    right: ProbTree,
    restrict_to_used: bool = True,
) -> bool:
    """Decide ``T ≡struct T'`` by enumerating every world.

    Args:
        left, right: the two prob-trees (expected over the same event set;
            the union of their event sets is used as ``W``).
        restrict_to_used: only enumerate events mentioned by at least one
            condition of either tree; events no condition mentions cannot
            change any ``V(T)``, so the answer is unaffected and the
            enumeration is exponentially smaller.

    Returns:
        ``True`` iff ``V(left) ∼ V(right)`` for every world ``V``.
    """
    if restrict_to_used:
        events: Set[str] = left.used_events() | right.used_events()
    else:
        events = left.events() | right.events()
    for world in all_worlds(sorted(events)):
        if not isomorphic(left.value_in_world(world), right.value_in_world(world)):
            return False
    return True


def counterexample_world(
    left: ProbTree, right: ProbTree
) -> Optional[frozenset]:
    """A world on which the two prob-trees differ, or ``None`` if equivalent.

    Useful for debugging and for exercising the NP certificate of the
    complement problem (the "guess a subset V" step in Proposition 3's
    proof).
    """
    events = left.used_events() | right.used_events()
    for world in all_worlds(sorted(events)):
        if not isomorphic(left.value_in_world(world), right.value_in_world(world)):
            return frozenset(world)
    return None


__all__ = ["structurally_equivalent_exhaustive", "counterexample_world"]
