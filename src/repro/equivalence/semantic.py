"""Semantic equivalence of prob-trees (Section 5, Proposition 4).

Two prob-trees — possibly over different event sets — are *semantically
equivalent* when their possible-world semantics are isomorphic:
``⟦T⟧ ∼ ⟦T'⟧``.  The paper notes an EXPTIME upper bound (compute, normalize
and compare the PW sets) and leaves tighter bounds open; that exhaustive
procedure is what is implemented here.

Proposition 4 relates the two notions: structural equivalence implies
semantic equivalence, and structural equivalence is exactly semantic
equivalence under *every* probability assignment to the shared event set.
The helper :func:`semantically_equivalent_under` lets tests exercise the
second half by swapping distributions.
"""

from __future__ import annotations

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds


def semantically_equivalent(left: ProbTree, right: ProbTree) -> bool:
    """Decide ``⟦T⟧ ∼ ⟦T'⟧`` by computing and comparing both PW sets.

    Exponential in the number of used events of each tree.
    """
    left_worlds = possible_worlds(left, restrict_to_used=True, normalize=True)
    right_worlds = possible_worlds(right, restrict_to_used=True, normalize=True)
    return left_worlds.isomorphic(right_worlds)


def semantically_equivalent_under(
    left: ProbTree,
    right: ProbTree,
    distribution: ProbabilityDistribution,
) -> bool:
    """Semantic equivalence after re-assigning both trees' probabilities.

    Both trees must only use events present in *distribution*.  This is the
    quantified form appearing in Proposition 4(ii).
    """
    return semantically_equivalent(
        left.with_distribution(distribution), right.with_distribution(distribution)
    )


__all__ = ["semantically_equivalent", "semantically_equivalent_under"]
