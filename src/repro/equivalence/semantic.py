"""Semantic equivalence of prob-trees (Section 5, Proposition 4).

Two prob-trees — possibly over different event sets — are *semantically
equivalent* when their possible-world semantics are isomorphic:
``⟦T⟧ ∼ ⟦T'⟧``.  The paper notes an EXPTIME upper bound (compute, normalize
and compare the PW sets) and leaves tighter bounds open; that exhaustive
procedure is what is implemented here.

Proposition 4 relates the two notions: structural equivalence implies
semantic equivalence, and structural equivalence is exactly semantic
equivalence under *every* probability assignment to the shared event set.
The helper :func:`semantically_equivalent_under` lets tests exercise the
second half by swapping distributions.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import ExecutionContext
from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.core.semantics import normalized_worlds


def semantically_equivalent(
    left: ProbTree,
    right: ProbTree,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """Decide ``⟦T⟧ ∼ ⟦T'⟧`` by computing and comparing both normalized PW sets.

    With the default ``engine="formula"`` each side's normalized semantics is
    reconstructed from achievable surviving-node subsets priced by the shared
    formula engine — exponential only in the number of *conditional nodes*
    rather than in the number of used events; ``engine="enumerate"`` keeps
    the literal EXPTIME procedure of the paper.
    """
    left_worlds = normalized_worlds(left, engine=engine, context=context)
    right_worlds = normalized_worlds(right, engine=engine, context=context)
    return left_worlds.isomorphic(right_worlds)


def semantically_equivalent_under(
    left: ProbTree,
    right: ProbTree,
    distribution: ProbabilityDistribution,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """Semantic equivalence after re-assigning both trees' probabilities.

    Both trees must only use events present in *distribution*.  This is the
    quantified form appearing in Proposition 4(ii).
    """
    return semantically_equivalent(
        left.with_distribution(distribution),
        right.with_distribution(distribution),
        engine=engine,
        context=context,
    )


__all__ = ["semantically_equivalent", "semantically_equivalent_under"]
