"""The randomized polynomial-time structural-equivalence test (Figure 3).

Theorem 2 of the paper: structural equivalence of prob-trees is in co-RP.
The algorithm combines

* the classical bottom-up canonical-labeling technique for unordered labeled
  tree isomorphism (Aho–Hopcroft–Ullman), and
* randomized identity testing of the characteristic polynomials of the DNF
  formulas formed by the conditions of children falling in the same
  equivalence class (Lemma 1 + Lemma 2 + Schwartz–Zippel).

Concretely, both (cleaned) prob-trees are processed children-before-parents;
every node receives an integer class identifier such that two nodes get the
same identifier iff the subtrees below them — ignoring the condition carried
by the subtree's root — are structurally equivalent (with the stated one-sided
error).  Two prob-trees are then equivalent iff their roots receive the same
identifier.

The answer is always ``True`` when the trees are equivalent; when they are
not, ``False`` is returned with probability at least ``1 − error`` where the
error bound follows the theorem: with ``m`` evaluation points per polynomial
comparison and a sample set of size ``|S|``, a single comparison errs with
probability at most ``(N_l / |S|)^m`` and at most ``N_n³`` comparisons are
performed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cleaning import clean
from repro.core.probtree import ProbTree
from repro.formulas.dnf import DNF
from repro.formulas.polynomial import evaluate_characteristic
from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import tree_index
from repro.utils.seeding import RngLike, make_rng


@dataclass(frozen=True)
class RandomizedEquivalenceParameters:
    """Parameters of the Figure 3 algorithm.

    Attributes:
        trials: number ``m`` of random evaluation points per polynomial
            comparison.
        sample_size: size ``|S|`` of the integer set coordinates are drawn
            from.
    """

    trials: int
    sample_size: int

    @staticmethod
    def for_trees(
        left: ProbTree,
        right: ProbTree,
        target_error: float = 0.5,
        trials: int = 2,
    ) -> "RandomizedEquivalenceParameters":
        """Choose ``|S|`` so the overall error is at most *target_error*.

        Following the proof of Theorem 2, the success probability when the
        trees are inequivalent is at least ``(1 − (N_l/|S|)^m)^{N_n³}``; we
        solve for ``|S|`` and round up.
        """
        literal_count = max(1, left.literal_count() + right.literal_count())
        node_count = max(2, left.node_count() + right.node_count())
        comparisons = float(node_count) ** 3
        # Need (1 - (Nl/S)^m)^comparisons >= 1 - target_error, i.e.
        # (Nl/S)^m <= 1 - (1 - target_error)^(1/comparisons).
        per_comparison = -math.expm1(math.log1p(-target_error) / comparisons)
        if per_comparison <= 0.0:
            per_comparison = 1e-18
        sample_size = int(math.ceil(literal_count / per_comparison ** (1.0 / trials)))
        return RandomizedEquivalenceParameters(
            trials=trials, sample_size=max(sample_size, 2 * literal_count, 16)
        )


def structurally_equivalent_randomized(
    left: ProbTree,
    right: ProbTree,
    parameters: Optional[RandomizedEquivalenceParameters] = None,
    seed: RngLike = None,
    pre_clean: bool = True,
) -> bool:
    """Run the Figure 3 algorithm on two prob-trees.

    One-sided error: always ``True`` for equivalent inputs, ``False`` with
    probability at least 1/2 (for the default parameters; boost by running
    repeatedly or enlarging the parameters) for inequivalent ones.
    """
    rng = make_rng(seed)
    if parameters is None:
        parameters = RandomizedEquivalenceParameters.for_trees(left, right)
    if pre_clean:
        left = clean(left)
        right = clean(right)

    labeler = _ClassLabeler(parameters, rng)
    left_classes = labeler.label_tree(left)
    right_classes = labeler.label_tree(right)
    return left_classes[left.tree.root] == right_classes[right.tree.root]


class _ClassLabeler:
    """Assigns equivalence-class identifiers to prob-tree nodes bottom-up."""

    def __init__(self, parameters: RandomizedEquivalenceParameters, rng) -> None:
        self._parameters = parameters
        self._rng = rng
        # One representative per class: (label, {child class -> DNF of the
        # conditions of the children in that class}).
        self._representatives: List[Tuple[str, Dict[int, DNF]]] = []

    def label_tree(self, probtree: ProbTree) -> Dict[NodeId, int]:
        tree = probtree.tree
        classes: Dict[NodeId, int] = {}
        # Children before parents: reversed preorder visits every node after
        # all of its descendants (and the structural index makes it O(n),
        # where sorting by recomputed depths walked an ancestor chain per node).
        for node in reversed(tree_index(tree).nodes_in_preorder()):
            classes[node] = self._classify(probtree, node, classes)
        return classes

    def _classify(
        self, probtree: ProbTree, node: NodeId, classes: Dict[NodeId, int]
    ) -> int:
        tree = probtree.tree
        label = tree.label(node)
        children_by_class: Dict[int, List] = {}
        for child in tree.children(node):
            children_by_class.setdefault(classes[child], []).append(
                probtree.condition(child)
            )
        grouped = {
            class_id: DNF(conditions)
            for class_id, conditions in children_by_class.items()
        }
        for class_id, (rep_label, rep_grouped) in enumerate(self._representatives):
            if rep_label != label:
                continue
            if set(rep_grouped) != set(grouped):
                continue
            if all(
                self._count_equivalent(grouped[key], rep_grouped[key])
                for key in grouped
            ):
                return class_id
        self._representatives.append((label, grouped))
        return len(self._representatives) - 1

    def _count_equivalent(self, left: DNF, right: DNF) -> bool:
        """Randomized count-equivalence test (Lemma 1 + Schwartz–Zippel)."""
        variables = sorted(left.events() | right.events())
        if not variables:
            return len(left) == len(right) or evaluate_characteristic(
                left, {}
            ) == evaluate_characteristic(right, {})
        for _ in range(self._parameters.trials):
            point = {
                variable: self._rng.randrange(self._parameters.sample_size)
                for variable in variables
            }
            if evaluate_characteristic(left, point) != evaluate_characteristic(
                right, point
            ):
                return False
        return True


__all__ = [
    "RandomizedEquivalenceParameters",
    "structurally_equivalent_randomized",
]
