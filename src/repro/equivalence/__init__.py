"""Equivalence of prob-trees (Section 3 and Section 5 of the paper).

* :mod:`repro.equivalence.structural` — structural equivalence
  (Definition 9) decided exhaustively, the co-NP-style upper bound of
  Proposition 3;
* :mod:`repro.equivalence.randomized` — the randomized PTIME algorithm of
  Figure 3 (Theorem 2: the problem is in co-RP);
* :mod:`repro.equivalence.semantic` — semantic equivalence via possible-world
  sets (Section 5, Proposition 4);
* :mod:`repro.equivalence.independence` — independence of a prob-tree from an
  event variable and its interreduction with equivalence.
"""

from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.equivalence.randomized import (
    RandomizedEquivalenceParameters,
    structurally_equivalent_randomized,
)
from repro.equivalence.semantic import semantically_equivalent
from repro.equivalence.independence import (
    condition_on,
    is_independent_of,
    equivalence_via_independence,
)

__all__ = [
    "structurally_equivalent_exhaustive",
    "RandomizedEquivalenceParameters",
    "structurally_equivalent_randomized",
    "semantically_equivalent",
    "condition_on",
    "is_independent_of",
    "equivalence_via_independence",
]
