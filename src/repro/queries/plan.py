"""Compiled tree-pattern evaluation plans (the ``"indexed"`` matcher).

The naive matcher in :mod:`repro.queries.treepattern` backtracks over the
tree directly: every descendant edge re-walks ``tree.descendants()``, label
tests are per-node string comparisons, and shared subpatterns are re-matched
once per enclosing candidate.  This module lowers a pattern into a bottom-up
plan executed against a :class:`~repro.trees.index.TreeIndex`:

1. **candidate seeding** — each pattern node starts from the label inverted
   index (or the full preorder for wildcards), so label selectivity is
   exploited before any structure is looked at;
2. **bottom-up structural semijoins** — candidates of a pattern node are
   filtered to those with at least one structurally-related candidate per
   pattern child: child edges through a parent-set semijoin, descendant
   edges through binary search on preorder intervals;
3. **join pushdown** — a label-equality join restricts both endpoints to
   the intersection of their candidates' label sets before any embedding is
   enumerated;
4. **memoized embedding enumeration** — embeddings of the subpattern rooted
   at ``p`` with ``p ↦ v`` are computed once per ``(p, v)`` pair, so a
   subpattern reachable from many candidates is matched exactly once.

The matchers are observationally identical — they return the same embedding
sets (the plans only ever *prune* candidates that cannot occur in an
embedding, and the enumeration re-verifies every edge) — so the naive
matcher is kept as a differential-testing oracle, mirroring the
``engine="enumerate"`` convention of :mod:`repro.core.probability`.

:class:`ColumnarPlan` is the third matcher (``matcher="columnar"``): the
same four stages rebased onto the flat rank-indexed arrays of a
:class:`~repro.trees.columnar.ColumnarTree`, with seeding and the semijoin
filters vectorized (numpy when available) instead of looping per node.  Its
differential oracle is ``matcher="indexed"`` — the candidate pruning must
agree element for element, and the memoized enumeration mirrors the object
plan exactly (sibling ranks ascend in child insertion order), so the two
return byte-identical match lists.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.queries.base import Match
from repro.trees import columnar as _columnar
from repro.trees.columnar import ColumnarTree, columnar_tree
from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import TreeIndex, tree_index
from repro.utils.errors import QueryError

#: The matcher modes understood throughout the library.
MATCHER_MODES = ("indexed", "naive", "columnar")

#: The matcher used when callers do not choose one.
DEFAULT_MATCHER = "indexed"


def require_matcher_mode(mode: Optional[str]) -> str:
    """Validate a ``matcher=`` argument; ``None`` selects the default."""
    if mode is None:
        return DEFAULT_MATCHER
    if mode not in MATCHER_MODES:
        raise QueryError(
            f"unknown matcher {mode!r}; expected one of {MATCHER_MODES}"
        )
    return mode


def _pattern_postorder(pattern) -> List[int]:
    """Children-before-parents order over pattern nodes (patterns are tiny)."""
    order: List[int] = []
    stack = [pattern.root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(pattern.pattern_children(node))
    order.reverse()
    return order


class PatternPlan:
    """A compiled evaluation plan for one pattern against one indexed tree.

    The plan is cheap to build (a few linear passes over candidate lists)
    and single-use: build, call :meth:`matches`, discard.  The underlying
    :class:`TreeIndex` is shared through :func:`tree_index`, so evaluating
    many patterns against the same tree pays the O(n) index build once.
    """

    def __init__(
        self, pattern, tree: DataTree, index: Optional[TreeIndex] = None
    ) -> None:
        self._pattern = pattern
        self._tree = tree
        self._index = index if index is not None else tree_index(tree)
        self._specs = {spec.node_id: spec for spec in pattern.pattern_nodes()}
        self._postorder = _pattern_postorder(pattern)

    # -- plan construction ---------------------------------------------------

    def _seed_candidates(self) -> Dict[int, Sequence[NodeId]]:
        """Per-pattern-node candidate sequences from the label index, in preorder.

        Seeds are *shared, never copied*: a wildcard pattern node gets the
        index's preorder tuple itself — materializing a fresh O(n) list per
        wildcard per evaluation dominated seeding on large documents.  The
        root candidate stays in wildcard pools (the semijoin and the
        enumeration both exclude it structurally: the root is nobody's child
        and nobody's strict descendant); selective label postings still drop
        a leading root, where the slice is proportional to the posting.
        Materialization is deferred to the prune steps, which build fresh
        lists only when they actually remove candidates.
        """
        tree, index = self._tree, self._index
        from repro.queries.treepattern import WILDCARD  # local: avoids an import cycle

        root = tree.root
        candidates: Dict[int, Sequence[NodeId]] = {}
        for node_id, spec in self._specs.items():
            if node_id == self._pattern.root:
                matched = spec.label_matches(tree.root_label)
                candidates[node_id] = [root] if matched else []
                continue
            if spec.label == WILDCARD:
                candidates[node_id] = index.nodes_in_preorder()
                continue
            # Non-root pattern nodes sit strictly below the pattern root,
            # which is pinned to the tree root — drop the root candidate.
            # Posting lists are preorder-sorted, so the root can only be first.
            pool = index.nodes_with_label(spec.label)
            candidates[node_id] = pool[1:] if pool and pool[0] == root else pool
        return candidates

    def _semijoin_filter(self, candidates: Dict[int, Sequence[NodeId]]) -> None:
        """Bottom-up: keep candidates with structural support for every child."""
        from repro.queries.treepattern import EDGE_CHILD  # local: avoids an import cycle

        tree = self._tree
        pre = self._index.preorder_map()
        last = self._index.subtree_last_map()
        for node_id in self._postorder:
            for child_id in self._pattern.pattern_children(node_id):
                child_candidates = candidates[child_id]
                if not child_candidates:
                    candidates[node_id] = []
                    break
                if self._specs[child_id].edge == EDGE_CHILD:
                    parents = {tree.parent(u) for u in child_candidates}
                    candidates[node_id] = [v for v in candidates[node_id] if v in parents]
                else:
                    # Both lists are in preorder, so the first child candidate
                    # past each interval start is found by a single merge pass.
                    pres = [pre[u] for u in child_candidates]
                    count = len(pres)
                    kept = []
                    cursor = 0
                    for v in candidates[node_id]:
                        lo = pre[v]
                        while cursor < count and pres[cursor] <= lo:
                            cursor += 1
                        if cursor < count and pres[cursor] <= last[v]:
                            kept.append(v)
                    candidates[node_id] = kept

    def _push_down_joins(self, candidates: Dict[int, List[NodeId]]) -> None:
        """Restrict join endpoints to the labels both sides can produce."""
        tree = self._tree
        for first, second in self._pattern.joins():
            first_labels = {tree.label(v) for v in candidates[first]}
            second_labels = {tree.label(v) for v in candidates[second]}
            common = first_labels & second_labels
            if common != first_labels:
                candidates[first] = [
                    v for v in candidates[first] if tree.label(v) in common
                ]
            if common != second_labels:
                candidates[second] = [
                    v for v in candidates[second] if tree.label(v) in common
                ]

    # -- execution -----------------------------------------------------------

    def matches(self) -> List[Match]:
        """All embeddings, as :class:`Match` objects (join-filtered)."""
        joins = self._pattern.joins()
        embeddings = self.embeddings()
        if joins:
            label = self._tree.label
            embeddings = [
                e for e in embeddings
                if all(label(e[a]) == label(e[b]) for a, b in joins)
            ]
        return [Match.from_dict(e) for e in embeddings]

    def embeddings(self) -> List[Dict[int, NodeId]]:
        """All embeddings surviving candidate pruning, before the final join check.

        Join-label pushdown has already been applied, so embeddings whose
        join endpoints cannot possibly carry equal labels are pruned here;
        the exact per-embedding join equality test happens in
        :meth:`matches`.  Use :meth:`matches` for the join-complete result.
        """
        from repro.queries.treepattern import EDGE_CHILD  # local: avoids an import cycle

        candidates = self._seed_candidates()
        self._semijoin_filter(candidates)
        self._push_down_joins(candidates)
        root = self._pattern.root
        if not candidates[root]:
            return []

        tree = self._tree
        pre = self._index.preorder_map()
        last = self._index.subtree_last_map()
        pattern_children = self._pattern.pattern_children
        specs = self._specs
        candidate_sets = {node_id: set(nodes) for node_id, nodes in candidates.items()}
        candidate_pres = {
            node_id: [pre[u] for u in nodes] for node_id, nodes in candidates.items()
        }
        memo: Dict[Tuple[int, NodeId], List[Dict[int, NodeId]]] = {}

        def embed(pattern_node: int, tree_node: NodeId) -> List[Dict[int, NodeId]]:
            key = (pattern_node, tree_node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            partials: List[Dict[int, NodeId]] = [{pattern_node: tree_node}]
            for child_id in pattern_children(pattern_node):
                if specs[child_id].edge == EDGE_CHILD:
                    allowed = candidate_sets[child_id]
                    child_nodes: Sequence[NodeId] = [
                        u for u in tree.children(tree_node) if u in allowed
                    ]
                else:
                    pres = candidate_pres[child_id]
                    start = bisect_right(pres, pre[tree_node])
                    stop = bisect_right(pres, last[tree_node])
                    child_nodes = candidates[child_id][start:stop]
                child_embeddings: List[Dict[int, NodeId]] = []
                for u in child_nodes:
                    child_embeddings.extend(embed(child_id, u))
                if not child_embeddings:
                    memo[key] = []
                    return memo[key]
                partials = [
                    {**left, **right}
                    for left in partials
                    for right in child_embeddings
                ]
            memo[key] = partials
            return partials

        return embed(root, tree.root)


class ColumnarPlan:
    """The compiled plan of one pattern against one :class:`ColumnarTree`.

    The same four stages as :class:`PatternPlan` — seeding, bottom-up
    structural semijoins, join pushdown, memoized embedding enumeration —
    rebased onto flat rank-indexed arrays.  Node identity is the preorder
    rank, so the per-node dict lookups of the object plan become array
    indexing, and the two whole-tree passes (wildcard semijoin filtering,
    interval merging) vectorize with numpy when the column is numpy-backed.

    Candidate sequences stay preorder-sorted throughout, sibling ranks
    ascend in child insertion order and the enumeration mirrors the object
    plan step for step, so :meth:`matches` returns a list *identical* (same
    matches, same order) to ``PatternPlan(pattern, tree).matches()`` — the
    fast-default/slow-oracle pairing the differential harness pins.

    The column must be fresh: a snapshot whose source tree has mutated
    raises :class:`~repro.utils.errors.StaleColumnarTreeError` at plan
    construction instead of pruning against torn arrays.
    """

    def __init__(self, pattern, column: ColumnarTree) -> None:
        column.require_fresh()
        self._pattern = pattern
        self._column = column
        self._specs = {spec.node_id: spec for spec in pattern.pattern_nodes()}
        self._postorder = _pattern_postorder(pattern)

    # -- plan construction ---------------------------------------------------

    def _seed_candidates(self) -> Dict[int, Sequence[int]]:
        """Per-pattern-node candidate rank sequences, preorder-sorted, shared."""
        from repro.queries.treepattern import WILDCARD  # local: avoids an import cycle

        column = self._column
        np = _columnar._np
        empty = column.posting_ranks[0:0]
        candidates: Dict[int, Sequence[int]] = {}
        for node_id, spec in self._specs.items():
            if node_id == self._pattern.root:
                if spec.label_matches(column.root_label):
                    candidates[node_id] = (
                        np.zeros(1, dtype=np.int64) if np is not None else [0]
                    )
                else:
                    candidates[node_id] = empty
                continue
            if spec.label == WILDCARD:
                # Shared arange/range — same no-copy discipline as the
                # object plan's shared preorder tuple.
                candidates[node_id] = column.nonroot_ranks()
                continue
            pool = column.postings(column.label_code(spec.label))
            candidates[node_id] = pool[1:] if len(pool) and pool[0] == 0 else pool
        return candidates

    def _semijoin_filter(self, candidates: Dict[int, Sequence[int]]) -> None:
        """Bottom-up structural semijoins as vectorized rank-interval merges."""
        from repro.queries.treepattern import EDGE_CHILD  # local: avoids an import cycle

        column = self._column
        np = _columnar._np
        last = column.last_ranks
        parents = column.parent_ranks
        for node_id in self._postorder:
            for child_id in self._pattern.pattern_children(node_id):
                child_cand = candidates[child_id]
                if not len(child_cand):
                    candidates[node_id] = child_cand
                    break
                cand = candidates[node_id]
                if not len(cand):
                    break
                if self._specs[child_id].edge == EDGE_CHILD:
                    if np is not None:
                        cand = np.asarray(cand, dtype=np.int64)
                        child_parents = parents[np.asarray(child_cand, dtype=np.int64)]
                        candidates[node_id] = cand[np.isin(cand, child_parents)]
                    else:
                        parent_set = {parents[u] for u in child_cand}
                        candidates[node_id] = [v for v in cand if v in parent_set]
                elif np is not None:
                    # v keeps a descendant-edge child iff some child candidate
                    # rank lies in (v, last[v]] — one searchsorted over the
                    # sorted child candidates answers it for every v at once.
                    cand = np.asarray(cand, dtype=np.int64)
                    child_arr = np.asarray(child_cand, dtype=np.int64)
                    index = np.searchsorted(child_arr, cand, side="right")
                    safe = np.minimum(index, child_arr.size - 1)
                    keep = (index < child_arr.size) & (child_arr[safe] <= last[cand])
                    candidates[node_id] = cand[keep]
                else:
                    kept = []
                    cursor = 0
                    count = len(child_cand)
                    for v in cand:
                        while cursor < count and child_cand[cursor] <= v:
                            cursor += 1
                        if cursor < count and child_cand[cursor] <= last[v]:
                            kept.append(v)
                    candidates[node_id] = kept

    def _push_down_joins(self, candidates: Dict[int, Sequence[int]]) -> None:
        """Restrict join endpoints to the label codes both sides can produce."""
        column = self._column
        np = _columnar._np
        codes = column.label_codes
        for first, second in self._pattern.joins():
            if np is not None:
                first_cand = np.asarray(candidates[first], dtype=np.int64)
                second_cand = np.asarray(candidates[second], dtype=np.int64)
                first_codes = codes[first_cand]
                second_codes = codes[second_cand]
                common = np.intersect1d(first_codes, second_codes)
                if common.size != np.unique(first_codes).size:
                    candidates[first] = first_cand[np.isin(first_codes, common)]
                if common.size != np.unique(second_codes).size:
                    candidates[second] = second_cand[np.isin(second_codes, common)]
            else:
                first_codes = {codes[v] for v in candidates[first]}
                second_codes = {codes[v] for v in candidates[second]}
                common = first_codes & second_codes
                if common != first_codes:
                    candidates[first] = [
                        v for v in candidates[first] if codes[v] in common
                    ]
                if common != second_codes:
                    candidates[second] = [
                        v for v in candidates[second] if codes[v] in common
                    ]

    # -- execution -----------------------------------------------------------

    def matches(self) -> List[Match]:
        """All embeddings, as :class:`Match` objects (join-filtered)."""
        joins = self._pattern.joins()
        embeddings = self.embeddings()
        if joins:
            codes = self._column.label_codes
            embeddings = [
                e for e in embeddings
                if all(codes[e[a]] == codes[e[b]] for a, b in joins)
            ]
        node_ids = self._column.node_ids
        return [
            Match.from_dict({p: int(node_ids[r]) for p, r in e.items()})
            for e in embeddings
        ]

    def embeddings(self) -> List[Dict[int, int]]:
        """All rank embeddings surviving candidate pruning (pre join check)."""
        from repro.queries.treepattern import EDGE_CHILD  # local: avoids an import cycle

        candidates = self._seed_candidates()
        self._semijoin_filter(candidates)
        self._push_down_joins(candidates)
        root = self._pattern.root
        if not len(candidates[root]):
            return []

        column = self._column
        np = _columnar._np
        last = column.last_ranks
        pattern_children = self._pattern.pattern_children
        specs = self._specs

        if np is not None:
            def descendant_slice(cand, lo: int, hi: int):
                start = int(np.searchsorted(cand, lo, side="right"))
                stop = int(np.searchsorted(cand, hi, side="right"))
                return cand[start:stop]

            def allowed_children(cand, children):
                if not len(children) or not len(cand):
                    return children[:0]
                index = np.searchsorted(cand, children)
                safe = np.minimum(index, len(cand) - 1)
                keep = (index < len(cand)) & (
                    np.asarray(cand, dtype=np.int64)[safe] == children
                )
                return children[keep]
        else:
            from bisect import bisect_left

            def descendant_slice(cand, lo: int, hi: int):
                return cand[bisect_right(cand, lo) : bisect_right(cand, hi)]

            def allowed_children(cand, children):
                out = []
                for child in children:
                    position = bisect_left(cand, child)
                    if position < len(cand) and cand[position] == child:
                        out.append(child)
                return out

        memo: Dict[Tuple[int, int], List[Dict[int, int]]] = {}

        def embed(pattern_node: int, rank: int) -> List[Dict[int, int]]:
            key = (pattern_node, rank)
            cached = memo.get(key)
            if cached is not None:
                return cached
            partials: List[Dict[int, int]] = [{pattern_node: rank}]
            for child_id in pattern_children(pattern_node):
                if specs[child_id].edge == EDGE_CHILD:
                    child_ranks = allowed_children(
                        candidates[child_id], column.children_of(rank)
                    )
                else:
                    child_ranks = descendant_slice(
                        candidates[child_id], rank, last[rank]
                    )
                child_embeddings: List[Dict[int, int]] = []
                for child_rank in child_ranks:
                    child_embeddings.extend(embed(child_id, int(child_rank)))
                if not child_embeddings:
                    memo[key] = []
                    return memo[key]
                partials = [
                    {**left, **right}
                    for left in partials
                    for right in child_embeddings
                ]
            memo[key] = partials
            return partials

        return embed(root, 0)


def indexed_matches(pattern, tree: DataTree, index: Optional[TreeIndex] = None) -> List[Match]:
    """Convenience: compile and execute a plan for *pattern* on *tree*."""
    return PatternPlan(pattern, tree, index).matches()


def columnar_matches(pattern, source, stats=None) -> List[Match]:
    """Convenience: columnar-match *pattern* against a tree or a column.

    *source* is either a :class:`DataTree` (its cached column is fetched
    through :func:`~repro.trees.columnar.columnar_tree` — journal-patched
    forward when stale-but-patchable, rebuilt otherwise) or a
    :class:`ColumnarTree` directly (e.g. one loaded from disk).  *stats*
    (a ``ContextStats``) receives the ``columns_patched`` /
    ``column_rebuilds`` maintenance counters when given.
    """
    if isinstance(source, ColumnarTree):
        column = source
    else:
        column = columnar_tree(source, stats)
    return ColumnarPlan(pattern, column).matches()


__all__ = [
    "MATCHER_MODES",
    "DEFAULT_MATCHER",
    "require_matcher_mode",
    "PatternPlan",
    "ColumnarPlan",
    "indexed_matches",
    "columnar_matches",
]
