"""Compiled tree-pattern evaluation plans (the ``"indexed"`` matcher).

The naive matcher in :mod:`repro.queries.treepattern` backtracks over the
tree directly: every descendant edge re-walks ``tree.descendants()``, label
tests are per-node string comparisons, and shared subpatterns are re-matched
once per enclosing candidate.  This module lowers a pattern into a bottom-up
plan executed against a :class:`~repro.trees.index.TreeIndex`:

1. **candidate seeding** — each pattern node starts from the label inverted
   index (or the full preorder for wildcards), so label selectivity is
   exploited before any structure is looked at;
2. **bottom-up structural semijoins** — candidates of a pattern node are
   filtered to those with at least one structurally-related candidate per
   pattern child: child edges through a parent-set semijoin, descendant
   edges through binary search on preorder intervals;
3. **join pushdown** — a label-equality join restricts both endpoints to
   the intersection of their candidates' label sets before any embedding is
   enumerated;
4. **memoized embedding enumeration** — embeddings of the subpattern rooted
   at ``p`` with ``p ↦ v`` are computed once per ``(p, v)`` pair, so a
   subpattern reachable from many candidates is matched exactly once.

The two matchers are observationally identical — they return the same
embedding sets (the plan only ever *prunes* candidates that cannot occur in
an embedding, and the enumeration re-verifies every edge) — so the naive
matcher is kept as a differential-testing oracle, mirroring the
``engine="enumerate"`` convention of :mod:`repro.core.probability`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.queries.base import Match
from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import TreeIndex, tree_index
from repro.utils.errors import QueryError

#: The matcher modes understood throughout the library.
MATCHER_MODES = ("indexed", "naive")

#: The matcher used when callers do not choose one.
DEFAULT_MATCHER = "indexed"


def require_matcher_mode(mode: Optional[str]) -> str:
    """Validate a ``matcher=`` argument; ``None`` selects the default."""
    if mode is None:
        return DEFAULT_MATCHER
    if mode not in MATCHER_MODES:
        raise QueryError(
            f"unknown matcher {mode!r}; expected one of {MATCHER_MODES}"
        )
    return mode


class PatternPlan:
    """A compiled evaluation plan for one pattern against one indexed tree.

    The plan is cheap to build (a few linear passes over candidate lists)
    and single-use: build, call :meth:`matches`, discard.  The underlying
    :class:`TreeIndex` is shared through :func:`tree_index`, so evaluating
    many patterns against the same tree pays the O(n) index build once.
    """

    def __init__(
        self, pattern, tree: DataTree, index: Optional[TreeIndex] = None
    ) -> None:
        self._pattern = pattern
        self._tree = tree
        self._index = index if index is not None else tree_index(tree)
        self._specs = {spec.node_id: spec for spec in pattern.pattern_nodes()}
        # Children-before-parents order over pattern nodes (patterns are tiny,
        # so a sort by depth-from-root computed by chasing parents is fine).
        self._postorder = self._pattern_postorder()

    # -- plan construction ---------------------------------------------------

    def _pattern_postorder(self) -> List[int]:
        pattern = self._pattern
        order: List[int] = []
        stack = [pattern.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(pattern.pattern_children(node))
        order.reverse()
        return order

    def _seed_candidates(self) -> Dict[int, List[NodeId]]:
        """Per-pattern-node candidate lists from the label index, in preorder."""
        tree, index = self._tree, self._index
        from repro.queries.treepattern import WILDCARD  # local: avoids an import cycle

        root = tree.root
        candidates: Dict[int, List[NodeId]] = {}
        for node_id, spec in self._specs.items():
            if node_id == self._pattern.root:
                matched = spec.label_matches(tree.root_label)
                candidates[node_id] = [root] if matched else []
                continue
            # Non-root pattern nodes sit strictly below the pattern root,
            # which is pinned to the tree root — drop the root candidate.
            # Posting lists are preorder-sorted, so the root can only be first.
            if spec.label == WILDCARD:
                pool = index.nodes_in_preorder()
            else:
                pool = index.nodes_with_label(spec.label)
            candidates[node_id] = list(pool[1:] if pool and pool[0] == root else pool)
        return candidates

    def _semijoin_filter(self, candidates: Dict[int, List[NodeId]]) -> None:
        """Bottom-up: keep candidates with structural support for every child."""
        from repro.queries.treepattern import EDGE_CHILD  # local: avoids an import cycle

        tree = self._tree
        pre = self._index.preorder_map()
        last = self._index.subtree_last_map()
        for node_id in self._postorder:
            for child_id in self._pattern.pattern_children(node_id):
                child_candidates = candidates[child_id]
                if not child_candidates:
                    candidates[node_id] = []
                    break
                if self._specs[child_id].edge == EDGE_CHILD:
                    parents = {tree.parent(u) for u in child_candidates}
                    candidates[node_id] = [v for v in candidates[node_id] if v in parents]
                else:
                    # Both lists are in preorder, so the first child candidate
                    # past each interval start is found by a single merge pass.
                    pres = [pre[u] for u in child_candidates]
                    count = len(pres)
                    kept = []
                    cursor = 0
                    for v in candidates[node_id]:
                        lo = pre[v]
                        while cursor < count and pres[cursor] <= lo:
                            cursor += 1
                        if cursor < count and pres[cursor] <= last[v]:
                            kept.append(v)
                    candidates[node_id] = kept

    def _push_down_joins(self, candidates: Dict[int, List[NodeId]]) -> None:
        """Restrict join endpoints to the labels both sides can produce."""
        tree = self._tree
        for first, second in self._pattern.joins():
            first_labels = {tree.label(v) for v in candidates[first]}
            second_labels = {tree.label(v) for v in candidates[second]}
            common = first_labels & second_labels
            if common != first_labels:
                candidates[first] = [
                    v for v in candidates[first] if tree.label(v) in common
                ]
            if common != second_labels:
                candidates[second] = [
                    v for v in candidates[second] if tree.label(v) in common
                ]

    # -- execution -----------------------------------------------------------

    def matches(self) -> List[Match]:
        """All embeddings, as :class:`Match` objects (join-filtered)."""
        joins = self._pattern.joins()
        embeddings = self.embeddings()
        if joins:
            label = self._tree.label
            embeddings = [
                e for e in embeddings
                if all(label(e[a]) == label(e[b]) for a, b in joins)
            ]
        return [Match.from_dict(e) for e in embeddings]

    def embeddings(self) -> List[Dict[int, NodeId]]:
        """All embeddings surviving candidate pruning, before the final join check.

        Join-label pushdown has already been applied, so embeddings whose
        join endpoints cannot possibly carry equal labels are pruned here;
        the exact per-embedding join equality test happens in
        :meth:`matches`.  Use :meth:`matches` for the join-complete result.
        """
        from repro.queries.treepattern import EDGE_CHILD  # local: avoids an import cycle

        candidates = self._seed_candidates()
        self._semijoin_filter(candidates)
        self._push_down_joins(candidates)
        root = self._pattern.root
        if not candidates[root]:
            return []

        tree = self._tree
        pre = self._index.preorder_map()
        last = self._index.subtree_last_map()
        pattern_children = self._pattern.pattern_children
        specs = self._specs
        candidate_sets = {node_id: set(nodes) for node_id, nodes in candidates.items()}
        candidate_pres = {
            node_id: [pre[u] for u in nodes] for node_id, nodes in candidates.items()
        }
        memo: Dict[Tuple[int, NodeId], List[Dict[int, NodeId]]] = {}

        def embed(pattern_node: int, tree_node: NodeId) -> List[Dict[int, NodeId]]:
            key = (pattern_node, tree_node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            partials: List[Dict[int, NodeId]] = [{pattern_node: tree_node}]
            for child_id in pattern_children(pattern_node):
                if specs[child_id].edge == EDGE_CHILD:
                    allowed = candidate_sets[child_id]
                    child_nodes: Sequence[NodeId] = [
                        u for u in tree.children(tree_node) if u in allowed
                    ]
                else:
                    pres = candidate_pres[child_id]
                    start = bisect_right(pres, pre[tree_node])
                    stop = bisect_right(pres, last[tree_node])
                    child_nodes = candidates[child_id][start:stop]
                child_embeddings: List[Dict[int, NodeId]] = []
                for u in child_nodes:
                    child_embeddings.extend(embed(child_id, u))
                if not child_embeddings:
                    memo[key] = []
                    return memo[key]
                partials = [
                    {**left, **right}
                    for left in partials
                    for right in child_embeddings
                ]
            memo[key] = partials
            return partials

        return embed(root, tree.root)


def indexed_matches(pattern, tree: DataTree, index: Optional[TreeIndex] = None) -> List[Match]:
    """Convenience: compile and execute a plan for *pattern* on *tree*."""
    return PatternPlan(pattern, tree, index).matches()


__all__ = [
    "MATCHER_MODES",
    "DEFAULT_MATCHER",
    "require_matcher_mode",
    "PatternPlan",
    "indexed_matches",
]
