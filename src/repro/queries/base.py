"""Query abstraction (Definition 6) and query matches.

A query maps every data tree ``t`` to a set of sub-datatrees of ``t``.  A
query is *locally monotone* when membership of a sub-datatree in the answer
only depends on the part of the tree below it: for ``u ≤ t' ≤ t``,
``u ∈ Q(t) ⇔ u ∈ Q(t')``.  The paper shows (Theorem 1) that for locally
monotone queries, evaluation over a prob-tree reduces to evaluation over its
underlying data tree; tree-pattern queries with joins are the canonical
example, negative queries the canonical counter-example.

Queries here expose two granularities:

* :meth:`Query.matches` — the individual embeddings (each giving the mapping
  ``µ_Q`` from query nodes to tree nodes that updates need, Appendix A);
* :meth:`Query.results` — the *set* of answer sub-datatrees of Definition 6
  (several matches may induce the same sub-datatree).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.trees.datatree import DataTree, NodeId
from repro.trees.subdatatree import enumerate_sub_datatrees, is_sub_datatree

QueryNodeId = Hashable


@dataclass(frozen=True)
class Match:
    """One embedding of a query into a data tree.

    Attributes:
        mapping: the ``µ_Q`` function from query node identifiers to tree
            node identifiers.
    """

    mapping: Tuple[Tuple[QueryNodeId, NodeId], ...]

    @staticmethod
    def from_dict(mapping: Dict[QueryNodeId, NodeId]) -> "Match":
        try:
            # Query node ids are usually all ints (tree patterns), where the
            # natural order is well defined and much cheaper than repr.
            return Match(tuple(sorted(mapping.items())))
        except TypeError:
            return Match(tuple(sorted(mapping.items(), key=lambda item: repr(item[0]))))

    def as_dict(self) -> Dict[QueryNodeId, NodeId]:
        return dict(self.mapping)

    def target(self, query_node: QueryNodeId) -> NodeId:
        """The tree node a given query node is mapped to."""
        for key, value in self.mapping:
            if key == query_node:
                return value
        raise KeyError(query_node)

    def matched_nodes(self) -> FrozenSet[NodeId]:
        """The set of tree nodes in the image of the embedding."""
        return frozenset(value for _, value in self.mapping)

    def answer_nodes(self, tree: DataTree) -> FrozenSet[NodeId]:
        """Nodes of the answer sub-datatree: image plus the path to the root."""
        return tree.ancestor_closure(self.matched_nodes())


class Query(ABC):
    """A query over data trees (Definition 6)."""

    #: Whether the query is (claimed to be) locally monotone.  Evaluation on
    #: prob-trees (Definition 8) is only sound for locally monotone queries;
    #: :func:`is_locally_monotone_on` provides an empirical check.
    locally_monotone: bool = True

    @abstractmethod
    def matches(self, tree: DataTree) -> List[Match]:
        """All embeddings of the query into *tree*."""

    def matches_with(
        self, tree: DataTree, matcher: Optional[str] = None, context=None
    ) -> List[Match]:
        """Embeddings via a named matcher (``"indexed"`` | ``"naive"``).

        Query classes with alternative matching strategies (notably
        :class:`~repro.queries.treepattern.TreePattern`) override this to
        dispatch; the default ignores *matcher* and *context* so ad-hoc query
        classes only have to implement :meth:`matches`.
        """
        return self.matches(tree)

    def results(
        self, tree: DataTree, matcher: Optional[str] = None, context=None
    ) -> List[DataTree]:
        """The answer set ``Q(t)``: distinct sub-datatrees induced by matches."""
        seen: set = set()
        answers: List[DataTree] = []
        for match in self.matches_with(tree, matcher, context=context):
            nodes = match.answer_nodes(tree)
            if nodes not in seen:
                seen.add(nodes)
                answers.append(tree.restrict(nodes))
        return answers

    def result_node_sets(
        self, tree: DataTree, matcher: Optional[str] = None, context=None
    ) -> List[FrozenSet[NodeId]]:
        """Node sets of the distinct answer sub-datatrees (cheaper than trees)."""
        seen: set = set()
        ordered: List[FrozenSet[NodeId]] = []
        for match in self.matches_with(tree, matcher, context=context):
            nodes = match.answer_nodes(tree)
            if nodes not in seen:
                seen.add(nodes)
                ordered.append(nodes)
        return ordered

    def selects(
        self, tree: DataTree, matcher: Optional[str] = None, context=None
    ) -> bool:
        """Whether the query has at least one match on *tree*."""
        return bool(self.matches_with(tree, matcher, context=context))

    def __call__(self, tree: DataTree) -> List[DataTree]:
        return self.results(tree)


class LocallyMonotoneQuery(Query):
    """Marker base class for queries known to be locally monotone."""

    locally_monotone = True


def is_locally_monotone_on(query: Query, tree: DataTree) -> bool:
    """Empirically check local monotonicity of *query* on *tree*.

    Verifies condition (ii) of Definition 6 — ``Q(t') = Q(t) ∩ Sub(t')`` for
    every sub-datatree ``t'`` of *tree*.  Exponential in the size of *tree*
    (it enumerates ``Sub(t)``), so only suitable for small trees; used by the
    test suite as an oracle on the query languages shipped here.
    """
    full_answers = {frozenset(answer.nodes()) for answer in query.results(tree)}
    for restricted in enumerate_sub_datatrees(tree):
        restricted_nodes = set(restricted.nodes())
        restricted_answers = {
            frozenset(answer.nodes()) for answer in query.results(restricted)
        }
        expected = {
            nodes for nodes in full_answers if set(nodes) <= restricted_nodes
        }
        if restricted_answers != expected:
            return False
    return True


__all__ = ["QueryNodeId", "Match", "Query", "LocallyMonotoneQuery", "is_locally_monotone_on"]
