"""Aggregate queries over prob-trees.

The paper's conclusion singles out aggregate functions as future work and
remarks that the multiset semantics should make them easier.  The canonical
aggregate over a tree-pattern query is the *number of matches*; this module
provides:

* :func:`expected_match_count` — the expectation of the answer count, exact
  and polynomial-time: by linearity of expectation it is simply the sum of
  the per-answer probabilities (this is where the multiset semantics pays
  off — no inclusion–exclusion is needed);
* :func:`match_count_distribution` — the exact distribution of the count,
  obtained by enumerating the worlds spanned by the events the answers
  actually touch (exponential in that number, unavoidable in general);
* :func:`probability_count_at_least` — tail probabilities derived from the
  distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.context import ExecutionContext, resolve_context
from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition, all_worlds
from repro.queries.base import Query
from repro.utils.errors import QueryError


def _answer_conditions(
    query: Query, probtree: ProbTree, ctx: ExecutionContext
) -> List[Condition]:
    if not query.locally_monotone:
        raise QueryError("aggregates are only defined for locally monotone queries")
    conditions = []
    for nodes in ctx.result_node_sets(query, probtree.tree):
        condition = Condition.conjoin_all(probtree.condition(node) for node in nodes)
        if condition.is_consistent():
            conditions.append(condition)
    return conditions


def expected_match_count(
    query: Query,
    probtree: ProbTree,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> float:
    """Expected number of answers of *query* over the possible worlds.

    Runs in time ``O(|Q(t)| · |T|)`` — each answer contributes the probability
    of its condition bundle, and expectations add up regardless of
    correlations between answers.
    """
    ctx = resolve_context(context, matcher=matcher)
    distribution = probtree.distribution.as_dict()
    return sum(
        condition.probability(distribution)
        for condition in _answer_conditions(query, probtree, ctx)
    )


def match_count_distribution(
    query: Query,
    probtree: ProbTree,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[int, float]:
    """Exact distribution of the number of answers.

    The enumeration is restricted to the events mentioned by at least one
    answer's condition, so the cost is ``2^{#touched events}`` rather than
    ``2^{|W|}``; it is still exponential in the worst case (computing even the
    probability that the count is zero subsumes the boolean-query problem the
    paper shows hard for the formula variant).
    """
    ctx = resolve_context(context, matcher=matcher)
    conditions = _answer_conditions(query, probtree, ctx)
    touched = sorted(set().union(*(c.events() for c in conditions)) if conditions else set())
    distribution = probtree.distribution
    result: Dict[int, float] = {}
    for world in all_worlds(touched):
        probability = distribution.world_probability(world, over=touched)
        count = sum(1 for condition in conditions if condition.holds_in(world))
        result[count] = result.get(count, 0.0) + probability
    if not conditions:
        result = {0: 1.0}
    return dict(sorted(result.items()))


def probability_count_at_least(
    query: Query,
    probtree: ProbTree,
    k: int,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> float:
    """Probability that the query has at least *k* answers."""
    if k <= 0:
        return 1.0
    distribution = match_count_distribution(
        query, probtree, matcher=matcher, context=context
    )
    return sum(probability for count, probability in distribution.items() if count >= k)


def variance_of_match_count(
    query: Query,
    probtree: ProbTree,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> float:
    """Variance of the number of answers (via the exact distribution)."""
    distribution = match_count_distribution(
        query, probtree, matcher=matcher, context=context
    )
    mean = sum(count * probability for count, probability in distribution.items())
    return sum(
        probability * (count - mean) ** 2 for count, probability in distribution.items()
    )


__all__ = [
    "expected_match_count",
    "match_count_distribution",
    "probability_count_at_least",
    "variance_of_match_count",
]
