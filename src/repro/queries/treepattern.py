"""Tree-pattern queries with joins.

This is the concrete locally monotone query language the paper (and [3])
works with.  A pattern is itself a small unordered tree:

* every pattern node has a *label constraint* — either an exact label or the
  wildcard ``"*"``;
* every non-root pattern node is connected to its parent by either a
  **child** edge (the matched tree node must be a child of the parent's
  match) or a **descendant** edge (a strict descendant);
* *joins* are equality constraints between the labels of the tree nodes
  matched by two pattern nodes (this models value joins in a data model that
  does not distinguish text from element labels).

The pattern root is matched against the tree root (use a wildcard root with
a descendant edge to express "anywhere in the document").  An embedding is a
mapping from pattern nodes to tree nodes respecting labels, edges and joins;
it need not be injective.  The answer for an embedding is the sub-datatree
induced by the image plus the path to the root, which makes the query
locally monotone: whether an embedding exists only depends on the presence
of the matched nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.queries.base import LocallyMonotoneQuery, Match
from repro.trees.datatree import DataTree, NodeId
from repro.utils.errors import QueryError

WILDCARD = "*"

EDGE_CHILD = "child"
EDGE_DESCENDANT = "descendant"


@dataclass(frozen=True)
class PatternNode:
    """A node of a tree pattern."""

    node_id: int
    label: str
    edge: str = EDGE_CHILD  # edge to the parent (ignored for the root)

    def label_matches(self, candidate: str) -> bool:
        return self.label == WILDCARD or self.label == candidate


class TreePattern(LocallyMonotoneQuery):
    """A tree-pattern query with (label-equality) joins.

    Patterns are built imperatively, mirroring :class:`DataTree`::

        q = TreePattern("A")
        b = q.add_child(q.root, "B")
        c = q.add_child(q.root, "*", edge="descendant")
        q.add_join(b, c)           # matched labels must coincide
    """

    def __init__(self, root_label: str = WILDCARD) -> None:
        self._nodes: Dict[int, PatternNode] = {0: PatternNode(0, str(root_label))}
        self._children: Dict[int, List[int]] = {0: []}
        self._parent: Dict[int, Optional[int]] = {0: None}
        self._joins: List[Tuple[int, int]] = []
        self._next_id = 1

    # -- construction ------------------------------------------------------

    @property
    def root(self) -> int:
        return 0

    def add_child(self, parent: int, label: str, edge: str = EDGE_CHILD) -> int:
        """Add a pattern node under *parent*; returns its identifier."""
        if parent not in self._nodes:
            raise QueryError(f"unknown pattern node {parent!r}")
        if edge not in (EDGE_CHILD, EDGE_DESCENDANT):
            raise QueryError(f"edge must be 'child' or 'descendant', got {edge!r}")
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = PatternNode(node_id, str(label), edge)
        self._children[node_id] = []
        self._parent[node_id] = parent
        self._children[parent].append(node_id)
        return node_id

    def add_join(self, first: int, second: int) -> None:
        """Require the labels matched by two pattern nodes to be equal."""
        for node in (first, second):
            if node not in self._nodes:
                raise QueryError(f"unknown pattern node {node!r}")
        if first == second:
            raise QueryError("a join must relate two distinct pattern nodes")
        self._joins.append((first, second))

    # -- inspection --------------------------------------------------------

    def pattern_nodes(self) -> List[PatternNode]:
        return [self._nodes[node_id] for node_id in sorted(self._nodes)]

    def pattern_children(self, node: int) -> Tuple[int, ...]:
        return tuple(self._children[node])

    def joins(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._joins)

    def node_count(self) -> int:
        return len(self._nodes)

    def fingerprint(self) -> tuple:
        """A hashable encoding of the pattern's structure, labels and joins.

        Two patterns with equal fingerprints select the same answers on every
        tree, which is what the :class:`~repro.core.context.ExecutionContext`
        answer-set cache keys on (together with the tree version).  Computed
        fresh on every call — patterns are tiny and mutable (``add_child`` /
        ``add_join``), so caching the value would risk staleness.
        """
        return (
            "tree-pattern",
            tuple(
                (spec.node_id, spec.label, spec.edge, self._parent[spec.node_id])
                for spec in (self._nodes[node_id] for node_id in sorted(self._nodes))
            ),
            tuple(self._joins),
        )

    def label_set(self) -> Optional[FrozenSet[str]]:
        """The tree labels this pattern constrains, or ``None`` for wildcards.

        The context answer cache uses this as the invalidation fingerprint:
        a mutation can only change the pattern's answers when it touches one
        of these labels (matched nodes carry exactly these labels, and any
        mutation reaching an answer's unmatched ancestors necessarily
        removes a matched node too).  A pattern containing a wildcard step
        can match anything, so it returns ``None`` — "invalidate on every
        mutation".  Computed fresh per call, like :meth:`fingerprint`.
        """
        labels: Set[str] = set()
        for spec in self._nodes.values():
            if spec.label == WILDCARD:
                return None
            labels.add(spec.label)
        return frozenset(labels)

    # -- evaluation ---------------------------------------------------------

    def matches(
        self,
        tree: DataTree,
        matcher: Optional[str] = None,
        context=None,
    ) -> List[Match]:
        """All embeddings of the pattern into *tree*.

        ``matcher`` selects the evaluation strategy:

        * ``"indexed"`` (default) — compile the pattern into a bottom-up plan
          executed against the tree's shared structural index
          (:mod:`repro.queries.plan`);
        * ``"columnar"`` — the same plan shape executed as vectorized
          interval merges over the tree's cached
          :class:`~repro.trees.columnar.ColumnarTree` snapshot;
        * ``"naive"`` — the direct backtracking matcher below, kept as a
          differential-testing oracle (mirroring ``engine="enumerate"``);
        * ``"auto"`` — defer to the context's cost model (columnar for big
          trees or warm columns, naive for tiny pattern×tree products,
          indexed otherwise).

        ``context`` (an :class:`~repro.core.context.ExecutionContext`)
        supplies the default mode and collects stats; when omitted, the
        module default context is used.  All strategies return the same
        embedding list (identical order included).
        """
        from repro.core.context import resolve_context  # local: avoids an import cycle
        from repro.queries.plan import ColumnarPlan, PatternPlan

        ctx = resolve_context(context)
        effective = ctx.effective_matcher(self, tree, matcher)
        if effective == "naive":
            return self.matches_naive(tree)
        ctx.note_plan_compiled()
        if effective == "columnar":
            from repro.trees.columnar import columnar_tree

            # The accessor patches a stale-but-patchable cached column (or
            # rebuilds); the context's stats record which maintenance path
            # each evaluation actually paid.
            return ColumnarPlan(self, columnar_tree(tree, ctx.stats)).matches()
        return PatternPlan(self, tree).matches()

    def matches_with(
        self, tree: DataTree, matcher: Optional[str] = None, context=None
    ) -> List[Match]:
        return self.matches(tree, matcher=matcher, context=context)

    def matches_naive(self, tree: DataTree) -> List[Match]:
        """The reference backtracking matcher (the ``"naive"`` oracle)."""
        root_pattern = self._nodes[0]
        if not root_pattern.label_matches(tree.root_label):
            return []
        embeddings = self._match_subpattern(tree, 0, tree.root)
        result = []
        for embedding in embeddings:
            if self._joins_satisfied(tree, embedding):
                result.append(Match.from_dict(embedding))
        return result

    def _match_subpattern(
        self, tree: DataTree, pattern_node: int, tree_node: NodeId
    ) -> List[Dict[int, NodeId]]:
        """Embeddings of the pattern subtree at *pattern_node*, with that node pinned."""
        partials: List[Dict[int, NodeId]] = [{pattern_node: tree_node}]
        for pattern_child in self._children[pattern_node]:
            child_spec = self._nodes[pattern_child]
            if child_spec.edge == EDGE_CHILD:
                candidates: Iterable[NodeId] = tree.children(tree_node)
            else:
                candidates = tree.descendants(tree_node)
            child_embeddings: List[Dict[int, NodeId]] = []
            for candidate in candidates:
                if not child_spec.label_matches(tree.label(candidate)):
                    continue
                child_embeddings.extend(
                    self._match_subpattern(tree, pattern_child, candidate)
                )
            if not child_embeddings:
                return []
            partials = [
                {**left, **right}
                for left in partials
                for right in child_embeddings
            ]
        return partials

    def _joins_satisfied(self, tree: DataTree, embedding: Dict[int, NodeId]) -> bool:
        for first, second in self._joins:
            if tree.label(embedding[first]) != tree.label(embedding[second]):
                return False
        return True

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"TreePattern(nodes={len(self._nodes)}, joins={len(self._joins)}, "
            f"root={self._nodes[0].label!r})"
        )


def child_chain(labels: Sequence[str]) -> TreePattern:
    """A pattern matching a root-to-node chain of child edges with *labels*.

    ``child_chain(["A", "B", "C"])`` matches documents whose root is ``A``
    with a ``B`` child that has a ``C`` child.
    """
    if not labels:
        raise QueryError("child_chain needs at least a root label")
    pattern = TreePattern(labels[0])
    current = pattern.root
    for label in labels[1:]:
        current = pattern.add_child(current, label)
    return pattern


def root_has_child(root_label: str, child_label: str) -> TreePattern:
    """Pattern: the root (labeled *root_label* or ``*``) has a *child_label* child."""
    pattern = TreePattern(root_label)
    pattern.add_child(pattern.root, child_label)
    return pattern


def descendant_anywhere(label: str) -> TreePattern:
    """Pattern: some node labeled *label* appears anywhere below the root."""
    pattern = TreePattern(WILDCARD)
    pattern.add_child(pattern.root, label, edge=EDGE_DESCENDANT)
    return pattern


__all__ = [
    "WILDCARD",
    "EDGE_CHILD",
    "EDGE_DESCENDANT",
    "PatternNode",
    "TreePattern",
    "child_chain",
    "root_has_child",
    "descendant_anywhere",
]
