"""Queries over data trees, possible-world sets and prob-trees.

* :mod:`repro.queries.base` — the query abstraction (Definition 6), matches
  (the ``µ_Q`` mappings of Appendix A) and the locally-monotone marker;
* :mod:`repro.queries.treepattern` — tree-pattern queries with joins, the
  concrete locally monotone language of [3] / Theorem 1;
* :mod:`repro.queries.path` — a tiny XPath-like path syntax compiled to tree
  patterns (convenience layer for examples and workloads);
* :mod:`repro.queries.plan` — compiled tree-pattern plans over structural
  indexes (the ``"indexed"`` matcher; ``"naive"`` backtracking is the oracle);
* :mod:`repro.queries.evaluation` — evaluation on data trees, on PW sets
  (Definition 7) and on prob-trees (Definition 8 / Theorem 1), with batch
  entry points sharing the index and formula caches across queries.
"""

from repro.queries.base import Match, Query, LocallyMonotoneQuery, is_locally_monotone_on
from repro.queries.treepattern import PatternNode, TreePattern
from repro.queries.path import parse_path
from repro.queries.plan import (
    MATCHER_MODES,
    PatternPlan,
    indexed_matches,
    require_matcher_mode,
)
from repro.queries.evaluation import (
    QueryAnswer,
    evaluate_on_datatree,
    evaluate_on_pwset,
    evaluate_on_probtree,
    evaluate_many,
    boolean_probability,
    boolean_probability_many,
    answers_isomorphic,
)

__all__ = [
    "Match",
    "Query",
    "LocallyMonotoneQuery",
    "is_locally_monotone_on",
    "PatternNode",
    "TreePattern",
    "parse_path",
    "MATCHER_MODES",
    "PatternPlan",
    "indexed_matches",
    "require_matcher_mode",
    "QueryAnswer",
    "evaluate_on_datatree",
    "evaluate_on_pwset",
    "evaluate_on_probtree",
    "evaluate_many",
    "boolean_probability",
    "boolean_probability_many",
    "answers_isomorphic",
]
