"""Queries over data trees, possible-world sets and prob-trees.

* :mod:`repro.queries.base` — the query abstraction (Definition 6), matches
  (the ``µ_Q`` mappings of Appendix A) and the locally-monotone marker;
* :mod:`repro.queries.treepattern` — tree-pattern queries with joins, the
  concrete locally monotone language of [3] / Theorem 1;
* :mod:`repro.queries.path` — a tiny XPath-like path syntax compiled to tree
  patterns (convenience layer for examples and workloads);
* :mod:`repro.queries.evaluation` — evaluation on data trees, on PW sets
  (Definition 7) and on prob-trees (Definition 8 / Theorem 1).
"""

from repro.queries.base import Match, Query, LocallyMonotoneQuery, is_locally_monotone_on
from repro.queries.treepattern import PatternNode, TreePattern
from repro.queries.path import parse_path
from repro.queries.evaluation import (
    QueryAnswer,
    evaluate_on_datatree,
    evaluate_on_pwset,
    evaluate_on_probtree,
    boolean_probability,
    answers_isomorphic,
)

__all__ = [
    "Match",
    "Query",
    "LocallyMonotoneQuery",
    "is_locally_monotone_on",
    "PatternNode",
    "TreePattern",
    "parse_path",
    "QueryAnswer",
    "evaluate_on_datatree",
    "evaluate_on_pwset",
    "evaluate_on_probtree",
    "boolean_probability",
    "answers_isomorphic",
]
