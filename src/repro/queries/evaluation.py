"""Query evaluation on data trees, possible-world sets and prob-trees.

Three evaluation modes, mirroring the paper:

* on a **data tree** — just run the query (Definition 6);
* on a **PW set** — run the query in every world and keep the world's
  probability (Definition 7); answers do not sum to 1.  Worlds are first
  grouped by canonical encoding so each isomorphism class is queried once
  (answers are still emitted per original world);
* on a **prob-tree** — run the query once on the underlying data tree and
  attach to every answer the probability of the conjunction of the conditions
  of its nodes (Definition 8).  Theorem 1 states the last two agree up to
  isomorphism for locally monotone queries; :func:`answers_isomorphic` is the
  comparison used by the test suite to check exactly that.

Every entry point executes under an
:class:`~repro.core.context.ExecutionContext` — pass one with ``context=`` to
share a session's caches (per-probtree Shannon tables, structural indexes and
the answer-set cache) and policy across calls.  The legacy string kwargs
remain as a back-compat shim, each pairing a fast default with a slow
reference kept as a differential-testing oracle:

* ``engine="formula" | "enumerate"`` — how answer probabilities are priced
  (Shannon expansion over event formulas vs. possible-world enumeration, see
  :mod:`repro.core.probability`).  Formula-mode pricing goes through the
  context's hash-consed :class:`~repro.formulas.ir.FormulaPool`: answer
  conditions and boolean-query disjunctions intern to stable node ids, so a
  repeated question over an unchanged document is dictionary probes plus an
  integer-keyed memo hit;
* ``matcher="indexed" | "naive" | "auto"`` — how embeddings are found.
  ``"indexed"`` (default) goes through the compiled three-stage pipeline of
  :mod:`repro.queries.plan`: a shared structural **index** over the tree
  (preorder intervals + label posting lists, :mod:`repro.trees.index`), a
  bottom-up **plan** (candidate seeding, structural semijoins, join
  pushdown), then memoized **embedding enumeration**.  ``"naive"`` is the
  direct backtracking matcher; ``"auto"`` lets the context's cost model pick
  per pattern.  All return identical match sets, so the semantics of
  Definitions 6–8 are untouched by the choice.

Per-call resolution precedence is uniform: an explicit string override wins
over the ``context=`` argument's defaults, which win over the module default
context (see :func:`repro.core.context.resolve_context`).

The ``*_many`` batch entry points evaluate several queries against one
prob-tree: the structural index and the probability engine (with its
memoized formula cache) are resolved once and shared across all queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import ExecutionContext, resolve_context
from repro.core.probability import ProbabilityEngine
from repro.core.probtree import ProbTree
from repro.formulas.compute import dnf_to_expr
from repro.formulas.dnf import DNF
from repro.formulas.sampling import SampleEstimate
from repro.formulas.literals import Condition
from repro.pw.pwset import PWSet
from repro.queries.base import Match, Query
from repro.trees.datatree import DataTree
from repro.trees.isomorphism import canonical_encoding
from repro.utils.errors import QueryError

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class QueryAnswer:
    """One answer sub-datatree together with its probability.

    For evaluation over plain data trees the probability is 1.
    """

    tree: DataTree
    probability: float = 1.0


def evaluate_on_datatree(
    query: Query,
    tree: DataTree,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> List[QueryAnswer]:
    """Evaluate a query on a single data tree (all answers have probability 1)."""
    ctx = resolve_context(context, matcher=matcher)
    return [QueryAnswer(answer, 1.0) for answer in ctx.results(query, tree)]


def evaluate_on_pwset(
    query: Query,
    pwset: PWSet,
    matcher: Optional[str] = None,
    dedup_worlds: bool = True,
    context: Optional[ExecutionContext] = None,
) -> List[QueryAnswer]:
    """Evaluate a query on every possible world (Definition 7).

    With ``dedup_worlds`` (default) worlds are grouped by canonical encoding
    first, so a PW set carrying duplicate (isomorphic) worlds — unnormalized
    sets routinely do — runs the query once per distinct world instead of
    re-matching every duplicate.  Answers are still emitted once per
    *original* world with that world's own probability, so the answer
    multiset (cardinality and per-answer weights) is preserved up to
    isomorphism; note the answers of merged duplicates are sub-datatrees of
    the group's *representative* world.  Callers that resolve answer node
    ids against their own world objects, or feed already-normalized sets
    (where the grouping can only cost one canonical encoding per world
    without merging anything), can pass ``dedup_worlds=False`` for the
    plain world-by-world evaluation.
    """
    ctx = resolve_context(context, matcher=matcher)
    if not dedup_worlds:
        answers: List[QueryAnswer] = []
        for world_tree, probability in pwset:
            for answer in ctx.results(query, world_tree):
                answers.append(QueryAnswer(answer, probability))
        return answers
    grouped: Dict[str, List] = {}
    for world_tree, probability in pwset:
        key = canonical_encoding(world_tree)
        entry = grouped.get(key)
        if entry is None:
            grouped[key] = [world_tree, [probability]]
        else:
            entry[1].append(probability)
    answers = []
    for world_tree, probabilities in grouped.values():
        results = ctx.results(query, world_tree)
        for probability in probabilities:
            for answer in results:
                answers.append(QueryAnswer(answer, probability))
    return answers


def _answers_with_engine(
    query: Query,
    probtree: ProbTree,
    engine: ProbabilityEngine,
    keep_zero_probability: bool,
    ctx: ExecutionContext,
) -> List[QueryAnswer]:
    if not query.locally_monotone:
        raise QueryError(
            "evaluation on prob-trees is only defined for locally monotone queries"
        )
    tree = probtree.tree
    answers: List[QueryAnswer] = []
    for nodes in ctx.result_node_sets(query, tree):
        condition = Condition.conjoin_all(probtree.condition(node) for node in nodes)
        probability = engine.condition_probability(condition)
        if probability <= 0.0 and not keep_zero_probability:
            continue
        answers.append(QueryAnswer(tree.restrict(nodes), probability))
    return answers


def evaluate_on_probtree(
    query: Query,
    probtree: ProbTree,
    keep_zero_probability: bool = False,
    engine: Optional[str] = None,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> List[QueryAnswer]:
    """Evaluate a locally monotone query on a prob-tree (Definition 8).

    The query runs once on the underlying data tree; each answer ``u`` gets
    probability ``eval(⋃_{n ∈ u} γ(n))`` — zero (and dropped by default) when
    the union of conditions is inconsistent.  Answer probabilities go through
    the context's shared :class:`ProbabilityEngine`, so conditions repeated
    across answers (or across queries) are priced once; embeddings are found
    through the context's answer-set cache and matcher policy (see the
    module docstring).

    Raises :class:`QueryError` if the query declares itself non locally
    monotone: Definition 8 is not sound for such queries.

    Repeated evaluations of an equal query against an unchanged prob-tree
    are served from the context's answer cache.  Treat the returned answer
    trees as read-only — the cache shares them verbatim across calls
    (including the populating one); ``answer.tree.copy()`` before mutating.
    """
    ctx = resolve_context(context, engine=engine, matcher=matcher)
    return ctx.cached_answers(
        query,
        probtree,
        keep_zero_probability,
        lambda: _answers_with_engine(
            query, probtree, ctx.engine_for(probtree), keep_zero_probability, ctx
        ),
    )


def evaluate_many(
    queries: Sequence[Query],
    probtree: ProbTree,
    keep_zero_probability: bool = False,
    engine: Optional[str] = None,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> List[List[QueryAnswer]]:
    """Batched Definition 8 evaluation: one answer list per query.

    The shared resources are resolved exactly once for the whole batch: the
    probability engine (and its memoized formula cache) through the context,
    and — when the indexed matcher is selected — the structural
    :class:`~repro.trees.index.TreeIndex` of the underlying data tree, which
    every per-query plan then reuses.
    """
    ctx = resolve_context(context, engine=engine, matcher=matcher)
    shared = ctx.engine_for(probtree)
    if ctx.resolve_matcher() == "indexed":
        ctx.index_for(probtree.tree)  # build once; plans fetch the cached snapshot
    return [
        ctx.cached_answers(
            query,
            probtree,
            keep_zero_probability,
            lambda query=query: _answers_with_engine(
                query, probtree, shared, keep_zero_probability, ctx
            ),
        )
        for query in queries
    ]


def _boolean_dnf(query: Query, probtree: ProbTree, ctx: ExecutionContext) -> DNF:
    """The DNF over answer-condition bundles whose probability is the query's."""
    disjuncts = []
    for nodes in ctx.result_node_sets(query, probtree.tree):
        condition = Condition.conjoin_all(probtree.condition(node) for node in nodes)
        if condition.is_consistent():
            disjuncts.append(condition)
    return DNF(disjuncts)


def boolean_probability(
    query: Query,
    probtree: ProbTree,
    engine: Optional[str] = None,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> float:
    """Probability that the query has at least one answer on the prob-tree.

    The query selects a world iff the condition bundle of at least one answer
    holds, so this is the probability of a DNF over the answers' conditions.
    With ``engine="formula"`` (default) the DNF is evaluated by Shannon
    expansion over only the events it mentions (memoized, shared per
    prob-tree within the context; budgeted when the context's pricing policy
    sets ``max_expansions`` — a typed
    :class:`~repro.utils.errors.BudgetExceededError` then replaces the
    unbounded blowup); ``engine="enumerate"`` enumerates the mentioned
    events' worlds — the exponential reference the paper's Section 5 shows
    is unavoidable in the worst case, kept as a differential oracle;
    ``engine="sample"`` / ``"auto-sample"`` return an anytime Monte-Carlo
    point estimate (see :func:`boolean_probability_anytime` for the full
    interval).
    """
    ctx = resolve_context(context, engine=engine, matcher=matcher)
    disjuncts = _boolean_dnf(query, probtree, ctx)
    if len(disjuncts) == 0:
        return 0.0
    mode = ctx.resolve_engine()
    if mode == "enumerate":
        return disjuncts.probability(probtree.distribution.as_dict())
    return ctx.engine_for(probtree, mode).dnf_probability(disjuncts)


def boolean_probability_anytime(
    query: Query,
    probtree: ProbTree,
    engine: Optional[str] = None,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
    epsilon: Optional[float] = None,
    confidence: Optional[float] = None,
    max_samples: Optional[int] = None,
    deadline: Optional[float] = None,
    seed: Optional[int] = None,
) -> SampleEstimate:
    """Anytime :func:`boolean_probability` with a confidence interval.

    Compiles the answer DNF exactly like :func:`boolean_probability`, then
    estimates its probability by seeded Monte-Carlo, tightening the interval
    until the ``epsilon`` (half-width) / ``max_samples`` / ``deadline``
    budget is hit — per-call knobs override the context policy's.  Small
    DNFs (few mentioned events) and ``engine="enumerate"`` come back exact
    with a zero-width interval.
    """
    ctx = resolve_context(context, engine=engine, matcher=matcher)
    disjuncts = _boolean_dnf(query, probtree, ctx)
    if len(disjuncts) == 0:
        return SampleEstimate(
            estimate=0.0,
            low=0.0,
            high=0.0,
            samples=0,
            confidence=1.0,
            exact=True,
            method="exact",
        )
    shared = ctx.engine_for(probtree, ctx.resolve_engine())
    if shared.mode == "enumerate":
        node: object = dnf_to_expr(disjuncts)
    else:
        node = shared.pool.dnf(disjuncts)
    return shared.probability_anytime(
        node,
        epsilon=epsilon,
        confidence=confidence,
        max_samples=max_samples,
        deadline=deadline,
        seed=seed,
    )


def boolean_probability_many(
    queries: Sequence[Query],
    probtree: ProbTree,
    engine: Optional[str] = None,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> List[float]:
    """Batched :func:`boolean_probability`.

    Like :func:`evaluate_many`, the structural index is built once up front
    (for the indexed matcher) and the context's per-probtree formula cache is
    shared across the whole batch.
    """
    ctx = resolve_context(context, engine=engine, matcher=matcher)
    if ctx.resolve_matcher() == "indexed":
        ctx.index_for(probtree.tree)  # build once; plans fetch the cached snapshot
    return [boolean_probability(query, probtree, context=ctx) for query in queries]


def aggregate_by_isomorphism(answers: List[QueryAnswer]) -> Dict[str, float]:
    """Total probability per isomorphism class of answer trees."""
    totals: Dict[str, float] = {}
    for answer in answers:
        key = canonical_encoding(answer.tree)
        totals[key] = totals.get(key, 0.0) + answer.probability
    return totals


def answers_isomorphic(
    left: List[QueryAnswer], right: List[QueryAnswer], tolerance: float = 1e-6
) -> bool:
    """Whether two answer multisets agree up to isomorphism (Theorem 1's ``∼``)."""
    mine = aggregate_by_isomorphism(left)
    theirs = aggregate_by_isomorphism(right)
    for key in set(mine) | set(theirs):
        if not math.isclose(mine.get(key, 0.0), theirs.get(key, 0.0), abs_tol=tolerance):
            return False
    return True


def top_answers(
    answers: List[QueryAnswer], count: int = 1
) -> List[QueryAnswer]:
    """The *count* most probable answers, aggregating isomorphic duplicates.

    Implements the "rank results by probability" usage sketched in the
    paper's conclusion.
    """
    grouped: Dict[str, QueryAnswer] = {}
    totals: Dict[str, float] = {}
    for answer in answers:
        key = canonical_encoding(answer.tree)
        totals[key] = totals.get(key, 0.0) + answer.probability
        grouped.setdefault(key, answer)
    ranked = sorted(totals.items(), key=lambda item: -item[1])
    return [QueryAnswer(grouped[key].tree, total) for key, total in ranked[:count]]


__all__ = [
    "QueryAnswer",
    "evaluate_on_datatree",
    "evaluate_on_pwset",
    "evaluate_on_probtree",
    "evaluate_many",
    "boolean_probability",
    "boolean_probability_anytime",
    "boolean_probability_many",
    "aggregate_by_isomorphism",
    "answers_isomorphic",
    "top_answers",
]
