"""A tiny XPath-like path syntax compiled to tree patterns.

The paper's motivation is an XML warehouse queried by standard processors;
this module gives examples and workloads a familiar surface syntax without
pulling in a full XPath engine.  Supported grammar::

    path      := "/"? step ("/" step | "//" step)*
    step      := label | "*"
    label     := any run of characters except "/"

``/A/B`` means "root labeled A with a B child"; ``//`` introduces a
descendant edge, so ``/A//C`` matches a C anywhere below an A root and
``//C`` matches a C anywhere in the document (wildcard root).  The answer of
the compiled query is, per Definition 6, the matched chain plus the path to
the root.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.queries.treepattern import (
    EDGE_CHILD,
    EDGE_DESCENDANT,
    WILDCARD,
    TreePattern,
)
from repro.utils.errors import QueryError


def parse_path(expression: str) -> TreePattern:
    """Compile a path expression into a :class:`TreePattern`.

    Raises :class:`QueryError` on empty expressions or empty steps.
    """
    steps = _tokenize(expression)
    if not steps:
        raise QueryError(f"empty path expression: {expression!r}")

    first_edge, first_label = steps[0]
    if first_edge == EDGE_CHILD:
        # "/A/..." anchors the first step at the root.
        pattern = TreePattern(first_label)
        current = pattern.root
        remaining = steps[1:]
    else:
        # "//A/..." searches for the first step anywhere below a wildcard root.
        pattern = TreePattern(WILDCARD)
        current = pattern.add_child(pattern.root, first_label, edge=EDGE_DESCENDANT)
        remaining = steps[1:]

    for edge, label in remaining:
        current = pattern.add_child(current, label, edge=edge)
    return pattern


def _tokenize(expression: str) -> List[Tuple[str, str]]:
    """Split a path expression into ``(edge, label)`` steps."""
    text = expression.strip()
    if not text:
        return []
    if not text.startswith("/"):
        text = "/" + text

    steps: List[Tuple[str, str]] = []
    index = 0
    length = len(text)
    while index < length:
        if text.startswith("//", index):
            edge = EDGE_DESCENDANT
            index += 2
        elif text.startswith("/", index):
            edge = EDGE_CHILD
            index += 1
        else:  # pragma: no cover - unreachable given the scan below
            raise QueryError(f"malformed path expression: {expression!r}")
        end = text.find("/", index)
        if end == -1:
            end = length
        label = text[index:end]
        if not label:
            raise QueryError(f"empty step in path expression: {expression!r}")
        steps.append((edge, label))
        index = end
    return steps


__all__ = ["parse_path"]
