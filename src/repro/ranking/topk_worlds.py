"""Lazy enumeration of the most probable worlds of a prob-tree.

Computing ``⟦T⟧`` costs ``2^{|W|}`` world evaluations, but retrieving only the
few most probable worlds does not have to: because events are independent,
the probability of a partial valuation can be bounded by assigning every
undecided event its more probable value.  A best-first search over partial
valuations therefore emits complete worlds in non-increasing probability
order, touching only the prefixes whose optimistic bound stays above the
answers already produced (a classical branch-and-bound / A*-style argument).

The worst case is still exponential — it has to be, by Proposition 1 — but
for top-k requests with skewed probabilities only a small fringe is explored,
which is the behaviour the E16 ablation benchmark measures.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.probtree import ProbTree
from repro.pw.pwset import PWSet
from repro.trees.datatree import DataTree
from repro.trees.isomorphism import canonical_encoding


def iter_worlds_by_probability(
    probtree: ProbTree,
    restrict_to_used: bool = True,
) -> Iterator[Tuple[frozenset, DataTree, float]]:
    """Yield ``(world, V(T), probability)`` in non-increasing probability order.

    Ties are broken deterministically (by the sorted set of true events) so
    the enumeration is reproducible.
    """
    events = sorted(
        probtree.used_events() if restrict_to_used else probtree.events()
    )
    distribution = probtree.distribution
    if not events:
        yield frozenset(), probtree.value_in_world(frozenset()), 1.0
        return

    # Each heap entry fixes the first ``depth`` events; the bound assumes the
    # remaining events take their most probable value.  Suffix bounds are
    # precomputed so pushing a child costs O(1).
    counter = itertools.count()
    suffix_bound = [1.0] * (len(events) + 1)
    for index in range(len(events) - 1, -1, -1):
        p = distribution[events[index]]
        suffix_bound[index] = suffix_bound[index + 1] * max(p, 1.0 - p)

    # Entries: (-bound, depth, tie-breaker, chosen events, exact prefix probability)
    heap: List[Tuple[float, int, int, frozenset, float]] = [
        (-suffix_bound[0], 0, next(counter), frozenset(), 1.0)
    ]
    while heap:
        negative_bound, depth, _tie, chosen, prefix_probability = heapq.heappop(heap)
        if depth == len(events):
            yield chosen, probtree.value_in_world(chosen), prefix_probability
            continue
        event = events[depth]
        p = distribution[event]
        for value, factor in ((True, p), (False, 1.0 - p)):
            if factor <= 0.0:
                continue
            # ``chosen | {event}`` already builds a fresh frozenset (and the
            # False branch shares the parent's immutable set), so no defensive
            # copy is needed at push time.
            new_chosen = chosen | {event} if value else chosen
            new_prefix = prefix_probability * factor
            bound = new_prefix * suffix_bound[depth + 1]
            heapq.heappush(
                heap,
                (-bound, depth + 1, next(counter), new_chosen, new_prefix),
            )


def top_k_worlds(
    probtree: ProbTree,
    k: int = 1,
    merge_isomorphic: bool = True,
) -> List[Tuple[DataTree, float]]:
    """The *k* most probable worlds.

    With ``merge_isomorphic=False`` the result is the first *k* valuations of
    the lazy best-first stream — this is where the laziness pays off (only a
    small fringe of the ``2^{|W|}`` valuations is explored when probabilities
    are skewed).  With the default ``merge_isomorphic=True`` the result
    matches the *normalized* semantics: isomorphic worlds are merged, which
    requires draining the stream (any not-yet-seen valuation could still add
    mass to a class), so the gain over
    :func:`repro.core.semantics.possible_worlds` is only that the stream stops
    early when the remaining probability mass reaches zero.
    """
    if k < 1:
        raise ValueError("top_k_worlds needs k >= 1")
    if not merge_isomorphic:
        results: List[Tuple[DataTree, float]] = []
        for _world, tree, probability in iter_worlds_by_probability(probtree):
            results.append((tree, probability))
            if len(results) == k:
                break
        return results

    accumulated: Dict[str, Tuple[DataTree, float]] = {}
    emitted_mass = 0.0
    for _world, tree, probability in iter_worlds_by_probability(probtree):
        key = canonical_encoding(tree)
        representative, total = accumulated.get(key, (tree, 0.0))
        accumulated[key] = (representative, total + probability)
        emitted_mass += probability
        if emitted_mass >= 1.0 - 1e-12:
            break
    ranked = sorted(accumulated.values(), key=lambda pair: -pair[1])
    return ranked[:k]


def top_k_as_pwset(probtree: ProbTree, k: int) -> PWSet:
    """The top-k worlds packaged as a sub-PW-set (for ∼sub comparisons)."""
    return PWSet(top_k_worlds(probtree, k))


__all__ = ["iter_worlds_by_probability", "top_k_worlds", "top_k_as_pwset"]
