"""Ranked query answers over prob-trees.

A locally monotone query on a prob-tree yields at most ``|Q(t)|`` answers
(Definition 8), so ranking them exactly is cheap once they are computed;
the value added here is

* aggregation of isomorphic answers (the paper's answers form a multiset),
* an optional *probability floor*, dropping answers that cannot make the
  requested top-k (useful when ``|Q(t)|`` is large but the caller only needs
  a handful of results), and
* answer ranking for the explicit possible-worlds baseline, so both engines
  expose the same ranked interface in the E14 comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.context import ExecutionContext
from repro.core.probtree import ProbTree
from repro.pw.pwset import PWSet
from repro.queries.base import Query
from repro.queries.evaluation import QueryAnswer, evaluate_on_probtree, evaluate_on_pwset
from repro.trees.isomorphism import canonical_encoding


def rank_answers(
    answers: List[QueryAnswer],
    k: Optional[int] = None,
    aggregate_isomorphic: bool = True,
) -> List[QueryAnswer]:
    """Sort answers by decreasing probability, optionally merging duplicates."""
    if aggregate_isomorphic:
        grouped: Dict[str, QueryAnswer] = {}
        totals: Dict[str, float] = {}
        for answer in answers:
            key = canonical_encoding(answer.tree)
            totals[key] = totals.get(key, 0.0) + answer.probability
            grouped.setdefault(key, answer)
        ranked = [
            QueryAnswer(grouped[key].tree, total)
            for key, total in sorted(totals.items(), key=lambda item: -item[1])
        ]
    else:
        ranked = sorted(answers, key=lambda answer: -answer.probability)
    return ranked if k is None else ranked[:k]


def top_k_answers(
    query: Query,
    source: ProbTree | PWSet,
    k: int = 3,
    minimum_probability: float = 0.0,
    aggregate_isomorphic: bool = True,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> List[QueryAnswer]:
    """The *k* most probable answers of *query* on a prob-tree or a PW set.

    Args:
        query: a locally monotone query.
        source: either a prob-tree (Definition 8 evaluation) or an explicit
            possible-world set (Definition 7 evaluation).
        k: how many answers to return.
        minimum_probability: drop answers strictly below this probability
            before ranking (0 keeps everything).
        aggregate_isomorphic: merge isomorphic answer trees before ranking.
        matcher: embedding strategy (``"indexed"`` | ``"naive"`` |
            ``"auto"``), see :mod:`repro.queries.evaluation`.
        context: the :class:`~repro.core.context.ExecutionContext` to execute
            under (caches, policy); string overrides win over its defaults.
    """
    if k < 1:
        raise ValueError("top_k_answers needs k >= 1")
    if isinstance(source, ProbTree):
        answers = evaluate_on_probtree(query, source, matcher=matcher, context=context)
    else:
        answers = evaluate_on_pwset(query, source, matcher=matcher, context=context)
    if minimum_probability > 0.0:
        answers = [a for a in answers if a.probability >= minimum_probability]
    return rank_answers(answers, k=k, aggregate_isomorphic=aggregate_isomorphic)


__all__ = ["rank_answers", "top_k_answers"]
