"""Ranked retrieval over prob-trees.

The paper's conclusion lists "algorithms obtaining the most probable results
first" as future work; this package provides them:

* :mod:`repro.ranking.topk_worlds` — lazy best-first enumeration of the most
  probable worlds, without materializing the full possible-world set;
* :mod:`repro.ranking.topk_answers` — ranked query answers, including an
  early-terminating variant that stops as soon as the top-k set is stable.
"""

from repro.ranking.topk_worlds import iter_worlds_by_probability, top_k_worlds
from repro.ranking.topk_answers import top_k_answers, rank_answers

__all__ = [
    "iter_worlds_by_probability",
    "top_k_worlds",
    "top_k_answers",
    "rank_answers",
]
