"""Semantic distance between prob-trees.

The natural measure of how much an approximation changed an uncertain
document is the total-variation distance between the two possible-world
distributions: half the sum, over isomorphism classes of data trees, of the
absolute difference of their probabilities.  Structural equivalence
corresponds to distance 0 under every probability assignment; the lossy
simplification operators report this distance so callers can trade size for
fidelity deliberately.
"""

from __future__ import annotations

from typing import Dict

from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.pw.pwset import PWSet
from repro.trees.isomorphism import canonical_encoding


def _class_probabilities(worlds: PWSet) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for tree, probability in worlds:
        key = canonical_encoding(tree)
        totals[key] = totals.get(key, 0.0) + probability
    return totals


def total_variation_distance(left: ProbTree, right: ProbTree) -> float:
    """Total-variation distance between ``⟦left⟧`` and ``⟦right⟧``.

    Exponential in the number of used events of each input (it materializes
    both possible-world sets); intended for evaluating simplifications on
    moderate inputs, not as an online primitive.
    """
    left_classes = _class_probabilities(possible_worlds(left, normalize=False))
    right_classes = _class_probabilities(possible_worlds(right, normalize=False))
    # Sorted: float summation order must not depend on the hash salt.
    keys = sorted(set(left_classes) | set(right_classes))
    return 0.5 * sum(
        abs(left_classes.get(key, 0.0) - right_classes.get(key, 0.0)) for key in keys
    )


def pwset_total_variation(left: PWSet, right: PWSet) -> float:
    """Total-variation distance between two (complete) possible-world sets."""
    left_classes = _class_probabilities(left)
    right_classes = _class_probabilities(right)
    # Sorted: float summation order must not depend on the hash salt.
    keys = sorted(set(left_classes) | set(right_classes))
    return 0.5 * sum(
        abs(left_classes.get(key, 0.0) - right_classes.get(key, 0.0)) for key in keys
    )


__all__ = ["total_variation_distance", "pwset_total_variation"]
