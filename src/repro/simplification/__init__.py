"""Approximate prob-tree simplification.

The paper's conclusion sketches "prob-tree simplification" as future work:
approximating a prob-tree by a more compact one, possibly ignoring less
probable worlds and some of the probabilistic events (provenance).  This
package provides lossy simplification operators together with the machinery
to quantify exactly how much semantics they give up:

* :mod:`repro.simplification.approximate` — forgetting an event variable
  (conditioning on its most probable value) and pruning unlikely nodes;
* :mod:`repro.simplification.distance` — the total-variation distance between
  the possible-world semantics of two prob-trees, used to report the
  approximation error.
"""

from repro.simplification.approximate import (
    forget_event,
    forget_low_impact_events,
    prune_unlikely_nodes,
    simplify,
    SimplificationReport,
)
from repro.simplification.distance import total_variation_distance

__all__ = [
    "forget_event",
    "forget_low_impact_events",
    "prune_unlikely_nodes",
    "simplify",
    "SimplificationReport",
    "total_variation_distance",
]
