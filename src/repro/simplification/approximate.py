"""Lossy prob-tree simplification operators.

Two complementary knobs, both suggested by the paper's conclusion:

* **forgetting events** (dropping provenance): an event ``w`` is *forgotten*
  by conditioning the tree on its most probable value — nodes requiring the
  unlikely value disappear, literals over ``w`` vanish from the remaining
  conditions, and the event leaves ``W``.  The introduced error is at most
  ``min(π(w), 1 − π(w))`` in total variation (the probability of the worlds
  whose branch was discarded), and errors accumulate additively over several
  forgotten events;
* **pruning unlikely nodes**: every node whose accumulated condition has
  probability below a threshold is removed (with its subtree); the error is
  bounded by the sum of the pruned nodes' presence probabilities.

:func:`simplify` combines both under a single error budget and returns a
:class:`SimplificationReport` with the a-priori error bound, so callers can
decide whether to pay for the exact total-variation distance
(:func:`repro.simplification.distance.total_variation_distance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.cleaning import clean
from repro.core.probtree import ProbTree
from repro.equivalence.independence import condition_on
from repro.trees.datatree import NodeId
from repro.trees.index import tree_index
from repro.utils.errors import InvalidConditionError


@dataclass(frozen=True)
class SimplificationReport:
    """What a simplification did and how much semantics it may have lost."""

    original_size: int
    simplified_size: int
    forgotten_events: Tuple[str, ...]
    pruned_nodes: int
    error_bound: float

    @property
    def size_reduction(self) -> float:
        """Fraction of the original size removed (0 = nothing, 1 = everything)."""
        if self.original_size == 0:
            return 0.0
        return 1.0 - self.simplified_size / self.original_size


def forget_event(probtree: ProbTree, event: str) -> Tuple[ProbTree, float]:
    """Forget *event* by fixing it to its most probable value.

    At ``π(w) = 0.5`` the "most probable value" is ambiguous; the documented
    deterministic tie-break is to condition on ``True`` (the ``>=`` below),
    so repeated simplifications of equal inputs produce identical trees.

    Returns the simplified prob-tree and the total-variation error bound
    ``min(π(w), 1 − π(w))``.
    """
    if event not in probtree.events():
        raise InvalidConditionError(f"event {event!r} is not part of the prob-tree")
    probability = probtree.distribution[event]
    keep_true = probability >= 0.5
    simplified = condition_on(probtree, event, keep_true)
    return simplified, min(probability, 1.0 - probability)


def forget_low_impact_events(
    probtree: ProbTree, error_budget: float
) -> Tuple[ProbTree, List[str], float]:
    """Greedily forget the most skewed events while staying within a budget.

    Events are considered in increasing order of ``min(π, 1 − π)`` (cheapest
    first), with the event name as a secondary key so equal-cost events are
    visited in a deterministic order regardless of set-iteration order; each
    forgotten event consumes its error bound from the budget.  Returns the
    simplified tree, the forgotten events and the total bound.
    """
    if error_budget < 0.0:
        raise ValueError("error budget must be non-negative")
    current = probtree
    forgotten: List[str] = []
    spent = 0.0
    candidates = sorted(
        current.used_events(),
        key=lambda event: (
            min(current.distribution[event], 1.0 - current.distribution[event]),
            event,
        ),
    )
    for event in candidates:
        cost = min(current.distribution[event], 1.0 - current.distribution[event])
        if spent + cost > error_budget:
            continue
        if event not in current.used_events():
            continue
        current, _bound = forget_event(current, event)
        forgotten.append(event)
        spent += cost
    return current, forgotten, spent


def prune_unlikely_nodes(
    probtree: ProbTree, threshold: float
) -> Tuple[ProbTree, int, float]:
    """Remove nodes whose presence probability falls below *threshold*.

    Returns the pruned prob-tree, the number of removed nodes and the sum of
    the removed nodes' presence probabilities (an upper bound on the
    total-variation error introduced).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must lie in [0; 1]")
    tree = probtree.tree
    distribution = probtree.distribution.as_dict()
    to_remove: Set[NodeId] = set()
    error = 0.0
    for node in tree.nodes():
        if node == tree.root:
            continue
        parent = tree.parent(node)
        if parent in to_remove or node in to_remove:
            continue
        presence = probtree.accumulated_condition(node).probability(distribution)
        if presence < threshold:
            error += presence
            to_remove.add(node)
            to_remove.update(tree.descendants(node))

    result = probtree.copy()
    removed_count = 0
    depth = tree_index(tree).depth
    for node in sorted(to_remove, key=lambda n: -depth(n)):
        if result.tree.has_node(node):
            removed_count += len(result.tree.children(node)) + 1
            result.remove_subtree(node)
    # Re-count precisely (nested removals above were approximate).
    removed_count = probtree.tree.node_count() - result.tree.node_count()
    return clean(result), removed_count, error


def simplify(
    probtree: ProbTree,
    error_budget: float = 0.05,
    node_threshold: Optional[float] = None,
) -> Tuple[ProbTree, SimplificationReport]:
    """Combined simplification under a single error budget.

    Half of the budget (or the explicit *node_threshold*) is used as the
    per-node pruning threshold, and whatever budget the pruning did not spend
    goes to forgetting skewed events.  Because pruning is threshold-based,
    its aggregate error can exceed the nominal budget on documents with many
    individually-unlikely nodes; the returned report's ``error_bound`` — the
    sum of both contributions — is the authoritative upper bound on the
    total-variation distance to the original semantics.
    """
    if error_budget < 0.0:
        raise ValueError("error budget must be non-negative")
    prune_threshold = (
        node_threshold if node_threshold is not None else error_budget / 2.0
    )
    pruned, pruned_nodes, prune_error = prune_unlikely_nodes(probtree, prune_threshold)
    remaining_budget = max(0.0, error_budget - prune_error)
    simplified, forgotten, forget_error = forget_low_impact_events(
        pruned, remaining_budget
    )
    report = SimplificationReport(
        original_size=probtree.size(),
        simplified_size=simplified.size(),
        forgotten_events=tuple(forgotten),
        pruned_nodes=pruned_nodes,
        error_bound=prune_error + forget_error,
    )
    return simplified, report


__all__ = [
    "SimplificationReport",
    "forget_event",
    "forget_low_impact_events",
    "prune_unlikely_nodes",
    "simplify",
]
