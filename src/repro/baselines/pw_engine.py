"""The explicit possible-worlds baseline engine.

Stores the uncertain document as a normalized possible-world set and executes
every operation directly on it:

* queries run in every world (Definition 7);
* probabilistic updates follow Definition 16;
* threshold pruning and DTD checks filter the explicit worlds.

This engine is semantically exact — it *is* the reference semantics — but its
state can be exponentially larger than the equivalent prob-tree
(Proposition 1 / the E1 and E14 benchmarks measure exactly that), which is
the paper's argument for the factorized prob-tree representation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dtd.dtd import DTD
from repro.dtd.validation import validates
from repro.pw.pwset import PWSet
from repro.queries.base import Query
from repro.queries.evaluation import QueryAnswer, evaluate_on_pwset
from repro.trees.datatree import DataTree
from repro.updates.operations import ProbabilisticUpdate
from repro.updates.pw_updates import apply_update_to_pwset


class PossibleWorldsEngine:
    """An uncertain-document engine working on the explicit PW set."""

    def __init__(self, initial_document: DataTree) -> None:
        self._worlds = PWSet([(initial_document.copy(), 1.0)])

    @staticmethod
    def from_pwset(pwset: PWSet) -> "PossibleWorldsEngine":
        engine = PossibleWorldsEngine.__new__(PossibleWorldsEngine)
        engine._worlds = pwset.normalize()
        return engine

    # -- state ---------------------------------------------------------------

    @property
    def worlds(self) -> PWSet:
        """The current (normalized) possible-world set."""
        return self._worlds

    def world_count(self) -> int:
        return len(self._worlds)

    def size(self) -> int:
        """Total node count over all stored worlds (the state's footprint)."""
        return self._worlds.description_size()

    # -- operations ------------------------------------------------------------

    def query(self, query: Query) -> List[QueryAnswer]:
        """Evaluate a query in every world (Definition 7)."""
        return evaluate_on_pwset(query, self._worlds)

    def boolean_probability(self, query: Query) -> float:
        """Probability that the query has at least one answer."""
        return sum(
            probability
            for tree, probability in self._worlds
            if query.selects(tree)
        )

    def apply(self, update: ProbabilisticUpdate) -> None:
        """Apply a probabilistic update (Definition 16), renormalizing."""
        self._worlds = apply_update_to_pwset(self._worlds, update, normalize=True)

    def prune_below(self, threshold: float) -> None:
        """Drop worlds with probability below *threshold* (kept mass < 1)."""
        self._worlds = self._worlds.normalize().at_least(threshold)

    def most_probable(self, count: int = 1) -> List[Tuple[DataTree, float]]:
        return self._worlds.most_probable(count)

    def dtd_satisfiable(self, dtd: DTD) -> bool:
        return any(validates(dtd, tree) for tree in self._worlds.trees())

    def dtd_valid(self, dtd: DTD) -> bool:
        return all(validates(dtd, tree) for tree in self._worlds.trees())

    def dtd_restrict(self, dtd: DTD) -> None:
        """Keep only the worlds satisfying the DTD."""
        self._worlds = self._worlds.filter(lambda tree, _p: validates(dtd, tree))

    def __repr__(self) -> str:
        return f"PossibleWorldsEngine(worlds={len(self._worlds)}, size={self.size()})"


__all__ = ["PossibleWorldsEngine"]
