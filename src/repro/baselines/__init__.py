"""Baselines the prob-tree engine is compared against.

The only baseline the paper itself discusses is the *extensive description of
all possible worlds*; :mod:`repro.baselines.pw_engine` implements it as a
drop-in engine with the same operations (query, probabilistic update,
threshold, DTD checks) executed directly on the explicit possible-world set.
"""

from repro.baselines.pw_engine import PossibleWorldsEngine

__all__ = ["PossibleWorldsEngine"]
