"""Serializing data trees and prob-trees to XML text.

Format for a prob-tree::

    <probtree>
      <events>
        <event name="w1" probability="0.8"/>
        <event name="w2" probability="0.7"/>
      </events>
      <node label="A">
        <node label="B" condition="w1 and not w2"/>
        <node label="C" condition="w2">
          <node label="D"/>
        </node>
      </node>
    </probtree>

Conditions use the same textual syntax as ``Condition.of`` / ``str(Condition)``
(" and "-separated literals, ``not`` for negation), so serialized documents
remain human-readable and diff-friendly.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.core.probtree import ProbTree
from repro.trees.datatree import DataTree, NodeId


def _datatree_element(tree: DataTree, node: NodeId) -> ET.Element:
    element = ET.Element("node", {"label": tree.label(node)})
    for child in tree.children(node):
        element.append(_datatree_element(tree, child))
    return element


def datatree_to_xml(tree: DataTree, pretty: bool = True) -> str:
    """Serialize a data tree to an XML string."""
    root = _datatree_element(tree, tree.root)
    return _render(root, pretty)


def _probtree_element(probtree: ProbTree, node: NodeId) -> ET.Element:
    attributes = {"label": probtree.tree.label(node)}
    condition = probtree.condition(node)
    if not condition.is_true():
        attributes["condition"] = str(condition)
    element = ET.Element("node", attributes)
    for child in probtree.tree.children(node):
        element.append(_probtree_element(probtree, child))
    return element


def probtree_to_xml(probtree: ProbTree, pretty: bool = True) -> str:
    """Serialize a prob-tree (events table plus annotated tree) to XML."""
    root = ET.Element("probtree")
    events = ET.SubElement(root, "events")
    for event, probability in probtree.distribution.items():
        ET.SubElement(
            events, "event", {"name": event, "probability": repr(probability)}
        )
    root.append(_probtree_element(probtree, probtree.tree.root))
    return _render(root, pretty)


def _render(element: ET.Element, pretty: bool) -> str:
    raw = ET.tostring(element, encoding="unicode")
    if not pretty:
        return raw
    reparsed = minidom.parseString(raw)
    return reparsed.toprettyxml(indent="  ").strip()


__all__ = ["datatree_to_xml", "probtree_to_xml"]
