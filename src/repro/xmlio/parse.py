"""Parsing data trees and prob-trees back from their XML serialization.

Inverse of :mod:`repro.xmlio.serialize`; round-tripping preserves structure,
labels, conditions and the event table (node identifiers are re-allocated,
as XML has no notion of them).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition
from repro.trees.datatree import DataTree, NodeId
from repro.utils.errors import InvalidTreeError


def datatree_from_xml(text: str) -> DataTree:
    """Parse a ``<node>``-rooted XML document into a data tree.

    Ingests through :meth:`DataTree.add_subtree_bulk` — one flat preorder
    batch instead of one :meth:`~DataTree.add_child` call per element — so
    warehouse/service ``insert`` payloads skip the per-node mutator
    overhead.  Identifiers, structure and the mutation journal are exactly
    what the per-node path produced.
    """
    element = ET.fromstring(text)
    if element.tag != "node":
        raise InvalidTreeError(f"expected a <node> root element, got <{element.tag}>")
    tree = DataTree(element.get("label", ""))
    spec = []
    stack = [
        (child, -1)
        for child in reversed([c for c in element if c.tag == "node"])
    ]
    while stack:
        node, parent_slot = stack.pop()
        slot = len(spec)
        spec.append((parent_slot, node.get("label", "")))
        for child in reversed([c for c in node if c.tag == "node"]):
            stack.append((child, slot))
    tree.add_subtree_bulk(tree.root, spec)
    return tree


def probtree_from_xml(text: str) -> ProbTree:
    """Parse a ``<probtree>`` document into a prob-tree."""
    element = ET.fromstring(text)
    if element.tag != "probtree":
        raise InvalidTreeError(
            f"expected a <probtree> root element, got <{element.tag}>"
        )
    probabilities: Dict[str, float] = {}
    events_element = element.find("events")
    if events_element is not None:
        for event in events_element.findall("event"):
            name = event.get("name")
            probability = event.get("probability")
            if name is None or probability is None:
                raise InvalidTreeError("<event> elements need name and probability")
            probabilities[name] = float(probability)

    node_element = element.find("node")
    if node_element is None:
        raise InvalidTreeError("<probtree> documents need a <node> tree")

    tree = DataTree(node_element.get("label", ""))
    conditions: Dict[NodeId, Condition] = {}
    _attach_conditional_children(tree, tree.root, node_element, conditions)
    root_condition = node_element.get("condition")
    if root_condition:
        raise InvalidTreeError("the root of a prob-tree cannot carry a condition")
    return ProbTree(tree, ProbabilityDistribution(probabilities), conditions)


def _attach_conditional_children(
    tree: DataTree,
    parent: NodeId,
    element: ET.Element,
    conditions: Dict[NodeId, Condition],
) -> None:
    for child in element:
        if child.tag != "node":
            continue
        node = tree.add_child(parent, child.get("label", ""))
        condition_text = child.get("condition")
        if condition_text:
            condition = Condition.of(*condition_text.split(" and "))
            if not condition.is_true():
                conditions[node] = condition
        _attach_conditional_children(tree, node, child, conditions)


__all__ = ["datatree_from_xml", "probtree_from_xml"]
