"""XML serialization of data trees and prob-trees.

The paper's motivating system stores its imprecise knowledge in an XML
warehouse; this package provides a faithful, dependency-free (stdlib
``xml.etree.ElementTree``) textual format:

* data trees serialize to nested ``<node label="...">`` elements;
* prob-trees add a ``condition`` attribute per node and an ``<events>``
  header listing the event variables and their probabilities.
"""

from repro.xmlio.serialize import datatree_to_xml, probtree_to_xml
from repro.xmlio.parse import datatree_from_xml, probtree_from_xml

__all__ = [
    "datatree_to_xml",
    "probtree_to_xml",
    "datatree_from_xml",
    "probtree_from_xml",
]
