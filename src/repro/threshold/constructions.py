"""The Theorem 4 worst-case family for threshold restriction.

The prob-tree has ``2n + 1`` nodes: a root ``A`` with ``2n`` children
``C₁ … C₂ₙ``, each conditioned by its own event ``wᵢ`` of probability
``1/(2n)``.  With threshold ``p = 1/2``... the paper picks the parameters so
that the set of worlds above the threshold is a binomial-sized family (the
proof uses ``C(2n, n) = Ω(2ⁿ)``), forcing any prob-tree representation of the
restriction to be exponential.

For the benchmark the construction is kept parametric:
:func:`theorem4_probtree` builds the tree with a configurable per-event
probability, and :func:`theorem4_instance` returns the exact (prob-tree,
threshold) pair of the proof, whose retained-world count grows as
``C(2n, ≤n)`` — the exponential lower bound measured in E8.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition, Literal
from repro.trees.datatree import DataTree


def theorem4_probtree(
    n: int,
    probability: float = 0.5,
    label_children_distinctly: bool = True,
) -> ProbTree:
    """The Theorem 4 prob-tree: root ``A`` with ``2n`` independent optional children.

    Args:
        n: half the number of children (the paper's parameter).
        probability: probability of each child's event (the paper uses
            ``1/(2n)``; ``0.5`` keeps every world equally likely, which makes
            the exponential world count easiest to expose — both are
            accepted by the benchmark harness).
        label_children_distinctly: give children distinct labels ``C1 … C2n``
            (as the paper does via ``Dᵢ`` grandchildren) so that distinct
            worlds stay non-isomorphic after normalization.
    """
    if n < 1:
        raise ValueError("theorem4_probtree needs n >= 1")
    tree = DataTree("A")
    conditions = {}
    probabilities = {}
    for index in range(1, 2 * n + 1):
        event = f"w{index}"
        probabilities[event] = probability
        label = f"C{index}" if label_children_distinctly else "C"
        node = tree.add_child(tree.root, label)
        conditions[node] = Condition([Literal(event)])
    return ProbTree(tree, ProbabilityDistribution(probabilities), conditions)


def theorem4_instance(n: int) -> Tuple[ProbTree, float]:
    """The (prob-tree, threshold) pair exactly as in the Theorem 4 proof.

    Events get probability ``1/(2n)`` and the threshold is chosen so that the
    retained worlds are the ``C(2n, k)``-many small subsets — the family whose
    cardinality the proof bounds from below by ``Ω(2ⁿ)`` via ``C(2n, n)``.
    """
    if n < 1:
        raise ValueError("theorem4_instance needs n >= 1")
    probability = 1.0 / (2 * n)
    probtree = theorem4_probtree(n, probability=probability)
    # A world with k children present has probability p^k (1-p)^(2n-k), which
    # decreases with k; the threshold keeping exactly the worlds with at most
    # n children present is the probability of an n-child world.
    threshold = probability ** n * (1.0 - probability) ** n
    return probtree, threshold


__all__ = ["theorem4_probtree", "theorem4_instance"]
