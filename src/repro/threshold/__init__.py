"""Threshold restriction of prob-trees (Theorem 4).

* :mod:`repro.threshold.threshold` — computing ``⟦T⟧≥p`` and re-encoding it
  as a prob-tree (via the ``∼sub`` completion of Definition 3);
* :mod:`repro.threshold.constructions` — the Theorem 4 worst-case family
  showing the re-encoding may be exponentially large.
"""

from repro.threshold.threshold import (
    threshold_worlds,
    threshold_probtree,
    most_probable_worlds,
)
from repro.threshold.constructions import theorem4_probtree

__all__ = [
    "threshold_worlds",
    "threshold_probtree",
    "most_probable_worlds",
    "theorem4_probtree",
]
