"""Removing improbable possible worlds (Section 4, "Threshold Probability").

Given a prob-tree ``T`` and a threshold ``p``, ``⟦T⟧≥p`` keeps the worlds of
the *normalized* semantics whose probability is at least ``p``.  The result
is generally a strict subset of a PW set; Definition 3's completion (adding a
root-only world carrying the lost mass) turns it back into a proper PW set
that can be re-encoded as a prob-tree.  Theorem 4 shows this re-encoding can
be exponentially larger than ``T`` — the functions here go through the
explicit possible-world set, which is therefore as good as it gets in the
worst case.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.context import ExecutionContext
from repro.core.probtree import ProbTree
from repro.core.semantics import normalized_worlds
from repro.pw.convert import pwset_to_probtree
from repro.pw.pwset import PWSet
from repro.trees.datatree import DataTree
from repro.utils.errors import InvalidProbabilityError


def threshold_worlds(
    probtree: ProbTree,
    threshold: float,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> PWSet:
    """The sub-PW-set ``⟦T⟧≥p`` (worlds of the normalized semantics with ``pᵢ ≥ p``).

    With ``engine="formula"`` (default) the normalized semantics is
    reconstructed from achievable surviving-node subsets priced by the
    context's formula engine, avoiding the full ``2^|W|`` world expansion
    whenever few nodes carry conditions.
    """
    if not 0.0 < threshold <= 1.0:
        raise InvalidProbabilityError(
            f"threshold must lie in ]0; 1], got {threshold!r}"
        )
    return normalized_worlds(probtree, engine=engine, context=context).at_least(threshold)


def threshold_probtree(
    probtree: ProbTree,
    threshold: float,
    event_prefix: str = "keep",
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> ProbTree:
    """A prob-tree ``T'`` with ``⟦T⟧≥p ∼sub ⟦T'⟧``.

    The lost probability mass is carried by a root-only world (Definition 3).
    Raises :class:`InvalidProbabilityError` when no world reaches the
    threshold (there is then nothing representable: even the root-only
    completion would carry probability 1 of an empty selection).
    """
    kept = threshold_worlds(probtree, threshold, engine=engine, context=context)
    if len(kept) == 0:
        raise InvalidProbabilityError(
            f"no possible world has probability >= {threshold}"
        )
    completed = kept.completed(probtree.tree.root_label)
    return pwset_to_probtree(completed, event_prefix=event_prefix)


def most_probable_worlds(
    probtree: ProbTree,
    count: int = 1,
    engine: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> List[Tuple[DataTree, float]]:
    """The *count* most probable worlds of the normalized semantics.

    Implements the "rank possible worlds by probability" usage from the
    paper's conclusion (prob-tree simplification / top-k answers).
    """
    return normalized_worlds(probtree, engine=engine, context=context).most_probable(count)


__all__ = ["threshold_worlds", "threshold_probtree", "most_probable_worlds"]
