"""Stdlib-only asyncio JSON front-end over a :class:`ShardedWarehouse`.

:class:`ServiceFrontend` serves five endpoints:

* ``POST /query`` — ``{"query": "/A/B", "name"?, "engine"?, "matcher"?}`` →
  ``{"answers": [{"xml": ..., "probability": ...}, ...]}``
* ``POST /probability`` — same request shape → ``{"probability": p}``
* ``POST /update`` — ``{"kind": "insert"|"delete", "query": ...,
  "subtree"? (XML, insertions), "at"?, "confidence"?, "event"?, "name"?}`` →
  ``{"applied": true}``
* ``GET /stats`` — merged corpus-wide counters plus per-shard detail
* ``GET /healthz`` — liveness of every shard worker

Read requests are **batched per shard**: a request parks on its target
shard's queue, and a per-shard consumer drains everything pending into one
:meth:`~repro.service.router.ShardedWarehouse.batch_on_shard` round-trip —
under concurrent load, N in-flight reads for a shard cost one frame, not N.
Each batched item is still one warehouse call on the worker, so in snapshot
isolation every read pins its own document snapshot: a read admitted while
an update commits sees entirely-before or entirely-after, never a torn mix.
Mutations bypass the batch path on purpose — they go through the router's
normal methods so its crash-recovery oplog records them.

The HTTP surface is deliberately minimal (request line + headers +
``Content-Length`` bodies, keep-alive, JSON both ways) — enough for curl,
load generators and the differential tests, with zero dependencies.  The
pickle protocol never touches the network: this layer re-encodes to JSON.

Run it in-process (``frontend.start()`` spins a daemon thread; ``stop()``
tears it down) or via ``python -m repro.cli serve``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.core.context import ContextStats
from repro.service.router import ShardedWarehouse
from repro.utils.errors import ProbXMLError
from repro.xmlio import datatree_from_xml, datatree_to_xml

#: Upper bound on reads collapsed into one shard round-trip.
MAX_BATCH = 64

#: Refuse request bodies larger than this (the service parses JSON eagerly).
MAX_BODY_BYTES = 8 << 20


def _json_answers(answers) -> list:
    return [
        {"xml": datatree_to_xml(answer.tree, pretty=False), "probability": answer.probability}
        for answer in answers
    ]


class ServiceFrontend:
    """An asyncio HTTP/1.1 JSON server in front of a sharded warehouse.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  The server runs its own event loop in a daemon thread,
    so tests and the CLI share one code path — blocking warehouse calls are
    pushed onto the default executor, keeping the loop responsive while a
    shard prices an expensive query.
    """

    def __init__(
        self,
        warehouse: ShardedWarehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = MAX_BATCH,
    ) -> None:
        self._warehouse = warehouse
        self.host = host
        self.port = port
        self._max_batch = max_batch
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._queues: Dict[int, asyncio.Queue] = {}
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        #: Round-trips actually sent vs read requests served — the batching
        #: win is visible as requests_batched exceeding batches_sent.
        self.requests_batched = 0
        self.batches_sent = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServiceFrontend":
        """Start serving in a background thread; returns once bound."""
        if self._thread is not None:
            raise ProbXMLError("the service front-end is already running")
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            raise error
        return self

    def stop(self) -> None:
        """Stop the server thread; idempotent."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        loop.call_soon_threadsafe(self._stop_event.set)
        thread.join(timeout=10)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "ServiceFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - startup races only
            self._startup_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        consumers = [
            asyncio.ensure_future(self._shard_consumer(shard.index))
            for shard in self._warehouse._shards
        ]
        self._started.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            for task in consumers:
                task.cancel()

    # -- per-shard batching ------------------------------------------------

    def _queue_for(self, index: int) -> asyncio.Queue:
        queue = self._queues.get(index)
        if queue is None:
            queue = self._queues[index] = asyncio.Queue()
        return queue

    async def _shard_consumer(self, index: int) -> None:
        queue = self._queue_for(index)
        while True:
            first = await queue.get()
            batch = [first]
            while len(batch) < self._max_batch:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [(op, payload) for op, payload, _ in batch]
            self.requests_batched += len(batch)
            self.batches_sent += 1
            try:
                results = await asyncio.get_running_loop().run_in_executor(
                    None, self._warehouse.batch_on_shard, index, requests
                )
            except Exception as exc:
                for _, _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, _, future), (ok, value) in zip(batch, results):
                if future.done():
                    continue
                if ok:
                    future.set_result(value)
                else:
                    future.set_exception(value)

    async def _batched_read(self, op: str, payload: Dict[str, Any]) -> Any:
        """Route one read op through the owning shard's batch queue."""
        # Name resolution happens here (typed errors before any frame is
        # sent), using the router's registry under the same rules as the
        # single-process warehouse.
        resolved = self._warehouse._resolve_name(payload.get("name"))
        payload = dict(payload, name=resolved)
        index = self._warehouse._documents[resolved]
        future = asyncio.get_running_loop().create_future()
        await self._queue_for(index).put((op, payload, future))
        return await future

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _version = request_line.decode("latin-1").split()
                except ValueError:
                    await self._respond(writer, 400, {"error": "malformed request line"})
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                raw_length = headers.get("content-length", "").strip()
                try:
                    length = int(raw_length) if raw_length else 0
                except ValueError:
                    await self._respond(
                        writer, 400,
                        {"error": f"malformed Content-Length: {raw_length!r}"},
                    )
                    break
                if length < 0:
                    await self._respond(
                        writer, 400,
                        {"error": f"negative Content-Length: {length}"},
                    )
                    break
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 413, {"error": "request body too large"})
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._dispatch(method, path, body)
                connection = headers.get("connection", "").lower()
                if _version.upper() == "HTTP/1.0":
                    # HTTP/1.0 defaults to close; only an explicit keep-alive
                    # token holds the connection open.
                    keep_alive = connection == "keep-alive"
                else:
                    keep_alive = connection != "close"
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(self, writer, status: int, payload, keep_alive: bool = False):
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 413: "Payload Too Large",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        data = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    # -- endpoints ---------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, Any]:
        try:
            if path == "/healthz":
                if method != "GET":
                    return 405, {"error": "use GET"}
                alive = await asyncio.get_running_loop().run_in_executor(
                    None, self._warehouse.healthy
                )
                return (200 if alive else 503), {"ok": alive}
            if path == "/stats":
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, await asyncio.get_running_loop().run_in_executor(
                    None, self._stats_payload
                )
            if path in ("/query", "/probability", "/update"):
                if method != "POST":
                    return 405, {"error": "use POST"}
                try:
                    request = json.loads(body.decode("utf-8")) if body else {}
                except (ValueError, UnicodeDecodeError):
                    return 400, {"error": "request body is not valid JSON"}
                if not isinstance(request, dict):
                    return 400, {"error": "request body must be a JSON object"}
                if path == "/query":
                    return await self._endpoint_query(request)
                if path == "/probability":
                    return await self._endpoint_probability(request)
                return await self._endpoint_update(request)
            return 404, {"error": f"no such endpoint: {path}"}
        except ProbXMLError as exc:
            return 400, {"error": str(exc), "type": type(exc).__name__}
        except Exception as exc:  # a worker bug must not kill the server
            return 500, {"error": str(exc), "type": type(exc).__name__}

    async def _endpoint_query(self, request: Dict[str, Any]) -> Tuple[int, Any]:
        if "query" not in request:
            return 400, {"error": "missing required field 'query'"}
        answers = await self._batched_read(
            "query",
            {
                "query": request["query"],
                "name": request.get("name"),
                "engine": request.get("engine"),
                "matcher": request.get("matcher"),
            },
        )
        return 200, {"answers": _json_answers(answers)}

    async def _endpoint_probability(self, request: Dict[str, Any]) -> Tuple[int, Any]:
        if "query" not in request:
            return 400, {"error": "missing required field 'query'"}
        probability = await self._batched_read(
            "probability",
            {
                "query": request["query"],
                "name": request.get("name"),
                "engine": request.get("engine"),
                "matcher": request.get("matcher"),
            },
        )
        return 200, {"probability": probability}

    async def _endpoint_update(self, request: Dict[str, Any]) -> Tuple[int, Any]:
        kind = request.get("kind")
        if kind not in ("insert", "delete"):
            return 400, {"error": "field 'kind' must be 'insert' or 'delete'"}
        if "query" not in request:
            return 400, {"error": "missing required field 'query'"}
        loop = asyncio.get_running_loop()
        confidence = float(request.get("confidence", 1.0))
        event = request.get("event")
        name = request.get("name")
        if kind == "insert":
            if "subtree" not in request:
                return 400, {"error": "insert requires a 'subtree' (XML string)"}
            subtree = datatree_from_xml(request["subtree"])
            update = await loop.run_in_executor(
                None,
                lambda: self._warehouse.insert(
                    request["query"], subtree, at=request.get("at"),
                    confidence=confidence, event=event, name=name,
                ),
            )
        else:
            update = await loop.run_in_executor(
                None,
                lambda: self._warehouse.delete(
                    request["query"], at=request.get("at"),
                    confidence=confidence, event=event, name=name,
                ),
            )
        return 200, {"applied": True, "event": update.event}

    def _stats_payload(self) -> Dict[str, Any]:
        shards = self._warehouse.shard_stats()
        merged = ContextStats()
        for entry in shards:
            merged.merge(entry["stats"])
        return {
            "stats": merged.as_dict(),
            "shards": [
                {
                    "pool_nodes": entry["pool_nodes"],
                    "documents": entry["documents"],
                    "pid": entry["pid"],
                }
                for entry in shards
            ],
            "documents": list(self._warehouse.names()),
            "frontend": {
                "requests_batched": self.requests_batched,
                "batches_sent": self.batches_sent,
            },
        }
