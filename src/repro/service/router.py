"""The scatter/gather router: a process-sharded ``ProbXMLWarehouse`` twin.

:class:`ShardedWarehouse` mirrors the :class:`~repro.core.engine.ProbXMLWarehouse`
API — same methods, same name-resolution rules, same error messages — but
holds no documents itself.  Document names are **consistent-hashed** (sha1
ring with virtual nodes; the builtin ``hash`` is process-salted and would
shuffle placements across runs) onto shard worker subprocesses, each owning
its own execution context and formula pool.  Per-document calls route to the
owning shard; corpus-wide calls (:meth:`query_all`, :meth:`probability_all`,
:meth:`stats`) scatter one frame to every shard and gather the responses.

Crash recovery: the router keeps, per document, the pickled source prob-tree
plus an **oplog** of committed mutations (``apply``/``clean``/``prune_below``
payloads, appended only after the worker acknowledged them).  When a pipe
breaks mid-call the router respawns the worker, replays source + oplog for
every document on that shard, and retries the failed request once — caches
rebuild lazily on the fresh worker.  This is sound because workers die in
one of two states: before dispatch (the ``"service.worker"`` fault site
fires before any work) or mid-mutation after the transactional rollback ran,
so the worker's committed state always equals source + acked oplog.

The single-process warehouse stays authoritative: the differential harness
(``tests/service/test_sharded_differential.py``) replays identical workloads
against both and requires byte-identical answers.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import pickle
import subprocess
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.core.context import ContextStats
from repro.core.engine import DEFAULT_DOCUMENT, ProbXMLWarehouse, _coerce_document
from repro.service.protocol import decode_error, read_frame, write_frame
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.utils.errors import ProbXMLError, WorkerCrashedError

#: Virtual ring points per shard; enough that a 4-shard ring splits a
#: realistic corpus within a few documents of even.
VIRTUAL_NODES = 64

#: Seconds to wait for a worker to honour a polite shutdown before SIGKILL.
SHUTDOWN_GRACE = 5.0


def _ring_points(shard_count: int, virtual_nodes: int) -> List[Tuple[int, int]]:
    ring = []
    for index in range(shard_count):
        for replica in range(virtual_nodes):
            digest = hashlib.sha1(f"shard:{index}:{replica}".encode("ascii")).digest()
            ring.append((int.from_bytes(digest[:8], "big"), index))
    ring.sort()
    return ring


def _hash_point(name: str) -> int:
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class _Shard:
    """One worker subprocess plus the bookkeeping to talk to it safely."""

    __slots__ = ("index", "process", "lock", "rid")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[subprocess.Popen] = None
        self.lock = threading.Lock()
        self.rid = 0

    def next_rid(self) -> int:
        self.rid += 1
        return self.rid


class ShardedWarehouse:
    """Routes the ``ProbXMLWarehouse`` API across shard worker subprocesses.

    Drop-in in the differential sense: every public method of the
    single-process warehouse exists here with the same signature and the
    same typed errors (worker-side exceptions are reconstructed by type).
    Two deliberate semantic differences: (1) returned trees/answers are
    pickled copies, never live shared objects, so mutating them cannot
    corrupt the corpus; (2) a worker that dies mid-call is respawned and
    the call retried once — a second failure raises
    :class:`~repro.utils.errors.WorkerCrashedError`.
    """

    def __init__(
        self,
        shards: int = 4,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        max_cached_answers: Optional[int] = None,
        pricing=None,
        snapshot_retention: Optional[int] = None,
        formula_pool_node_limit: Optional[int] = None,
        isolation: str = "snapshot",
        worker_command: Optional[List[str]] = None,
        virtual_nodes: int = VIRTUAL_NODES,
    ) -> None:
        if shards < 1:
            raise ProbXMLError(f"need at least one shard, got {shards}")
        self._config = {
            "engine": engine,
            "matcher": matcher,
            "max_cached_answers": max_cached_answers,
            "pricing": pricing,
            "snapshot_retention": snapshot_retention,
            "formula_pool_node_limit": formula_pool_node_limit,
            "isolation": isolation,
        }
        self._worker_command = list(worker_command) if worker_command else None
        self._ring = _ring_points(shards, virtual_nodes)
        # name -> shard index, in insertion order (gathers are re-ordered to
        # this, matching the single-process warehouse's names() order).
        self._documents: Dict[str, int] = {}
        self._sources: Dict[str, bytes] = {}
        self._oplogs: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        self._closed = False
        self.restarts = 0
        self._shards = [_Shard(index) for index in range(shards)]
        try:
            for shard in self._shards:
                self._spawn(shard)
        except Exception:
            self.close()
            raise

    # -- process management ------------------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        command = self._worker_command or [sys.executable, "-m", "repro.service.worker"]
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
        shard.process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        self._send(shard, "configure", dict(self._config))

    def _send(self, shard: _Shard, op: str, payload: Dict[str, Any]) -> Any:
        """One raw round-trip; OSError/EOFError propagate (caller recovers)."""
        process = shard.process
        rid = shard.next_rid()
        write_frame(process.stdin, (rid, op, payload))
        response_rid, ok, value = read_frame(process.stdout)
        if response_rid != rid:
            raise EOFError(
                f"shard {shard.index} answered request {response_rid}, "
                f"expected {rid}; stream is out of sync"
            )
        if not ok:
            raise decode_error(value)
        return value

    def _restart(self, shard: _Shard) -> None:
        """Respawn a dead worker and rebuild its state (caller holds the lock)."""
        process = shard.process
        if process is not None:
            for stream in (process.stdin, process.stdout):
                try:
                    stream.close()
                except Exception:
                    pass
            process.kill()
            process.wait()
        self.restarts += 1
        self._spawn(shard)
        for name, owner in self._documents.items():
            if owner != shard.index:
                continue
            self._send(
                shard,
                "add_document",
                {"name": name, "document": pickle.loads(self._sources[name])},
            )
            for op, payload in self._oplogs[name]:
                self._send(shard, op, dict(payload))

    def _call(self, shard: _Shard, op: str, payload: Dict[str, Any]) -> Any:
        """Locked round-trip with crash recovery: restart once, retry once."""
        self._require_open()
        with shard.lock:
            try:
                return self._send(shard, op, payload)
            except (OSError, EOFError):
                pass
            try:
                self._restart(shard)
                return self._send(shard, op, payload)
            except (OSError, EOFError) as exc:
                raise WorkerCrashedError(
                    f"shard {shard.index} worker died and could not be "
                    f"restarted: {exc}",
                    shard=shard.index,
                ) from exc

    def _scatter(self, op: str, payload: Dict[str, Any]) -> Dict[int, Any]:
        """One frame to every shard; gather ``{shard index: value}``.

        All stdin frames are written before any stdout is read, so shards
        work concurrently; responses are drained in shard order (each shard
        has exactly one frame in flight, so sequential reads cannot
        deadlock).  A shard whose pipe breaks is restarted and retried
        individually while the others' results are kept.
        """
        self._require_open()
        for shard in self._shards:
            shard.lock.acquire()
        try:
            pending: Dict[int, Optional[int]] = {}
            for shard in self._shards:
                rid = shard.next_rid()
                try:
                    write_frame(shard.process.stdin, (rid, op, dict(payload)))
                    pending[shard.index] = rid
                except OSError:
                    pending[shard.index] = None
            gathered: Dict[int, Tuple[bool, Any]] = {}
            failed: List[_Shard] = []
            for shard in self._shards:
                rid = pending[shard.index]
                if rid is None:
                    failed.append(shard)
                    continue
                try:
                    response_rid, ok, value = read_frame(shard.process.stdout)
                    if response_rid != rid:
                        raise EOFError("stream out of sync")
                except (OSError, EOFError):
                    failed.append(shard)
                    continue
                gathered[shard.index] = (ok, value)
            for shard in failed:
                try:
                    self._restart(shard)
                    gathered[shard.index] = (
                        True,
                        self._send(shard, op, dict(payload)),
                    )
                except (OSError, EOFError) as exc:
                    raise WorkerCrashedError(
                        f"shard {shard.index} worker died and could not be "
                        f"restarted: {exc}",
                        shard=shard.index,
                    ) from exc
            results: Dict[int, Any] = {}
            for shard in self._shards:
                ok, value = gathered[shard.index]
                if not ok:
                    raise decode_error(value)
                results[shard.index] = value
            return results
        finally:
            for shard in reversed(self._shards):
                shard.lock.release()

    def _require_open(self) -> None:
        if self._closed:
            raise ProbXMLError("the sharded warehouse has been closed")

    # -- placement ---------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """The shard index *name* hashes to (stable across processes/runs)."""
        point = _hash_point(name)
        position = bisect.bisect_right(self._ring, (point, len(self._shards)))
        if position == len(self._ring):
            position = 0
        return self._ring[position][1]

    def _resolve_name(self, name: Optional[str]) -> str:
        # Mirrors ProbXMLWarehouse._resolve_name verbatim, error text
        # included — the differential harness compares failure modes too.
        if name is not None:
            if name not in self._documents:
                raise ProbXMLError(f"no document named {name!r} in the warehouse")
            return name
        if DEFAULT_DOCUMENT in self._documents:
            return DEFAULT_DOCUMENT
        if len(self._documents) == 1:
            return next(iter(self._documents))
        if not self._documents:
            raise ProbXMLError("the warehouse holds no documents")
        raise ProbXMLError(
            f"the warehouse holds {len(self._documents)} documents "
            f"({', '.join(map(repr, self._documents))}); pass name="
        )

    def _owner(self, name: str) -> _Shard:
        return self._shards[self._documents[name]]

    # -- corpus management -------------------------------------------------

    def add_document(self, name: str, document, replace: bool = False):
        """Register *document* on its hash-assigned shard; returns the prob-tree."""
        if name in self._documents and not replace:
            raise ProbXMLError(
                f"document {name!r} already exists in the warehouse; drop() it "
                f"first or pass replace=True"
            )
        probtree = _coerce_document(document)
        source = pickle.dumps(probtree, protocol=pickle.HIGHEST_PROTOCOL)
        index = self._documents.get(name, self.shard_of(name))
        self._call(
            self._shards[index],
            "add_document",
            {"name": name, "document": probtree, "replace": replace},
        )
        self._documents[name] = index
        self._sources[name] = source
        self._oplogs[name] = []
        return probtree

    def drop(self, name: str):
        """Remove the document; returns the shard's current prob-tree for it."""
        if name not in self._documents:
            raise ProbXMLError(f"no document named {name!r} in the warehouse")
        dropped = self._call(self._owner(name), "drop", {"name": name})
        del self._documents[name]
        del self._sources[name]
        del self._oplogs[name]
        return dropped

    def names(self) -> Tuple[str, ...]:
        """The registered document names, in insertion order."""
        return tuple(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: object) -> bool:
        return name in self._documents

    def get(self, name: Optional[str] = None):
        """The named document's prob-tree (a pickled copy, not a live object)."""
        resolved = self._resolve_name(name)
        return self._call(self._owner(resolved), "get", {"name": resolved})

    def size(self, name: Optional[str] = None) -> int:
        resolved = self._resolve_name(name)
        return self._call(self._owner(resolved), "size", {"name": resolved})

    def event_count(self, name: Optional[str] = None) -> int:
        resolved = self._resolve_name(name)
        return self._call(self._owner(resolved), "event_count", {"name": resolved})

    # -- queries -----------------------------------------------------------

    def query(
        self,
        query,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
    ):
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "query",
            {"query": query, "name": resolved, "engine": engine, "matcher": matcher},
        )

    def query_many(
        self,
        queries,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
    ):
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "query_many",
            {
                "queries": list(queries),
                "name": resolved,
                "engine": engine,
                "matcher": matcher,
            },
        )

    def query_all(
        self, query, engine: Optional[str] = None, matcher: Optional[str] = None
    ):
        """Scatter one query to every shard; gather ``{name: answers}``."""
        gathered = self._scatter(
            "query_all", {"query": query, "engine": engine, "matcher": matcher}
        )
        merged: Dict[str, Any] = {}
        for per_shard in gathered.values():
            merged.update(per_shard)
        return {name: merged[name] for name in self._documents if name in merged}

    def top_answers(self, query, count: int = 3, name: Optional[str] = None):
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "top_answers",
            {"query": query, "count": count, "name": resolved},
        )

    def probability(
        self,
        query,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
    ) -> float:
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "probability",
            {"query": query, "name": resolved, "engine": engine, "matcher": matcher},
        )

    def probability_anytime(
        self,
        query,
        name: Optional[str] = None,
        engine: Optional[str] = None,
        matcher: Optional[str] = None,
        epsilon: Optional[float] = None,
        confidence: Optional[float] = None,
        max_samples: Optional[int] = None,
        deadline: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "probability_anytime",
            {
                "query": query,
                "name": resolved,
                "engine": engine,
                "matcher": matcher,
                "epsilon": epsilon,
                "confidence": confidence,
                "max_samples": max_samples,
                "deadline": deadline,
                "seed": seed,
            },
        )

    def probability_all(
        self, query, engine: Optional[str] = None, matcher: Optional[str] = None
    ) -> Dict[str, float]:
        """Scatter one boolean query to every shard; gather ``{name: p}``."""
        gathered = self._scatter(
            "probability_all", {"query": query, "engine": engine, "matcher": matcher}
        )
        merged: Dict[str, float] = {}
        for per_shard in gathered.values():
            merged.update(per_shard)
        return {name: merged[name] for name in self._documents if name in merged}

    # -- updates -----------------------------------------------------------

    def insert(
        self,
        query,
        subtree,
        at=None,
        confidence: float = 1.0,
        event: Optional[str] = None,
        name: Optional[str] = None,
    ) -> ProbabilisticUpdate:
        resolved_query = ProbXMLWarehouse._resolve(query)
        target = (
            at if at is not None else ProbXMLWarehouse._default_focus(resolved_query)
        )
        update = ProbabilisticUpdate(
            Insertion(resolved_query, target, subtree),
            confidence=confidence,
            event=event,
        )
        self.apply(update, name=name)
        return update

    def delete(
        self,
        query,
        at=None,
        confidence: float = 1.0,
        event: Optional[str] = None,
        name: Optional[str] = None,
    ) -> ProbabilisticUpdate:
        resolved_query = ProbXMLWarehouse._resolve(query)
        target = (
            at if at is not None else ProbXMLWarehouse._default_focus(resolved_query)
        )
        update = ProbabilisticUpdate(
            Deletion(resolved_query, target), confidence=confidence, event=event
        )
        self.apply(update, name=name)
        return update

    def _mutate(self, name: Optional[str], op: str, payload: Dict[str, Any]) -> None:
        resolved = self._resolve_name(name)
        payload = dict(payload, name=resolved)
        self._call(self._owner(resolved), op, payload)
        # Logged only after the worker acknowledged the commit, so a replay
        # after a crash reconstructs exactly the acked state.
        self._oplogs[resolved].append((op, payload))

    def apply(self, update: ProbabilisticUpdate, name: Optional[str] = None) -> None:
        self._mutate(name, "apply", {"update": update})

    def clean(self, name: Optional[str] = None) -> None:
        self._mutate(name, "clean", {})

    def prune_below(self, threshold: float, name: Optional[str] = None) -> None:
        self._mutate(name, "prune_below", {"threshold": threshold})

    # -- inspection --------------------------------------------------------

    def possible_worlds(self, normalize: bool = True, name: Optional[str] = None):
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "possible_worlds",
            {"normalize": normalize, "name": resolved},
        )

    def most_probable_worlds(self, count: int = 3, name: Optional[str] = None):
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved),
            "most_probable_worlds",
            {"count": count, "name": resolved},
        )

    def dtd_satisfiable(self, dtd, name: Optional[str] = None) -> bool:
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved), "dtd_satisfiable", {"dtd": dtd, "name": resolved}
        )

    def dtd_valid(self, dtd, name: Optional[str] = None) -> bool:
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved), "dtd_valid", {"dtd": dtd, "name": resolved}
        )

    def dtd_probability(self, dtd, name: Optional[str] = None) -> float:
        resolved = self._resolve_name(name)
        return self._call(
            self._owner(resolved), "dtd_probability", {"dtd": dtd, "name": resolved}
        )

    # -- observability -----------------------------------------------------

    @property
    def stats(self) -> ContextStats:
        """Corpus-wide counters: every shard's stats merged into one."""
        merged = ContextStats()
        for value in self._scatter("stats", {}).values():
            merged.merge(value["stats"])
        return merged

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard raw stats: counters plus pool size, document count, pid."""
        gathered = self._scatter("stats", {})
        return [gathered[shard.index] for shard in self._shards]

    def gc_formula_pools(self) -> int:
        """Run the formula-pool GC on every shard; total nodes swept."""
        return sum(self._scatter("gc_pool", {}).values())

    def batch_on_shard(
        self, index: int, requests: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Tuple[bool, Any]]:
        """Run several ops against one shard in a single round-trip.

        The HTTP front-end's unit of batching: pending requests for the
        same shard collapse into one frame.  Returns ``(ok, value)`` per
        request — failures carry the reconstructed typed exception instead
        of aborting the whole batch.  Read-only ops only: batched mutations
        would bypass the router's oplog and break crash recovery.
        """
        raw = self._call(self._shards[index], "batch", {"requests": list(requests)})
        return [
            (ok, value if ok else decode_error(value)) for ok, value in raw
        ]

    def healthy(self) -> bool:
        """Whether every worker currently answers a ping (no restart attempt)."""
        for shard in self._shards:
            with shard.lock:
                try:
                    self._send(shard, "ping", {})
                except (OSError, EOFError):
                    return False
        return True

    # -- fault injection (tests/benchmarks) --------------------------------

    def inject_crash(
        self,
        site: str = "service.worker",
        name: Optional[str] = None,
        shard: Optional[int] = None,
        at: int = 1,
    ) -> int:
        """Arm a one-shot crash on one worker; returns the shard index.

        The worker hard-exits (``os._exit``) on the *at*-th crossing of
        *site* — for ``"service.worker"`` that is the start of the *at*-th
        subsequent request, for deeper sites somewhere inside a specific
        operation.  The next call routed there then trips the router's
        restart-and-replay path.
        """
        if shard is None:
            resolved = self._resolve_name(name)
            shard = self._documents[resolved]
        self._call(self._shards[shard], "arm_fault", {"site": site, "at": at})
        return shard

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (politely, then by force). Idempotent."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            try:
                write_frame(process.stdin, (shard.next_rid(), "shutdown", {}))
            except Exception:
                pass
            for stream in (process.stdin, process.stdout):
                try:
                    stream.close()
                except Exception:
                    pass
            try:
                process.wait(timeout=SHUTDOWN_GRACE)
            except Exception:
                process.kill()
                process.wait()
            shard.process = None

    def __enter__(self) -> "ShardedWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass
