"""Wire protocol between the router and its shard workers.

Frames are length-prefixed pickles over a byte stream (the worker's
stdin/stdout pipes): a 4-byte big-endian payload length followed by the
pickled message.  Requests are ``(rid, op, payload)`` triples and responses
``(rid, ok, value)`` — ``rid`` is a per-connection monotonically increasing
integer the router uses to pair responses with requests, ``ok`` is a bool,
and on failure ``value`` is a **typed error payload** instead of the result.

Typed error propagation is the point of the codec below.  Exceptions do not
pickle reliably in general — several library errors take keyword state
(:class:`~repro.utils.errors.BudgetExceededError` carries ``spent``/
``budget``, :class:`~repro.utils.errors.InjectedFault` rebuilds its message
from ``(site, occurrence)``), and naive ``pickle.dumps(exc)`` re-invokes
``__init__`` with ``args`` and breaks.  So errors cross the wire as a plain
``{"type", "message", "attrs", "traceback"}`` dict: library errors (any
:class:`~repro.utils.errors.ProbXMLError` subclass) are reconstructed as
their original type — allocation via ``cls.__new__`` sidesteps the custom
``__init__`` signatures, attributes are restored by name — and anything else
(a genuine worker bug) becomes a :class:`~repro.utils.errors.RemoteError`
carrying the remote type name and traceback text.

The protocol is trusted-transport only: frames are pickles exchanged with
subprocesses this package itself spawned, never with the network (the HTTP
front-end speaks JSON and re-encodes).
"""

from __future__ import annotations

import pickle
import struct
import traceback
from typing import Any, Dict, Tuple

from repro.utils import errors as _errors
from repro.utils.errors import ProbXMLError, RemoteError

#: Big-endian unsigned frame length.
HEADER = struct.Struct(">I")

#: Refuse to allocate for frames claiming more than this many bytes — a
#: corrupted header (e.g. a stray print into the worker's stdout) would
#: otherwise read gigabytes of garbage before failing.
MAX_FRAME_BYTES = 1 << 30


def write_frame(stream, message: Any) -> None:
    """Pickle *message* and write it as one length-prefixed frame."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(HEADER.pack(len(data)))
    stream.write(data)
    stream.flush()


def _read_exact(stream, count: int) -> bytes:
    chunks = []
    while count:
        chunk = stream.read(count)
        if not chunk:
            raise EOFError(
                "pipe closed mid-frame"
                if chunks
                else "pipe closed (no frame pending)"
            )
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def read_frame(stream) -> Any:
    """Read one length-prefixed frame; raises :class:`EOFError` on a closed pipe."""
    (length,) = HEADER.unpack(_read_exact(stream, HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise EOFError(f"frame header claims {length} bytes; stream is corrupt")
    return pickle.loads(_read_exact(stream, length))


# ---------------------------------------------------------------------------
# Typed error codec
# ---------------------------------------------------------------------------


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """The wire encoding of *exc*: type name, message, picklable attributes."""
    attrs = {}
    for name, value in vars(exc).items():
        try:
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            continue
        attrs[name] = value
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "attrs": attrs,
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def decode_error(payload: Dict[str, Any]) -> Exception:
    """Rebuild the typed exception a worker encoded with :func:`encode_error`.

    Library errors come back as their original class (so ``except
    BudgetExceededError:`` works across the wire, ``spent``/``budget``
    attributes intact); unknown types degrade to :class:`RemoteError`.
    """
    name = payload.get("type", "")
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ProbXMLError):
        exc = cls.__new__(cls)
        # Bypass the subclass __init__ (signatures vary: BudgetExceededError
        # takes keywords, InjectedFault builds its own message) but keep the
        # Exception machinery consistent with a normal construction.
        Exception.__init__(exc, payload.get("message", ""))
        for key, value in payload.get("attrs", {}).items():
            try:
                setattr(exc, key, value)
            except Exception:
                pass
        return exc
    return RemoteError(
        f"shard worker raised {name or 'an unknown error'}: "
        f"{payload.get('message', '')}",
        remote_type=name,
        remote_traceback=payload.get("traceback", ""),
    )


Request = Tuple[int, str, Dict[str, Any]]
Response = Tuple[int, bool, Any]

__all__ = [
    "HEADER",
    "MAX_FRAME_BYTES",
    "write_frame",
    "read_frame",
    "encode_error",
    "decode_error",
]
