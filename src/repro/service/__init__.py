"""Process-sharded corpus service: shard workers, a router, an async front-end.

One Python process is the warehouse's throughput ceiling — the GIL
serializes exact pricing, matching and sampling no matter how many threads a
host has.  This package moves past it by sharding the *corpus*: each
document lives in exactly one **shard worker** (a subprocess owning its own
:class:`~repro.core.context.ExecutionContext` and
:class:`~repro.formulas.ir.FormulaPool`), a **router**
(:class:`~repro.service.router.ShardedWarehouse`) consistent-hashes document
names to shards and mirrors the :class:`~repro.core.engine.ProbXMLWarehouse`
API verbatim, and an **asyncio front-end**
(:class:`~repro.service.http.ServiceFrontend`, stdlib-only) exposes JSON
endpoints with request-level batching into shard round-trips.

The wire protocol (:mod:`repro.service.protocol`) is length-prefixed pickle
frames with *typed* error propagation: a
:class:`~repro.utils.errors.BudgetExceededError` raised inside a worker
arrives at the caller as a :class:`BudgetExceededError`, attributes intact.
Crashed workers are respawned from their document sources and a replayed
per-document operation log; the single-process warehouse remains the
differential oracle (``tests/service/test_sharded_differential.py``).
"""

from repro.service.router import ShardedWarehouse
from repro.service.http import ServiceFrontend

__all__ = ["ShardedWarehouse", "ServiceFrontend"]
