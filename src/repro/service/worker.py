"""The shard worker: one subprocess, one disjoint slice of the corpus.

A worker owns a private :class:`~repro.core.engine.ProbXMLWarehouse` — and
through it a private :class:`~repro.core.context.ExecutionContext` and
:class:`~repro.formulas.ir.FormulaPool` — holding exactly the documents the
router hashed to this shard.  It serves requests over length-prefixed pickle
frames on stdin/stdout (:mod:`repro.service.protocol`): read a ``(rid, op,
payload)`` request, dispatch it against the warehouse, write ``(rid, True,
value)`` or ``(rid, False, encoded_error)``.  Library exceptions therefore
*survive the wire typed* — a budget trip inside the worker is a
:class:`~repro.utils.errors.BudgetExceededError` at the router.

Two details keep the frame stream trustworthy:

* ``sys.stdout`` is rebound to stderr for the worker's lifetime, so a stray
  ``print`` anywhere in the library lands in the parent's stderr instead of
  corrupting a frame header;
* fault injection for the router's crash-recovery path rides the
  ``"service.worker"`` site of :mod:`repro.utils.faults`: the router arms a
  plan over the wire (``arm_fault``), the worker crosses the site once per
  request, and an :class:`~repro.utils.errors.InjectedFault` makes the
  process **hard-exit** (``os._exit(70)``, no response frame, no cleanup) —
  exactly what a kill -9 mid-request looks like from the router's side.
  Arming a deeper site (say ``"datatree.add_child"``) crashes mid-mutation
  instead; the transactional undo log has already rolled the document back
  by the time the process dies, so replay-from-sources stays exact.

Workers are long-lived, so streaming corpora benefit directly from
journal-patched columnar maintenance: under ``matcher="columnar"``/``"auto"``
an update op followed by a query patches the shard's cached column forward
instead of rebuilding it, and the ``stats`` op reports the warehouse's
``columns_patched`` / ``column_rebuilds`` counters over the wire so the
router's merged view shows the policy working per shard.

Run directly (``python -m repro.service.worker``) or through the CLI
(``python -m repro.cli shard``); the router spawns one per shard.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, Optional

from repro.core.context import ExecutionContext
from repro.core.engine import ProbXMLWarehouse
from repro.service.protocol import encode_error, read_frame, write_frame
from repro.utils.errors import InjectedFault, ProbXMLError
from repro.utils.faults import FaultPlan, activated, fire

#: Exit status of an injected hard crash (distinct from error exits so the
#: harness can assert the worker died the way it was told to).
CRASH_EXIT_CODE = 70


class ShardWorker:
    """Dispatches wire ops against this shard's private warehouse."""

    def __init__(self) -> None:
        self.warehouse: Optional[ProbXMLWarehouse] = None
        self.crash_plan: Optional[FaultPlan] = None

    # -- configuration -----------------------------------------------------

    def _configure(self, payload: Dict[str, Any]):
        context = ExecutionContext(
            engine=payload.get("engine"),
            matcher=payload.get("matcher"),
            max_cached_answers=payload.get("max_cached_answers"),
            pricing=payload.get("pricing"),
            snapshot_retention=payload.get("snapshot_retention"),
            formula_pool_node_limit=payload.get("formula_pool_node_limit"),
        )
        self.warehouse = ProbXMLWarehouse(
            context=context, isolation=payload.get("isolation", "snapshot")
        )
        return {"pid": os.getpid()}

    def _arm_fault(self, payload: Dict[str, Any]):
        plan = FaultPlan().arm(
            payload["site"],
            at=payload.get("at", 1),
            action=payload.get("action", "raise"),
            delay=payload.get("delay", 0.0),
        )
        self.crash_plan = plan
        return sorted(plan.armed_sites)

    def _disarm_faults(self, payload: Dict[str, Any]):
        self.crash_plan = None
        return None

    # -- dispatch ----------------------------------------------------------

    def _require_warehouse(self) -> ProbXMLWarehouse:
        if self.warehouse is None:
            raise ProbXMLError(
                "shard worker is not configured; send a 'configure' op first"
            )
        return self.warehouse

    def dispatch(self, op: str, payload: Dict[str, Any]) -> Any:
        if op == "configure":
            return self._configure(payload)
        if op == "arm_fault":
            return self._arm_fault(payload)
        if op == "disarm_faults":
            return self._disarm_faults(payload)
        if op == "ping":
            return {"pid": os.getpid(), "configured": self.warehouse is not None}
        if op == "batch":
            # Per-item success/failure: one bad request must not poison the
            # rest of an HTTP batch that happened to share its round-trip.
            results = []
            for item_op, item_payload in payload["requests"]:
                try:
                    results.append((True, self.dispatch(item_op, item_payload)))
                except InjectedFault:
                    raise
                except Exception as exc:
                    results.append((False, encode_error(exc)))
            return results

        warehouse = self._require_warehouse()
        common = {
            key: payload[key]
            for key in ("name", "engine", "matcher")
            if payload.get(key) is not None
        }
        if op == "query":
            return warehouse.query(payload["query"], **common)
        if op == "query_many":
            return warehouse.query_many(payload["queries"], **common)
        if op == "query_all":
            common.pop("name", None)
            return warehouse.query_all(payload["query"], **common)
        if op == "top_answers":
            return warehouse.top_answers(
                payload["query"], count=payload.get("count", 3),
                name=payload.get("name"),
            )
        if op == "probability":
            return warehouse.probability(payload["query"], **common)
        if op == "probability_all":
            common.pop("name", None)
            return warehouse.probability_all(payload["query"], **common)
        if op == "probability_anytime":
            return warehouse.probability_anytime(
                payload["query"],
                **common,
                epsilon=payload.get("epsilon"),
                confidence=payload.get("confidence"),
                max_samples=payload.get("max_samples"),
                deadline=payload.get("deadline"),
                seed=payload.get("seed"),
            )
        if op == "add_document":
            warehouse.add_document(
                payload["name"], payload["document"],
                replace=payload.get("replace", False),
            )
            return None
        if op == "drop":
            return warehouse.drop(payload["name"])
        if op == "get":
            return warehouse.get(payload.get("name"))
        if op == "names":
            return warehouse.names()
        if op == "size":
            return warehouse.size(payload.get("name"))
        if op == "event_count":
            return warehouse.event_count(payload.get("name"))
        if op == "apply":
            warehouse.apply(payload["update"], name=payload.get("name"))
            return None
        if op == "clean":
            warehouse.clean(payload.get("name"))
            return None
        if op == "prune_below":
            warehouse.prune_below(payload["threshold"], name=payload.get("name"))
            return None
        if op == "possible_worlds":
            return warehouse.possible_worlds(
                normalize=payload.get("normalize", True), name=payload.get("name")
            )
        if op == "most_probable_worlds":
            return warehouse.most_probable_worlds(
                count=payload.get("count", 3), name=payload.get("name")
            )
        if op == "dtd_satisfiable":
            return warehouse.dtd_satisfiable(payload["dtd"], name=payload.get("name"))
        if op == "dtd_valid":
            return warehouse.dtd_valid(payload["dtd"], name=payload.get("name"))
        if op == "dtd_probability":
            return warehouse.dtd_probability(payload["dtd"], name=payload.get("name"))
        if op == "stats":
            stats = warehouse.stats.as_dict()
            return {
                "stats": stats,
                "pool_nodes": warehouse.context.formula_pool.node_count(),
                "documents": len(warehouse),
                "pid": os.getpid(),
            }
        if op == "gc_pool":
            return warehouse.context.gc_formula_pool()
        if op == "pool_node_count":
            return warehouse.context.formula_pool.node_count()
        raise ProbXMLError(f"shard worker does not understand op {op!r}")


def worker_main(stdin=None, stdout=None) -> int:
    """Serve frames until the pipe closes or a ``shutdown`` op arrives."""
    inp = stdin if stdin is not None else sys.stdin.buffer
    out = stdout if stdout is not None else sys.stdout.buffer
    # Anything the library prints must not interleave with frame bytes.
    sys.stdout = sys.stderr
    worker = ShardWorker()
    while True:
        try:
            rid, op, payload = read_frame(inp)
        except EOFError:
            return 0
        if op == "shutdown":
            try:
                write_frame(out, (rid, True, None))
            except OSError:
                pass  # the router may close its end without reading the ack
            return 0
        stats = worker.warehouse.stats if worker.warehouse is not None else None
        try:
            # The plan is captured before dispatch: an arm_fault request
            # installs its plan for the *next* request, not its own.
            with activated(worker.crash_plan, stats):
                fire("service.worker")
                value = worker.dispatch(op, payload)
            write_frame(out, (rid, True, value))
            # Drop the reference: a lingering result (say, a drop's returned
            # prob-tree) would keep its engine — and through the engine's
            # memo, swept-able pool nodes — alive across the next gc_pool.
            value = None
        except InjectedFault:
            # Simulate a hard crash: no response, no cleanup, no goodbye.
            sys.stderr.flush()
            os._exit(CRASH_EXIT_CODE)
        except OSError:
            return 1  # the router went away mid-response; nothing to serve
        except Exception as exc:
            write_frame(out, (rid, False, encode_error(exc)))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(worker_main())
