"""Elementary update operations (Definitions 14–15) and probabilistic updates.

An elementary update operation is a pair ``(Q, v)`` where ``Q`` is a locally
monotone query and ``v`` is either an insertion ``i(n, t')`` (insert the tree
``t'`` as a child of the node matched by query node ``n``) or a deletion
``d(n)`` (delete the node matched by ``n``, with its subtree).  The operation
applies at *every* match of ``Q``.

A probabilistic update is a pair ``(τ, c)`` of an update operation and a
confidence ``c ∈ ]0; 1]``; its semantics on possible worlds is given in
Definition 16 (see :mod:`repro.updates.pw_updates`) and its direct
implementation on prob-trees in :mod:`repro.updates.probtree_updates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Union

from repro.queries.base import Query, QueryNodeId
from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import tree_index
from repro.utils.errors import InvalidProbabilityError, UpdateError


@dataclass(frozen=True)
class Insertion:
    """``i(n, t')``: insert *subtree* as a child of the node matched by *at*."""

    query: Query
    at: QueryNodeId
    subtree: DataTree

    def describe(self) -> str:
        return f"insert {self.subtree.root_label!r}-subtree at query node {self.at!r}"


@dataclass(frozen=True)
class Deletion:
    """``d(n)``: delete the node matched by *at* (and its whole subtree)."""

    query: Query
    at: QueryNodeId

    def describe(self) -> str:
        return f"delete node matched by query node {self.at!r}"


UpdateOperation = Union[Insertion, Deletion]


@dataclass(frozen=True)
class ProbabilisticUpdate:
    """A probabilistic update ``(τ, c)``.

    Attributes:
        operation: the elementary update operation ``τ``.
        confidence: the confidence ``c ∈ ]0; 1]``; with ``c = 1`` the update
            is certain and introduces no new event variable.
        event: optional name for the fresh event variable capturing the
            update's uncertainty (auto-generated when omitted and needed).
    """

    operation: UpdateOperation
    confidence: float = 1.0
    event: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise InvalidProbabilityError(
                f"update confidence must lie in ]0; 1], got {self.confidence!r}"
            )

    @property
    def is_certain(self) -> bool:
        return self.confidence >= 1.0


def apply_to_datatree(operation: UpdateOperation, tree: DataTree) -> DataTree:
    """Apply an elementary update operation to a plain data tree (Definition 15).

    Returns a new tree; the input is not modified.  Insertions insert one
    copy of the subtree per match (possibly several times at the same node);
    deletions delete every matched target (deleting the root is not allowed,
    as a data tree always keeps its root).
    """
    result = tree.copy()
    matches = operation.query.matches(tree)
    if not matches:
        return result

    if isinstance(operation, Insertion):
        for match in matches:
            target = match.target(operation.at)
            result.add_subtree(target, operation.subtree)
        return result

    if isinstance(operation, Deletion):
        targets: Set[NodeId] = {match.target(operation.at) for match in matches}
        if tree.root in targets:
            raise UpdateError("a deletion may not target the root of the tree")
        # Deeper targets first so ancestors removing them en masse is harmless.
        depth = tree_index(tree).depth
        for target in sorted(targets, key=lambda node: -depth(node)):
            if result.has_node(target):
                result.delete_subtree(target)
        return result

    raise UpdateError(f"unknown update operation {operation!r}")


__all__ = [
    "Insertion",
    "Deletion",
    "UpdateOperation",
    "ProbabilisticUpdate",
    "apply_to_datatree",
]
