"""Probabilistic updates on possible-world sets (Definition 16).

This is the *semantic reference*: the result of a probabilistic update
``(τ, c)`` on a PW set keeps unselected worlds untouched and splits each
selected world ``(t, p)`` into ``(τ(t), p·c)`` and ``(t, p·(1 − c))``.
Applying updates this way is exponential in practice (the PW set itself may
be exponential in the prob-tree size); the whole point of the prob-tree
algorithm of Appendix A (:mod:`repro.updates.probtree_updates`) is to avoid
materializing it, and the test suite checks both agree
(``⟦(τ,c)(T)⟧ ∼ (τ,c)(⟦T⟧)``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.pw.pwset import PWSet
from repro.trees.datatree import DataTree
from repro.updates.operations import ProbabilisticUpdate, apply_to_datatree


def apply_update_to_pwset(
    pwset: PWSet,
    update: ProbabilisticUpdate,
    normalize: bool = False,
) -> PWSet:
    """Apply ``(τ, c)`` to every possible world (Definition 16)."""
    operation = update.operation
    confidence = update.confidence
    worlds: List[Tuple[DataTree, float]] = []
    for tree, probability in pwset:
        if operation.query.selects(tree):
            worlds.append((apply_to_datatree(operation, tree), probability * confidence))
            if confidence < 1.0:
                worlds.append((tree, probability * (1.0 - confidence)))
        else:
            worlds.append((tree, probability))
    result = PWSet(worlds)
    return result.normalize() if normalize else result


def apply_updates_to_pwset(
    pwset: PWSet,
    updates: List[ProbabilisticUpdate],
    normalize_each: bool = True,
) -> PWSet:
    """Apply a sequence of probabilistic updates, normalizing along the way.

    Normalizing between updates keeps the intermediate world count as small
    as possible; it does not change the semantics (normalization preserves
    the ``∼`` class).
    """
    current = pwset
    for update in updates:
        current = apply_update_to_pwset(current, update, normalize=normalize_each)
    return current


__all__ = ["apply_update_to_pwset", "apply_updates_to_pwset"]
