"""Probabilistic updates applied directly to prob-trees (Appendix A).

The algorithm never materializes the possible-world set:

**Insertion** ``(Q, i(n, t'))`` with confidence ``c``:  a fresh event ``w``
with ``π(w) = c`` is created (none when ``c = 1``); for every match of ``Q``
on the underlying data tree, a copy of ``t'`` is inserted as a child of the
matched node, its root annotated with ``{w} ∪ (cond − (γ(target) ∪
cond_ancestors))`` where ``cond`` is the union of the conditions of the
answer's nodes — i.e. exactly the extra constraints, beyond the target's own
presence, under which this particular match exists.

**Deletion** ``(Q, d(n))`` with confidence ``c``:  for every tree node ``x``
targeted by at least one match, the node must disappear in precisely the
worlds satisfying ``δ_x = w ∧ ⋁_k cond_k`` (one disjunct per match targeting
``x``).  The node and its subtree are replaced by one conditional copy per
disjunct of a *disjoint* DNF of ``¬δ_x`` (the Appendix A chain construction,
generalized in :mod:`repro.updates.disjoint`), each copy keeping the original
descendant conditions.  Targeted nodes are processed bottom-up so nested
targets compose correctly.  The number of copies — hence the output size —
may be exponential; Theorem 3 shows no equivalent prob-tree can avoid this.

The consistency property ``⟦(τ,c)(T)⟧ ∼ (τ,c)(⟦T⟧)`` is exercised by the
test suite against :mod:`repro.updates.pw_updates` on enumerable instances.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.context import ExecutionContext, resolve_context
from repro.core.probtree import ProbTree
from repro.core.transactions import transaction
from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition, Literal
from repro.queries.base import Match
from repro.trees.datatree import DataTree, NodeId
from repro.trees.index import tree_index
from repro.updates.disjoint import disjoint_negation
from repro.updates.operations import (
    Deletion,
    Insertion,
    ProbabilisticUpdate,
    UpdateOperation,
)
from repro.utils.errors import UpdateError
from repro.utils.faults import activated


def apply_update_to_probtree(
    probtree: ProbTree,
    update: ProbabilisticUpdate,
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> ProbTree:
    """Apply a probabilistic update to a prob-tree, returning a new prob-tree.

    The returned prob-tree owns a *fresh* :class:`~repro.trees.datatree.DataTree`
    (a copy, mutated in place), so context answer-set caches keyed by tree
    object never serve the pre-update answers for the post-update document.
    Match finding goes through the context's matcher policy (``matcher=``
    overrides its default).

    Because the copy preserves surviving node identifiers, labels and
    conditions, the context's cached answers whose patterns cannot touch the
    mutated labels stay valid and are *migrated* to the returned prob-tree
    (:meth:`ExecutionContext.migrate_answers`) instead of being lost with
    the replaced objects — a warm update/query loop only recomputes the
    queries the update could actually have affected.  The per-probtree
    formula caches migrate alongside
    (:meth:`ExecutionContext.migrate_formulas`): the update's distribution
    only *adds* one fresh event, so every price computed against the old
    prob-tree is still exact on the new one.

    The operation is **transactional**: the mutation phase — event
    registration, tree mutations, journal entries, version bumps — runs
    inside one :func:`~repro.core.transactions.transaction`, committing in
    order (tree mutation → journal → index patch on next access → cache
    migration → version bumps were part of each step) or rolling back
    entirely on any exception, which then propagates.  Since the input
    prob-tree is never mutated at all (copy-then-mutate-then-return), a
    failed update has *no externally visible effect*: the caller's document,
    its index and every cached answer are byte-identical to before the call.
    When the context carries a :class:`~repro.utils.faults.FaultPlan`
    (``fault_plan=``), it is activated around the whole operation — the
    crash-consistency harness injects failures at every mutator/migration
    site through exactly this hook.
    """
    ctx = resolve_context(context, matcher=matcher)
    with activated(ctx.fault_plan, ctx.stats):
        return _apply_update(ctx, probtree, update)


def _apply_update(
    ctx: ExecutionContext, probtree: ProbTree, update: ProbabilisticUpdate
) -> ProbTree:
    operation = update.operation
    matches = ctx.matches(operation.query, probtree.tree)
    result = probtree.copy()
    if not matches:
        # No world can be selected by Q (local monotonicity), so nothing
        # changes and no event needs to be introduced; every cached answer
        # carries over verbatim.
        ctx.migrate_answers(probtree, result, frozenset())
        return result

    with transaction(result, context=ctx):
        extra_condition = Condition.true()
        if not update.is_certain:
            event = update.event or probtree.event_factory().fresh()
            if event in result.events():
                raise UpdateError(f"event {event!r} already exists in the prob-tree")
            result.add_event(event, update.confidence)
            extra_condition = Condition.positive(event)

        if isinstance(operation, Insertion):
            touched = _apply_insertion(
                probtree, result, operation, matches, extra_condition
            )
        elif isinstance(operation, Deletion):
            touched = _apply_deletion(
                probtree, result, operation, matches, extra_condition
            )
        else:
            raise UpdateError(f"unknown update operation {operation!r}")
    ctx.migrate_answers(probtree, result, touched)
    return result


def apply_updates_to_probtree(
    probtree: ProbTree,
    updates: List[ProbabilisticUpdate],
    matcher: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> ProbTree:
    """Apply a sequence of probabilistic updates in order.

    Atomic with respect to the caller's prob-tree: each step consumes the
    previous step's *result* and the input is never mutated, so when the
    k-th operation raises, every intermediate prob-tree is discarded and the
    caller observes no effect at all — tree, index, journal, caches and
    version counters are exactly as before the batch.
    """
    current = probtree
    for update in updates:
        current = apply_update_to_probtree(current, update, matcher=matcher, context=context)
    return current


# ---------------------------------------------------------------------------
# Insertion
# ---------------------------------------------------------------------------


def _apply_insertion(
    original: ProbTree,
    result: ProbTree,
    operation: Insertion,
    matches: List[Match],
    extra_condition: Condition,
) -> FrozenSet[str]:
    """Apply the insertion; returns the labels the mutation touched."""
    tree = original.tree
    for match in matches:
        target = match.target(operation.at)
        answer_condition = _answer_condition(original, match)
        presence = original.accumulated_condition(target)
        root_condition = extra_condition.conjoin(answer_condition.minus(presence))
        mapping = result.tree.add_subtree(target, operation.subtree)
        inserted_root = mapping[operation.subtree.root]
        if not root_condition.is_true():
            result.set_condition(inserted_root, root_condition)
    subtree = operation.subtree
    return frozenset(subtree.label(node) for node in subtree.nodes())


# ---------------------------------------------------------------------------
# Deletion
# ---------------------------------------------------------------------------


def _apply_deletion(
    original: ProbTree,
    result: ProbTree,
    operation: Deletion,
    matches: List[Match],
    extra_condition: Condition,
) -> FrozenSet[str]:
    """Apply the deletion; returns the labels the mutation touched."""
    tree = original.tree
    by_target: Dict[NodeId, List[Match]] = {}
    for match in matches:
        target = match.target(operation.at)
        by_target.setdefault(target, []).append(match)

    if tree.root in by_target:
        raise UpdateError("a deletion may not target the root of the tree")

    # Bottom-up (deepest first) so that replacing an ancestor copies the
    # already-rewritten descendants.
    depth = tree_index(tree).depth
    ordered_targets = sorted(by_target, key=lambda node: -depth(node))
    touched: set = set()
    for target in ordered_targets:
        target_condition = original.condition(target)
        presence = original.accumulated_condition(target)
        disjuncts: List[Condition] = []
        for match in by_target[target]:
            answer_condition = _answer_condition(original, match)
            reduced = extra_condition.conjoin(answer_condition.minus(presence))
            if reduced.is_consistent():
                disjuncts.append(reduced)
        if not disjuncts:
            # The deletion can never fire for this node: nothing changes.
            continue
        # Both the removal and the conditional re-insertions stay within the
        # target's label multiset, so these labels cover the whole rewrite.
        touched.update(
            tree.label(node) for node in tree.descendants(target, include_self=True)
        )
        survival = disjoint_negation(DNF(disjuncts))
        _replace_with_conditional_copies(result, target, target_condition, survival)
    return frozenset(touched)


def _replace_with_conditional_copies(
    result: ProbTree,
    target: NodeId,
    target_condition: Condition,
    survival: DNF,
) -> None:
    """Replace *target*'s subtree by one conditional copy per survival disjunct."""
    parent = result.tree.parent(target)
    if parent is None:  # pragma: no cover - guarded by the caller
        raise UpdateError("cannot replace the root with conditional copies")
    subtree, subtree_conditions = _extract_conditional_subtree(result, target)
    result.remove_subtree(target)
    for disjunct in survival.disjuncts:
        copy_condition = target_condition.conjoin(disjunct)
        if not copy_condition.is_consistent():
            continue
        mapping = result.tree.add_subtree(parent, subtree)
        for original_node, condition in subtree_conditions.items():
            node = mapping[original_node]
            if original_node == subtree.root:
                continue
            if not condition.is_true():
                result.set_condition(node, condition)
        if not copy_condition.is_true():
            result.set_condition(mapping[subtree.root], copy_condition)


def _extract_conditional_subtree(
    probtree: ProbTree, node: NodeId
) -> Tuple[DataTree, Dict[NodeId, Condition]]:
    """Copy the subtree at *node* together with its condition annotations.

    Returns the copied :class:`DataTree` (re-rooted, fresh ids) and the
    conditions keyed by the *copy's* node ids.  The copied root's own
    condition is intentionally excluded — callers decide what the copies'
    root conditions become.
    """
    tree = probtree.tree
    subtree = DataTree(tree.label(node))
    conditions: Dict[NodeId, Condition] = {}
    mapping: Dict[NodeId, NodeId] = {node: subtree.root}
    for current in tree.descendants(node):
        parent = tree.parent(current)
        assert parent is not None
        copied = subtree.add_child(mapping[parent], tree.label(current))
        mapping[current] = copied
        condition = probtree.condition(current)
        if not condition.is_true():
            conditions[copied] = condition
    return subtree, conditions


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _answer_condition(probtree: ProbTree, match: Match) -> Condition:
    """Union of the conditions of the nodes of the answer sub-datatree.

    Built through :meth:`Condition.conjoin_all`, which flattens the whole
    bundle in one pass and skips duplicate conjuncts — answers produced by
    repeated-insert update chains carry the same inserted-root condition
    once per copy, and folding pairwise conjunction over those was
    quadratic in the chain length.
    """
    tree = probtree.tree
    return Condition.conjoin_all(
        probtree.condition(node) for node in match.answer_nodes(tree)
    )


__all__ = ["apply_update_to_probtree", "apply_updates_to_probtree"]
