"""Disjoint negation of DNF formulas — the deletion helper of Appendix A.

Deleting a node from a prob-tree replaces it by several conditional copies
whose conditions must (a) together cover exactly the worlds where the node
survives and (b) be pairwise exclusive, so that the multiset semantics never
materializes two copies at once.  Appendix A gives the construction for the
negation of a single conjunction ``a₁ ∧ … ∧ a_p``::

    ¬a₁  ∨  (a₁ ∧ ¬a₂)  ∨  …  ∨  (a₁ ∧ … ∧ a_{p−1} ∧ ¬a_p)

:func:`chain_negation` implements exactly that; :func:`disjoint_negation`
generalizes it to the negation of a whole DNF (needed when a deletion's query
has several matches targeting the same node): the negation of a disjunction
is the conjunction of the negations, and a product of pairwise-disjoint
covers is itself pairwise disjoint.  The output size is exponential in the
worst case — Theorem 3 of the paper shows this is inherent, not an artifact
of the construction.
"""

from __future__ import annotations

from typing import List

from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition


def chain_negation(condition: Condition) -> DNF:
    """Disjoint DNF equivalent to ``¬condition`` (Appendix A construction).

    The always-true condition negates to the empty (false) DNF.  Literal
    order is fixed by sorting so the construction is deterministic.
    """
    literals = sorted(condition.literals)
    disjuncts: List[Condition] = []
    prefix: List = []
    for literal in literals:
        disjuncts.append(Condition(prefix + [literal.negate()]))
        prefix.append(literal)
    return DNF(disjuncts)


def disjoint_negation(formula: DNF) -> DNF:
    """Disjoint DNF equivalent to ``¬formula``.

    ``¬(C₁ ∨ … ∨ C_m) = ¬C₁ ∧ … ∧ ¬C_m``; each ``¬Cᵢ`` is decomposed with
    :func:`chain_negation` (a disjoint cover) and the factors are multiplied
    out.  Two distinct product terms pick different pieces of at least one
    factor, and pieces of one factor are mutually exclusive, so the result is
    pairwise disjoint.  Inconsistent terms are dropped.

    The negation of the empty (false) DNF is the always-true DNF.
    """
    result = DNF.true()
    for disjunct in formula.disjuncts:
        if not disjunct.is_consistent():
            # An inconsistent disjunct contributes nothing to the disjunction,
            # hence nothing to negate.
            continue
        if disjunct.is_true():
            # Negating a disjunction containing "true" yields "false".
            return DNF.false()
        factor = chain_negation(disjunct)
        result = DNF(
            left.conjoin(right)
            for left in result.disjuncts
            for right in factor.disjuncts
            if left.conjoin(right).is_consistent()
        )
        if result.is_false():
            break
    return result


__all__ = ["chain_negation", "disjoint_negation"]
