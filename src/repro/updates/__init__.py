"""Probabilistic updates (Appendix A of the paper).

* :mod:`repro.updates.operations` — elementary insertions/deletions defined
  by a query (Definitions 14–15) and probabilistic updates with a confidence
  (the pair ``(τ, c)``);
* :mod:`repro.updates.pw_updates` — applying probabilistic updates to
  possible-world sets (Definition 16), the semantic reference;
* :mod:`repro.updates.probtree_updates` — applying them directly to
  prob-trees, the paper's algorithm (Appendix A), including the general
  multi-match deletion whose exponential behaviour Theorem 3 proves
  unavoidable;
* :mod:`repro.updates.disjoint` — the disjoint negation of a DNF used by
  deletions (the generalization of Appendix A's sequential construction).
"""

from repro.updates.operations import (
    Insertion,
    Deletion,
    UpdateOperation,
    ProbabilisticUpdate,
    apply_to_datatree,
)
from repro.updates.pw_updates import apply_update_to_pwset
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.updates.disjoint import chain_negation, disjoint_negation

__all__ = [
    "Insertion",
    "Deletion",
    "UpdateOperation",
    "ProbabilisticUpdate",
    "apply_to_datatree",
    "apply_update_to_pwset",
    "apply_update_to_probtree",
    "chain_negation",
    "disjoint_negation",
]
