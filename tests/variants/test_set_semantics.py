"""Tests for the set-semantics variant (Section 5)."""

from hypothesis import given, settings

from repro.core.semantics import possible_worlds
from repro.formulas.literals import Condition
from repro.pw.pwset import PWSet
from repro.trees.builders import tree
from repro.variants.set_semantics import (
    set_isomorphic,
    set_normalize,
    set_structurally_equivalent,
    set_structurally_equivalent_syntactic,
)
from repro.equivalence.structural import structurally_equivalent_exhaustive

from tests.conftest import small_probtrees
from tests.equivalence.test_structural import _probtree


class TestSetIsomorphism:
    def test_duplicate_siblings_collapse(self):
        assert set_isomorphic(tree("A", "B"), tree("A", "B", "B"))
        assert not set_isomorphic(tree("A", "B"), tree("A", "C"))

    def test_recursive_collapse(self):
        left = tree("A", tree("B", "C", "C"), tree("B", "C"))
        right = tree("A", tree("B", "C"))
        assert set_isomorphic(left, right)

    def test_normalization_merges_more_worlds(self):
        worlds = PWSet([(tree("A", "B"), 0.4), (tree("A", "B", "B"), 0.6)])
        assert len(worlds.normalize()) == 2
        assert len(set_normalize(worlds)) == 1


class TestSetStructuralEquivalence:
    def test_duplicate_conditioned_children_are_redundant(self):
        # Under set semantics a second copy with the same condition changes
        # nothing; under multiset semantics it does.
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree([("B", Condition.of("w1")), ("B", Condition.of("w1"))])
        assert set_structurally_equivalent(left, right)
        assert not structurally_equivalent_exhaustive(left, right)

    def test_union_of_conditions_vs_equivalent_disjunction(self):
        # B present iff w1 ∨ w2 on both sides, written differently.
        left = _probtree([("B", Condition.of("w1")), ("B", Condition.of("w2"))])
        right = _probtree(
            [
                ("B", Condition.of("w1")),
                ("B", Condition.of("not w1", "w2")),
            ]
        )
        assert set_structurally_equivalent(left, right)
        # The multiset notion distinguishes them (two copies vs one when both hold).
        assert not structurally_equivalent_exhaustive(left, right)

    def test_plain_difference_still_detected(self):
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree([("B", Condition.of("w2"))])
        assert not set_structurally_equivalent(left, right)

    def test_syntactic_procedure_is_sound(self):
        left = _probtree([("B", Condition.of("w1")), ("B", Condition.of("w2"))])
        right = _probtree(
            [("B", Condition.of("w1")), ("B", Condition.of("not w1", "w2"))]
        )
        assert set_structurally_equivalent_syntactic(left, right)
        different = _probtree([("B", Condition.of("w3"))])
        assert not set_structurally_equivalent_syntactic(left, different)

    @given(small_probtrees(max_nodes=5), small_probtrees(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_multiset_equivalence_implies_set_equivalence(self, left, right):
        if structurally_equivalent_exhaustive(left, right):
            assert set_structurally_equivalent(left, right)

    @given(small_probtrees(max_nodes=5), small_probtrees(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_syntactic_true_implies_exhaustive_true(self, left, right):
        if set_structurally_equivalent_syntactic(left, right):
            assert set_structurally_equivalent(left, right)


class TestTheorem3UnderSetSemantics:
    def test_deletion_blowup_persists(self):
        # The Theorem 3 family uses distinct private events per C child, so
        # set semantics does not rescue the deletion blow-up (the proof is
        # unchanged, as the paper notes).
        from repro.updates.probtree_updates import apply_update_to_probtree
        from repro.workloads.constructions import theorem3_deletion, theorem3_probtree

        probtree = theorem3_probtree(4)
        updated = apply_update_to_probtree(probtree, theorem3_deletion())
        assert len(list(updated.tree.nodes_with_label("B"))) == 2 ** 4
