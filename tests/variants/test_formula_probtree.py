"""Tests for the arbitrary-formula variant (Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantics import possible_worlds
from repro.queries.treepattern import TreePattern, root_has_child
from repro.trees.builders import tree
from repro.updates.operations import Deletion, Insertion, ProbabilisticUpdate
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.updates.pw_updates import apply_update_to_pwset
from repro.utils.errors import UpdateError
from repro.variants.formula_probtree import FormulaProbTree
from repro.workloads.constructions import theorem3_deletion, theorem3_probtree
from repro.workloads.random_queries import random_deletion, random_insertion

from tests.conftest import small_probtrees


class TestLifting:
    def test_from_probtree_preserves_semantics(self, figure1):
        lifted = FormulaProbTree.from_probtree(figure1)
        assert lifted.possible_worlds().isomorphic(possible_worlds(figure1, normalize=True))
        assert lifted.used_events() == {"w1", "w2"}

    def test_size_accounts_for_formulas(self, figure1):
        lifted = FormulaProbTree.from_probtree(figure1)
        assert lifted.size() >= figure1.size()


class TestQueries:
    def test_query_probabilities_match_conjunctive_model(self, figure1):
        from repro.queries.evaluation import evaluate_on_probtree

        lifted = FormulaProbTree.from_probtree(figure1)
        query = root_has_child("A", "B")
        formula_answers = lifted.evaluate(query)
        plain_answers = evaluate_on_probtree(query, figure1)
        assert len(formula_answers) == len(plain_answers) == 1
        assert formula_answers[0][1] == pytest.approx(plain_answers[0].probability)

    def test_boolean_probability(self, figure1):
        lifted = FormulaProbTree.from_probtree(figure1)
        pattern = TreePattern("A")
        pattern.add_child(pattern.root, "*")
        assert lifted.boolean_probability(pattern) == pytest.approx(0.94)


class TestUpdates:
    def test_insertion_consistency(self, figure1):
        lifted = FormulaProbTree.from_probtree(figure1)
        update = ProbabilisticUpdate(
            Insertion(root_has_child("A", "C"), 1, tree("E")), confidence=0.5
        )
        updated = lifted.apply_update(update)
        reference = apply_update_to_pwset(
            possible_worlds(figure1), update, normalize=True
        )
        assert updated.possible_worlds().isomorphic(reference)

    def test_deletion_consistency(self, figure1):
        lifted = FormulaProbTree.from_probtree(figure1)
        update = ProbabilisticUpdate(
            Deletion(root_has_child("A", "B"), 1), confidence=0.5
        )
        updated = lifted.apply_update(update)
        reference = apply_update_to_pwset(
            possible_worlds(figure1), update, normalize=True
        )
        assert updated.possible_worlds().isomorphic(reference)

    def test_deletion_does_not_duplicate_nodes(self):
        # The whole point of the variant: Theorem 3's blow-up disappears.
        probtree = theorem3_probtree(5)
        lifted = FormulaProbTree.from_probtree(probtree)
        updated = lifted.apply_update(theorem3_deletion())
        assert updated.tree.node_count() == probtree.tree.node_count()
        # Meanwhile the conjunctive model explodes.
        exploded = apply_update_to_probtree(probtree, theorem3_deletion())
        assert exploded.tree.node_count() > updated.tree.node_count()

    def test_root_deletion_rejected(self, figure1):
        lifted = FormulaProbTree.from_probtree(figure1)
        update = ProbabilisticUpdate(Deletion(TreePattern("A"), 0), 1.0)
        with pytest.raises(UpdateError):
            lifted.apply_update(update)

    @given(small_probtrees(max_nodes=5), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_updates_agree_with_pw_semantics(self, probtree, seed):
        lifted = FormulaProbTree.from_probtree(probtree)
        if probtree.tree.node_count() > 1 and seed % 2:
            update = random_deletion(probtree.tree, seed=seed)
        else:
            update = random_insertion(probtree.tree, seed=seed, subtree_size=2)
        updated = lifted.apply_update(update)
        reference = apply_update_to_pwset(
            possible_worlds(probtree), update, normalize=True
        )
        assert updated.possible_worlds().isomorphic(reference)
