"""Tests for the paper's concrete constructions."""

import pytest

from repro.core.semantics import possible_worlds
from repro.trees.builders import tree
from repro.workloads.constructions import (
    figure1_probtree,
    theorem3_deletion,
    theorem3_probtree,
    wide_independent_probtree,
)


class TestFigure1:
    def test_structure(self):
        probtree = figure1_probtree()
        assert probtree.tree.node_count() == 4
        assert probtree.distribution.as_dict() == {"w1": 0.8, "w2": 0.7}

    def test_semantics_is_figure2(self):
        worlds = possible_worlds(figure1_probtree(), normalize=True)
        assert worlds.probability_of(tree("A", "B")) == pytest.approx(0.24)
        assert worlds.probability_of(tree("A", tree("C", "D"))) == pytest.approx(0.70)
        assert worlds.probability_of(tree("A")) == pytest.approx(0.06)


class TestTheorem3:
    def test_size_matches_paper(self):
        for n in (1, 3, 6):
            probtree = theorem3_probtree(n)
            assert probtree.tree.node_count() == n + 2
            assert len(probtree.events()) == 2 * n
            # each event appears exactly once
            assert probtree.literal_count() == 2 * n

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            theorem3_probtree(0)

    def test_deletion_is_d0(self):
        from repro.updates.operations import apply_to_datatree

        d0 = theorem3_deletion().operation
        assert apply_to_datatree(d0, tree("A", "B", "C")).node_count() == 2
        assert apply_to_datatree(d0, tree("A", "B")).node_count() == 2


class TestWideIndependent:
    def test_all_worlds_distinct(self):
        probtree = wide_independent_probtree(5)
        worlds = possible_worlds(probtree, normalize=True)
        assert len(worlds) == 2 ** 5

    def test_identical_labels_collapse_worlds(self):
        probtree = wide_independent_probtree(5, distinct_labels=False)
        worlds = possible_worlds(probtree, normalize=True)
        # Only the number of present children matters now.
        assert len(worlds) == 6

    def test_zero_children(self):
        probtree = wide_independent_probtree(0)
        assert probtree.tree.node_count() == 1
