"""Tests for the random tree / prob-tree / query / update generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.isomorphism import isomorphic
from repro.workloads.random_probtrees import random_condition, random_probtree
from repro.workloads.random_queries import (
    random_deletion,
    random_insertion,
    random_matching_pattern,
    random_update,
)
from repro.workloads.random_trees import (
    chain_datatree,
    random_datatree,
    star_datatree,
)


class TestRandomDataTrees:
    def test_node_count_respected(self):
        for count in (1, 5, 30):
            assert random_datatree(count, seed=1).node_count() == count

    def test_deterministic_given_seed(self):
        left = random_datatree(20, seed=42)
        right = random_datatree(20, seed=42)
        assert isomorphic(left, right)

    def test_different_seeds_generally_differ(self):
        left = random_datatree(20, seed=1)
        right = random_datatree(20, seed=2)
        assert not isomorphic(left, right)

    def test_root_label_and_alphabet(self):
        document = random_datatree(10, labels=("X", "Y"), seed=0, root_label="R")
        assert document.root_label == "R"
        labels = {document.label(n) for n in document.nodes()} - {"R"}
        assert labels <= {"X", "Y"}

    def test_max_children_constraint(self):
        document = random_datatree(40, seed=3, max_children=2)
        assert all(len(document.children(n)) <= 2 for n in document.nodes())

    def test_max_depth_constraint(self):
        document = random_datatree(40, seed=3, max_depth=3)
        assert document.height() <= 3

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            random_datatree(0)

    def test_chain_and_star_helpers(self):
        chain = chain_datatree(["A", "B", "C"])
        assert chain.height() == 2
        star = star_datatree("A", "B", 5)
        assert len(star.children(star.root)) == 5


class TestRandomProbTrees:
    def test_shape_and_events(self):
        probtree = random_probtree(node_count=20, event_count=5, seed=7)
        assert probtree.tree.node_count() == 20
        assert len(probtree.events()) == 5
        assert probtree.used_events() <= probtree.events()

    def test_deterministic_given_seed(self):
        left = random_probtree(10, 3, seed=11)
        right = random_probtree(10, 3, seed=11)
        assert left.size() == right.size()
        assert left.distribution == right.distribution

    def test_condition_probability_zero_gives_certain_tree(self):
        probtree = random_probtree(10, 3, seed=5, condition_probability=0.0)
        assert probtree.literal_count() == 0

    def test_no_events_means_no_conditions(self):
        probtree = random_probtree(10, 0, seed=5)
        assert probtree.literal_count() == 0

    def test_random_condition_bounds(self):
        condition = random_condition(["a", "b", "c"], seed=1, max_literals=2)
        assert 1 <= len(condition) <= 2
        assert random_condition([], seed=1).is_true()


class TestRandomQueriesAndUpdates:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_patterns_always_match_their_source_tree(self, seed):
        document = random_datatree(8, seed=seed)
        pattern, focus = random_matching_pattern(document, seed=seed)
        matches = pattern.matches(document)
        assert matches
        assert any(focus in match.as_dict() for match in matches)

    def test_random_insertion_applies(self):
        document = random_datatree(8, seed=3)
        update = random_insertion(document, seed=3)
        assert 0.0 < update.confidence <= 1.0
        assert update.operation.query.selects(document)

    def test_random_deletion_never_targets_root(self):
        document = random_datatree(8, seed=9)
        update = random_deletion(document, seed=9)
        targets = {
            match.target(update.operation.at)
            for match in update.operation.query.matches(document)
        }
        assert document.root not in targets

    def test_random_update_mix(self):
        document = random_datatree(8, seed=1)
        kinds = set()
        for seed in range(12):
            update = random_update(document, seed=seed)
            kinds.add(type(update.operation).__name__)
        assert kinds == {"Insertion", "Deletion"}
