"""Tests for the hidden-web extraction scenario generator."""

from repro.updates.operations import Deletion, Insertion
from repro.workloads.scenarios import HiddenWebScenario


class TestScenarioGeneration:
    def test_initial_document_shape(self):
        scenario = HiddenWebScenario(source_count=4, event_count=10, seed=1)
        document = scenario.initial_document()
        assert document.root_label == "warehouse"
        assert len(document.children(document.root)) == 4

    def test_event_stream_is_deterministic(self):
        first = HiddenWebScenario(seed=5).events()
        second = HiddenWebScenario(seed=5).events()
        assert [e.description for e in first] == [e.description for e in second]

    def test_event_stream_length_and_kinds(self):
        scenario = HiddenWebScenario(event_count=30, deletion_ratio=0.3, seed=2)
        events = scenario.events()
        assert len(events) == 30
        kinds = {type(event.update.operation) for event in events}
        assert Insertion in kinds
        assert Deletion in kinds

    def test_zero_deletion_ratio_gives_only_insertions(self):
        scenario = HiddenWebScenario(event_count=15, deletion_ratio=0.0, seed=3)
        assert all(
            isinstance(event.update.operation, Insertion) for event in scenario.events()
        )

    def test_confidences_are_valid(self):
        for event in HiddenWebScenario(event_count=25, seed=7).events():
            assert 0.0 < event.update.confidence <= 1.0

    def test_queries_target_the_warehouse(self):
        scenario = HiddenWebScenario(seed=0)
        queries = scenario.queries()
        assert len(queries) >= 4
        document = scenario.initial_document()
        for _description, query in queries:
            # Queries are well-formed (they may or may not match the empty
            # warehouse, but they must evaluate without error).
            query.matches(document)


class TestScenarioReplay:
    def test_replay_on_warehouse_engine(self):
        from repro.core.engine import ProbXMLWarehouse

        scenario = HiddenWebScenario(source_count=2, event_count=6, seed=11)
        warehouse = ProbXMLWarehouse(scenario.initial_document())
        for event in scenario.events():
            warehouse.apply(event.update)
        assert warehouse.event_count() > 0
        assert warehouse.document.node_count() > scenario.initial_document().node_count()
        for _description, query in scenario.queries():
            for answer in warehouse.query(query):
                assert 0.0 < answer.probability <= 1.0 + 1e-9
