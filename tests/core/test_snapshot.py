"""Snapshot pinning: copy-on-write, retention, retirement, context/warehouse wiring."""

from __future__ import annotations

import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import ProbXMLWarehouse
from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.core.snapshot import SNAPSHOT_RETENTION, pin
from repro.formulas.literals import Condition
from repro.trees.datatree import DataTree
from repro.utils.errors import ProbXMLError, SnapshotRetiredError


def _probtree() -> ProbTree:
    tree = DataTree("A")
    child = tree.add_child(tree.root, "B")
    probtree = ProbTree(tree, ProbabilityDistribution({"w1": 0.5}), {})
    probtree.set_condition(child, Condition.of("w1"))
    return probtree


# ---------------------------------------------------------------------------
# Pinning and copy-on-write
# ---------------------------------------------------------------------------


class TestPinning:
    def test_snapshot_reads_live_object_while_unchanged(self):
        probtree = _probtree()
        snap = probtree.snapshot()
        assert snap.probtree is probtree
        assert snap.is_current()
        snap.release()

    def test_in_place_mutation_preserves_pinned_view(self):
        probtree = _probtree()
        child = next(iter(probtree.tree.children(probtree.tree.root)))
        snap = probtree.snapshot()
        probtree.tree.set_label(child, "Z")
        # Live tree moved on; the snapshot still shows the pinned version.
        assert probtree.tree.label(child) == "Z"
        assert snap.probtree is not probtree
        assert snap.tree.label(child) == "B"
        assert not snap.is_current()
        snap.release()

    def test_all_pins_at_one_stamp_share_one_frozen_copy(self):
        probtree = _probtree()
        first = probtree.snapshot()
        second = probtree.snapshot()
        probtree.tree.add_child(probtree.tree.root, "C")
        assert first.probtree is second.probtree
        first.release()
        second.release()

    def test_condition_mutation_also_triggers_preserve(self):
        probtree = _probtree()
        child = next(iter(probtree.tree.children(probtree.tree.root)))
        snap = probtree.snapshot()
        probtree.set_condition(child, Condition.negative("w1"))
        assert snap.probtree.condition(child) == Condition.of("w1")
        snap.release()

    def test_release_detaches_pinset_from_both_objects(self):
        probtree = _probtree()
        snap = probtree.snapshot()
        assert probtree._snapshot_pins is not None
        assert probtree.tree._snapshot_pins is probtree._snapshot_pins
        snap.release()
        assert probtree._snapshot_pins is None
        assert probtree.tree._snapshot_pins is None

    def test_context_manager_releases(self):
        probtree = _probtree()
        with probtree.snapshot() as snap:
            assert snap.active
        assert snap.released
        with pytest.raises(SnapshotRetiredError):
            snap.probtree


# ---------------------------------------------------------------------------
# Retention and retirement
# ---------------------------------------------------------------------------


class TestRetention:
    def test_released_snapshot_refuses_access(self):
        probtree = _probtree()
        snap = probtree.snapshot()
        snap.release()
        with pytest.raises(SnapshotRetiredError):
            snap.probtree
        with pytest.raises(SnapshotRetiredError):
            snap.tree

    def test_per_probtree_retention_retires_oldest(self):
        probtree = _probtree()
        handles = [probtree.snapshot() for _ in range(SNAPSHOT_RETENTION + 2)]
        retired = [handle for handle in handles if handle.retired]
        assert len(retired) == 2
        assert retired == handles[:2]
        with pytest.raises(SnapshotRetiredError):
            retired[0].probtree
        for handle in handles:
            handle.release()

    def test_retirement_counts_in_stats(self):
        context = ExecutionContext(snapshot_retention=2)
        probtree = _probtree()
        handles = [context.read_snapshot(probtree) for _ in range(5)]
        assert context.stats.snapshots_pinned == 5
        assert context.stats.snapshots_retired == 3
        assert [handle.retired for handle in handles] == [True, True, True, False, False]
        for handle in handles:
            handle.release()

    def test_session_retention_spans_version_chain(self):
        # Pipeline updates produce new objects per version; the session bound
        # must cover pins across *different* prob-trees.
        context = ExecutionContext(snapshot_retention=2)
        chain = [_probtree() for _ in range(4)]
        handles = [context.read_snapshot(probtree) for probtree in chain]
        assert sum(handle.retired for handle in handles) == 2
        assert handles[-1].active and handles[-2].active
        for handle in handles:
            handle.release()

    def test_released_handles_free_retention_budget(self):
        context = ExecutionContext(snapshot_retention=2)
        probtree = _probtree()
        for _ in range(6):
            context.read_snapshot(probtree).release()
        handle = context.read_snapshot(probtree)
        assert handle.active
        assert context.stats.snapshots_retired == 0
        handle.release()

    def test_retention_must_be_positive(self):
        with pytest.raises((ProbXMLError, ValueError)):
            ExecutionContext(snapshot_retention=0)


# ---------------------------------------------------------------------------
# Interaction with the update pipeline and the warehouse
# ---------------------------------------------------------------------------


class TestWarehouseSnapshots:
    def test_pinned_snapshot_survives_warehouse_updates(self):
        warehouse = ProbXMLWarehouse("catalog")
        snap = warehouse.read_snapshot()
        from repro.trees.builders import tree

        warehouse.insert("/catalog", tree("movie"), confidence=0.5)
        # The update replaced the document object; the pin holds the old one.
        assert sum(1 for _ in snap.tree.nodes()) == 1
        assert sum(1 for _ in warehouse.get().tree.nodes()) == 2
        snap.release()

    def test_isolation_mode_validation(self):
        with pytest.raises(ProbXMLError):
            ProbXMLWarehouse("catalog", isolation="serializable")
        assert ProbXMLWarehouse("catalog").isolation == "snapshot"
        assert ProbXMLWarehouse("catalog", isolation="lock").isolation == "lock"

    def test_queries_unchanged_across_isolation_modes(self):
        from repro.trees.builders import tree

        for isolation in ("snapshot", "lock"):
            warehouse = ProbXMLWarehouse("catalog", isolation=isolation)
            warehouse.insert("/catalog", tree("movie", tree("title")), confidence=0.8)
            answers = warehouse.query("/catalog/movie/title")
            assert len(answers) == 1
            assert answers[0].probability == pytest.approx(0.8)
            assert warehouse.probability("/catalog/movie") == pytest.approx(0.8)

    def test_low_level_pin_without_retention(self):
        probtree = _probtree()
        handles = [pin(probtree) for _ in range(SNAPSHOT_RETENTION + 5)]
        assert all(handle.active for handle in handles)
        for handle in handles:
            handle.release()
