"""Tests for the ProbXMLWarehouse facade."""

import pytest

from repro.core.engine import ProbXMLWarehouse
from repro.dtd.dtd import DTD, ChildConstraint
from repro.queries.treepattern import TreePattern
from repro.trees.builders import tree
from repro.trees.isomorphism import isomorphic


@pytest.fixture
def catalog():
    warehouse = ProbXMLWarehouse("catalog")
    warehouse.insert("/catalog", tree("movie", tree("title", "Solaris")), confidence=0.8)
    warehouse.insert("/catalog", tree("movie", tree("title", "Stalker")), confidence=0.6)
    return warehouse


class TestConstruction:
    def test_from_label(self):
        warehouse = ProbXMLWarehouse("root")
        assert warehouse.document.root_label == "root"
        assert warehouse.event_count() == 0

    def test_from_datatree_and_probtree(self, figure1):
        assert ProbXMLWarehouse(figure1.tree.copy()).size() == 4
        assert ProbXMLWarehouse(figure1).event_count() == 2


class TestQueries:
    def test_path_query_returns_probabilistic_answers(self, catalog):
        answers = catalog.query("/catalog/movie/title")
        assert len(answers) == 2
        assert {round(a.probability, 2) for a in answers} == {0.8, 0.6}

    def test_pattern_query(self, catalog):
        pattern = TreePattern("catalog")
        pattern.add_child(pattern.root, "movie")
        assert len(catalog.query(pattern)) == 2

    def test_probability_of_boolean_query(self, catalog):
        # P(at least one movie) = 1 - 0.2*0.4
        assert catalog.probability("/catalog/movie") == pytest.approx(1 - 0.2 * 0.4)

    def test_matcher_modes_agree(self, catalog):
        from repro.utils.errors import QueryError

        assert catalog.matcher == "indexed"
        indexed = catalog.query("/catalog/movie/title")
        catalog.matcher = "naive"
        naive = catalog.query("/catalog/movie/title")
        assert {round(a.probability, 2) for a in indexed} == {
            round(a.probability, 2) for a in naive
        }
        assert catalog.probability("/catalog/movie") == pytest.approx(1 - 0.2 * 0.4)
        with pytest.raises(QueryError):
            catalog.matcher = "bogus"

    def test_query_many_shares_index(self, catalog):
        batched = catalog.query_many(["/catalog/movie", "/catalog/movie/title"])
        assert [len(answers) for answers in batched] == [2, 2]

    def test_top_answers_ranked(self, catalog):
        # Include the title text leaf so the two answers are distinguishable.
        top = catalog.top_answers("/catalog/movie/title/*", count=1)
        assert len(top) == 1
        assert top[0].probability == pytest.approx(0.8)
        labels = {top[0].tree.label(node) for node in top[0].tree.nodes()}
        assert "Solaris" in labels

    def test_isomorphic_answers_aggregate(self, catalog):
        # Without the text leaf both answers are isomorphic sub-datatrees, so
        # ranking aggregates their weights (Definition 7 answers are a
        # multiset, not a distribution).
        top = catalog.top_answers("/catalog/movie/title", count=1)
        assert top[0].probability == pytest.approx(0.8 + 0.6)


class TestUpdates:
    def test_insert_with_certainty_adds_plain_nodes(self):
        warehouse = ProbXMLWarehouse("catalog")
        warehouse.insert("/catalog", tree("movie"), confidence=1.0)
        assert warehouse.event_count() == 0
        assert warehouse.document.node_count() == 2

    def test_uncertain_insert_registers_event(self, catalog):
        assert catalog.event_count() == 2

    def test_delete_reduces_probability(self, catalog):
        catalog.delete("/catalog/movie", confidence=0.5)
        # every movie now also depends on the deletion not firing
        probability = catalog.probability("/catalog/movie")
        assert probability < 1 - 0.2 * 0.4

    def test_apply_prebuilt_update(self, catalog):
        from repro.updates.operations import Insertion, ProbabilisticUpdate

        pattern = TreePattern("catalog")
        update = ProbabilisticUpdate(
            Insertion(pattern, pattern.root, tree("source")), confidence=0.9
        )
        catalog.apply(update)
        assert catalog.probability("/catalog/source") == pytest.approx(0.9)


class TestMaintenance:
    def test_possible_worlds_and_most_probable(self, catalog):
        worlds = catalog.possible_worlds()
        assert worlds.total_probability() == pytest.approx(1.0)
        best, probability = catalog.most_probable_worlds(1)[0]
        assert probability == pytest.approx(0.8 * 0.6)
        assert isomorphic(
            best,
            tree(
                "catalog",
                tree("movie", tree("title", "Solaris")),
                tree("movie", tree("title", "Stalker")),
            ),
        )

    def test_prune_below_keeps_mass_at_one(self, catalog):
        catalog.prune_below(0.3)
        worlds = catalog.possible_worlds()
        assert worlds.total_probability() == pytest.approx(1.0)
        assert all(p >= 0.3 or w.node_count() == 1 for w, p in worlds)

    def test_clean_is_a_noop_on_clean_trees(self, catalog):
        before = catalog.size()
        catalog.clean()
        assert catalog.size() <= before

    def test_dtd_checks(self, catalog):
        movies_only = DTD(
            {
                "catalog": [ChildConstraint.any_number("movie")],
                "movie": [ChildConstraint.optional("title")],
                "title": [ChildConstraint.any_number("Solaris"), ChildConstraint.any_number("Stalker")],
            }
        )
        assert catalog.dtd_satisfiable(movies_only)
        assert catalog.dtd_valid(movies_only)
        at_least_one = DTD({"catalog": [ChildConstraint.at_least_one("movie")]})
        # the catalog root also has no other children allowed -> still fine,
        # but the empty world (both inserts failed) violates it.
        assert catalog.dtd_satisfiable(at_least_one)
        assert not catalog.dtd_valid(at_least_one)
        assert 0.0 < catalog.dtd_probability(at_least_one) < 1.0


class TestEngineSelection:
    def test_default_engine_is_formula(self, catalog):
        assert catalog.engine == "formula"
        assert "formula" in repr(catalog)

    def test_invalid_engine_rejected(self):
        from repro.utils.errors import QueryError

        with pytest.raises(QueryError):
            ProbXMLWarehouse("catalog", engine="guess")
        warehouse = ProbXMLWarehouse("catalog")
        with pytest.raises(QueryError):
            warehouse.engine = "guess"

    def test_engines_agree_on_facade_operations(self, catalog):
        enumerating = ProbXMLWarehouse(catalog.probtree.copy(), engine="enumerate")
        assert catalog.probability("/catalog/movie") == pytest.approx(
            enumerating.probability("/catalog/movie"), abs=1e-12
        )
        dtd = DTD({"catalog": [ChildConstraint.at_least_one("movie")]})
        assert catalog.dtd_probability(dtd) == pytest.approx(
            enumerating.dtd_probability(dtd), abs=1e-12
        )
        for (_, p_formula), (_, p_enumerate) in zip(
            catalog.most_probable_worlds(3), enumerating.most_probable_worlds(3)
        ):
            assert p_formula == pytest.approx(p_enumerate, abs=1e-12)

    def test_query_many_shares_one_cache(self, catalog):
        batched = catalog.query_many(["/catalog/movie", "/catalog/movie/title"])
        assert [len(answers) for answers in batched] == [2, 2]
        singles = [catalog.query("/catalog/movie"), catalog.query("/catalog/movie/title")]
        for batch, single in zip(batched, singles):
            assert [a.probability for a in batch] == pytest.approx(
                [a.probability for a in single]
            )


class TestDefaultFocus:
    def test_query_without_node_count_raises(self, catalog):
        from repro.queries.base import Match, Query
        from repro.utils.errors import QueryError

        class OpaqueQuery(Query):
            """A query exposing matches but no node_count()."""

            def matches(self, tree):
                return [Match.from_dict({0: tree.root})]

        with pytest.raises(QueryError, match="node_count"):
            catalog.insert(OpaqueQuery(), tree("extra"), confidence=0.5)
        with pytest.raises(QueryError, match="at="):
            catalog.delete(OpaqueQuery(), confidence=0.5)

    def test_explicit_at_still_works_without_node_count(self, catalog):
        from repro.queries.base import Match, Query

        class OpaqueQuery(Query):
            def matches(self, tree):
                return [Match.from_dict({0: tree.root})]

        before = catalog.document.node_count()
        catalog.insert(OpaqueQuery(), tree("extra"), at=0, confidence=0.5)
        assert catalog.document.node_count() == before + 1
