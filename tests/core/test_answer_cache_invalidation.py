"""Property tests: label-targeted answer-cache invalidation is never stale.

The context answer cache no longer drops everything on mutation — it keeps
the entries whose label fingerprints the mutation batch cannot have touched
(and, for updates/cleaning, migrates them across the prob-tree replacement).
The soundness property these tests pin down: **a warm caching context must
answer every query exactly like a context that never caches**, across
arbitrary interleavings of queries and mutations — direct tree mutations,
probabilistic updates, cleaning.  Plus the LRU layer: deterministic
eviction order and :attr:`ContextStats.evictions` accounting.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cleaning import clean
from repro.core.context import ExecutionContext
from repro.queries.evaluation import boolean_probability, evaluate_on_probtree
from repro.queries.treepattern import TreePattern, child_chain
from repro.trees.builders import tree
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.workloads.random_probtrees import random_probtree
from repro.workloads.random_queries import (
    random_deletion,
    random_insertion,
    random_matching_pattern,
)
from repro.workloads.random_trees import random_datatree

LABELS = ("A", "B", "C", "D")


def _snapshot(answers):
    """Order/identity-free view of an answer list (node ids + probability)."""
    return sorted(
        (tuple(sorted(answer.tree.nodes())), round(answer.probability, 9))
        for answer in answers
    )


def _draw_patterns(rng, data_tree, count=4):
    patterns = []
    for _ in range(count):
        pattern, _focus = random_matching_pattern(
            data_tree,
            seed=rng,
            wildcard_probability=0.25,
            descendant_probability=0.3,
        )
        patterns.append(pattern)
    # Always include a fixed-label chain and a cross-label probe so both
    # "touched" and "untouched" entries exist in most runs.
    patterns.append(child_chain([data_tree.root_label]))
    return patterns


def _mutate(probtree, rng):
    """One random in-place mutation (structure, label or condition)."""
    data_tree = probtree.tree
    nodes = list(data_tree.nodes())
    op = rng.randrange(4)
    if op == 0:
        probtree.add_child(rng.choice(nodes), rng.choice(LABELS))
    elif op == 1:
        data_tree.set_label(rng.choice(nodes), rng.choice(LABELS))
    elif op == 2 and len(nodes) > 1:
        probtree.remove_subtree(rng.choice([n for n in nodes if n != data_tree.root]))
    else:
        # Condition churn: bumps state_version -> wholesale invalidation.
        target = rng.choice([n for n in nodes if n != data_tree.root] or nodes)
        if target != data_tree.root:
            from repro.formulas.literals import Condition

            events = sorted(probtree.distribution.events())
            probtree.set_condition(target, Condition.positive(rng.choice(events)))


@pytest.mark.parametrize("seed", range(60))
def test_warm_context_never_serves_stale_answers(seed):
    """query → mutate → query: warm answers must equal uncached answers."""
    rng = random.Random(seed)
    probtree = random_probtree(
        node_count=rng.randint(5, 40), event_count=4, seed=rng, labels=LABELS
    )
    warm = ExecutionContext()  # caches full answers by default
    cold = ExecutionContext(cache_answers=False)
    patterns = _draw_patterns(rng, probtree.tree)
    for _round in range(6):
        for pattern in patterns:
            hot = evaluate_on_probtree(pattern, probtree, context=warm)
            fresh = evaluate_on_probtree(pattern, probtree, context=cold)
            assert _snapshot(hot) == _snapshot(fresh)
            assert boolean_probability(pattern, probtree, context=warm) == (
                pytest.approx(boolean_probability(pattern, probtree, context=cold))
            )
        _mutate(probtree, rng)
    assert warm.stats.answer_cache_hits + warm.stats.nodeset_cache_hits > 0


@pytest.mark.parametrize("seed", range(30))
def test_updates_migrate_only_sound_entries(seed):
    """Across apply_update_to_probtree, warm answers equal cold answers."""
    rng = random.Random(500 + seed)
    probtree = random_probtree(
        node_count=rng.randint(6, 30), event_count=4, seed=rng, labels=LABELS
    )
    warm = ExecutionContext()
    cold = ExecutionContext(cache_answers=False)
    patterns = _draw_patterns(rng, probtree.tree)
    for _round in range(3):
        for pattern in patterns:
            assert _snapshot(
                evaluate_on_probtree(pattern, probtree, context=warm)
            ) == _snapshot(evaluate_on_probtree(pattern, probtree, context=cold))
        if rng.random() < 0.5:
            update = random_insertion(probtree.tree, seed=rng, subtree_size=2)
        else:
            update = random_deletion(probtree.tree, seed=rng)
        probtree = apply_update_to_probtree(probtree, update, context=warm)
    # One more sweep after the last update so migrated entries get exercised
    # (whether they hit depends on which labels the updates touched — the
    # deterministic migration tests below pin the hit behaviour down).
    for pattern in patterns:
        assert _snapshot(
            evaluate_on_probtree(pattern, probtree, context=warm)
        ) == _snapshot(evaluate_on_probtree(pattern, probtree, context=cold))


def test_migration_serves_unaffected_queries_warm():
    """A disjoint-label update must not cost the unaffected query a miss."""
    from repro.core.probtree import ProbTree

    doc = tree("catalog", tree("movie", "title"), tree("book", "isbn"))
    probtree = ProbTree.certain(doc)
    context = ExecutionContext()
    movies = child_chain(["catalog", "movie"])
    books = child_chain(["catalog", "book"])
    evaluate_on_probtree(movies, probtree, context=context)
    evaluate_on_probtree(books, probtree, context=context)
    misses_before = context.stats.answer_cache_misses

    from repro.updates.operations import Insertion, ProbabilisticUpdate

    update = ProbabilisticUpdate(
        Insertion(child_chain(["catalog"]), 0, tree("book", "isbn")), confidence=0.7
    )
    updated = apply_update_to_probtree(probtree, update, context=context)
    assert context.stats.answers_migrated >= 1

    evaluate_on_probtree(movies, updated, context=context)  # migrated: hit
    assert context.stats.answer_cache_misses == misses_before
    assert context.stats.answer_cache_hits >= 1
    answers = evaluate_on_probtree(books, updated, context=context)  # touched: miss
    assert context.stats.answer_cache_misses == misses_before + 1
    assert len(answers) == 2


def test_clean_migrates_unaffected_entries():
    from repro.core.probtree import ProbTree
    from repro.formulas.literals import Condition, Literal

    doc = tree("catalog", tree("movie", "title"), "junk")
    probtree = ProbTree.certain(doc)
    probtree.add_event("w", 0.5)
    junk = next(iter(doc.nodes_with_label("junk")))
    # Intrinsically inconsistent: cleaning prunes the junk node.
    probtree.set_condition(junk, Condition([Literal("w", True), Literal("w", False)]))
    context = ExecutionContext()
    movies = child_chain(["catalog", "movie"])
    evaluate_on_probtree(movies, probtree, context=context)
    cleaned = clean(probtree, context=context)
    assert context.stats.answers_migrated >= 1
    misses = context.stats.answer_cache_misses
    warm = evaluate_on_probtree(movies, cleaned, context=context)
    assert context.stats.answer_cache_misses == misses  # served by migration
    cold = evaluate_on_probtree(movies, cleaned, context=ExecutionContext(cache_answers=False))
    assert _snapshot(warm) == _snapshot(cold)


def test_relabeled_unmatched_ancestors_invalidate_full_answers():
    """Answers embed unmatched ancestors: relabeling one must retire them."""
    from repro.core.probtree import ProbTree
    from repro.queries.treepattern import EDGE_DESCENDANT

    doc = tree("A", tree("X", "C"))
    probtree = ProbTree.certain(doc)
    pattern = TreePattern("A")
    pattern.add_child(pattern.root, "C", edge=EDGE_DESCENDANT)
    context = ExecutionContext()
    first = evaluate_on_probtree(pattern, probtree, context=context)
    assert len(first) == 1
    x_node = next(iter(doc.nodes_with_label("X")))
    doc.set_label(x_node, "Y")  # neither A nor C is touched
    second = evaluate_on_probtree(pattern, probtree, context=context)
    labels = {second[0].tree.label(node) for node in second[0].tree.nodes()}
    assert "Y" in labels and "X" not in labels
    assert context.stats.answer_cache_misses == 2  # no stale hit


def test_wildcard_patterns_invalidate_on_any_mutation():
    from repro.core.probtree import ProbTree
    from repro.queries.treepattern import descendant_anywhere

    doc = tree("A", "B")
    probtree = ProbTree.certain(doc)
    context = ExecutionContext()
    anywhere = descendant_anywhere("B")  # wildcard root -> label_set() is None
    assert len(evaluate_on_probtree(anywhere, probtree, context=context)) == 1
    probtree.add_child(doc.root, "B")
    assert len(evaluate_on_probtree(anywhere, probtree, context=context)) == 2
    assert context.stats.answer_cache_misses == 2


class TestAnswerCacheLRU:
    def _probe(self, label):
        return child_chain(["R", label])

    def _doc(self):
        return tree("R", "a", "b", "c", "d")

    def test_nodeset_eviction_counts_and_bound(self):
        """Exact single-layer accounting through result_node_sets."""
        doc = self._doc()
        context = ExecutionContext(max_cached_answers=2)
        for label in ("a", "b", "c", "d"):
            context.result_node_sets(self._probe(label), doc)
        assert context.stats.evictions == 2
        assert context.stats.nodeset_cache_misses == 4

    def test_lru_order_is_recency_not_insertion(self):
        doc = self._doc()
        context = ExecutionContext(max_cached_answers=2)
        a, b, c = self._probe("a"), self._probe("b"), self._probe("c")
        context.result_node_sets(a, doc)  # [a]
        context.result_node_sets(b, doc)  # [a, b]
        context.result_node_sets(a, doc)  # hit: [b, a]
        assert context.stats.nodeset_cache_hits == 1
        context.result_node_sets(c, doc)  # evicts b (LRU), not a: [a, c]
        assert context.stats.evictions == 1
        context.result_node_sets(a, doc)  # still warm
        assert context.stats.nodeset_cache_hits == 2
        context.result_node_sets(b, doc)  # b was the victim
        assert context.stats.nodeset_cache_misses == 4

    def test_full_answer_layer_is_bounded_too(self):
        from repro.core.probtree import ProbTree

        probtree = ProbTree.certain(self._doc())
        context = ExecutionContext(max_cached_answers=2)
        for label in ("a", "b", "c", "d"):
            evaluate_on_probtree(self._probe(label), probtree, context=context)
        # Both layers (full answers + raw node sets) enforce the bound.
        assert context.stats.evictions == 4
        assert context.stats.answer_cache_misses == 4
        misses = context.stats.answer_cache_misses
        evaluate_on_probtree(self._probe("d"), probtree, context=context)
        assert context.stats.answer_cache_hits == 1  # most recent stays warm
        evaluate_on_probtree(self._probe("a"), probtree, context=context)
        assert context.stats.answer_cache_misses == misses + 1  # evicted

    def test_warehouse_rejects_bound_with_foreign_context(self):
        """The bound lives in shared cache state: no silent resize of context=."""
        from repro.core.engine import ProbXMLWarehouse
        from repro.utils.errors import ProbXMLError

        with pytest.raises(ProbXMLError):
            ProbXMLWarehouse(
                "catalog", context=ExecutionContext(), max_cached_answers=7
            )
        warehouse = ProbXMLWarehouse("catalog", max_cached_answers=7)
        assert warehouse.context._state.max_cached_answers == 7

    def test_non_positive_bounds_are_rejected(self):
        with pytest.raises(ValueError):
            ExecutionContext(max_cached_answers=0)
        with pytest.raises(ValueError):
            ExecutionContext(max_cached_answers=-3)

    def test_default_bound_is_generous(self):
        from repro.core.context import MAX_CACHED_ANSWERS

        assert MAX_CACHED_ANSWERS >= 1024
        context = ExecutionContext()
        doc = self._doc()
        for label in ("a", "b", "c", "d"):
            context.result_node_sets(self._probe(label), doc)
        assert context.stats.evictions == 0
