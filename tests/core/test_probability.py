"""Edge cases of the exact event-formula probability engine."""

import math

import pytest

from repro.core.events import ProbabilityDistribution
from repro.core.probability import (
    ENGINE_MODES,
    ProbabilityEngine,
    engine_for,
    formula_pwset,
    node_presence_probability,
    presence_expr,
    require_engine_mode,
)
from repro.core.probtree import ProbTree
from repro.core.semantics import normalized_worlds
from repro.dtd.dtd import DTD, ChildConstraint
from repro.dtd.probtree_dtd import dtd_satisfaction_probability
from repro.formulas.boolean import (
    FalseExpr,
    Not,
    Or,
    TrueExpr,
    Var,
    conjunction,
    disjunction,
)
from repro.formulas.compute import (
    cofactor,
    independent_components,
    negation,
    shannon_probability,
    simplify,
)
from repro.formulas.dnf import DNF
from repro.formulas.literals import Condition
from repro.queries.evaluation import boolean_probability, evaluate_on_probtree
from repro.queries.path import parse_path
from repro.trees.datatree import DataTree
from repro.utils.errors import QueryError


@pytest.fixture
def shared_event_probtree():
    """Root with two *distant* subtrees both conditioned on the same event."""
    tree = DataTree("R")
    left = tree.add_child(tree.root, "A")
    left_leaf = tree.add_child(left, "C")
    right = tree.add_child(tree.root, "B")
    right_leaf = tree.add_child(right, "C")
    probtree = ProbTree(tree, ProbabilityDistribution({"w": 0.3, "x": 0.6}))
    probtree.set_condition(left, Condition.of("w"))
    probtree.set_condition(left_leaf, Condition.of("x"))
    probtree.set_condition(right, Condition.of("w"))
    probtree.set_condition(right_leaf, Condition.of("not x"))
    return probtree


class TestEngineBasics:
    def test_empty_distribution(self):
        engine = ProbabilityEngine(ProbabilityDistribution.empty())
        assert engine.probability(TrueExpr()) == 1.0
        assert engine.probability(FalseExpr()) == 0.0
        assert engine.condition_probability(Condition.true()) == 1.0

    def test_empty_distribution_probtree(self):
        probtree = ProbTree.certain(DataTree("R"))
        worlds = formula_pwset(probtree)
        assert len(worlds) == 1
        assert worlds.total_probability() == pytest.approx(1.0)
        query = parse_path("/R")
        assert boolean_probability(query, probtree) == pytest.approx(1.0)

    def test_contradiction_is_zero(self):
        engine = ProbabilityEngine(ProbabilityDistribution({"w": 0.4}))
        contradiction = conjunction(Var("w"), Not(Var("w")))
        assert engine.probability(contradiction) == 0.0
        assert engine.condition_probability(Condition.of("w", "not w")) == 0.0

    def test_tautology_is_one(self):
        engine = ProbabilityEngine(ProbabilityDistribution({"w": 0.4, "v": 0.9}))
        assert engine.probability(disjunction(Var("w"), Not(Var("w")))) == 1.0
        tautology = disjunction(
            conjunction(Var("w"), Var("v")),
            negation(conjunction(Var("w"), Var("v"))),
        )
        assert engine.probability(tautology) == pytest.approx(1.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(QueryError):
            require_engine_mode("magic")
        with pytest.raises(QueryError):
            ProbabilityEngine(ProbabilityDistribution.empty(), mode="magic")
        assert set(ENGINE_MODES) == {"formula", "enumerate", "sample", "auto-sample"}

    def test_dnf_probability_matches_reference(self):
        distribution = ProbabilityDistribution({"a": 0.2, "b": 0.5, "c": 0.7})
        dnf = DNF.of(["a", "b"], ["not b", "c"], ["a", "not c"])
        formula_engine = ProbabilityEngine(distribution, mode="formula")
        enumerate_engine = ProbabilityEngine(distribution, mode="enumerate")
        assert formula_engine.dnf_probability(dnf) == pytest.approx(
            enumerate_engine.dnf_probability(dnf), abs=1e-12
        )
        assert enumerate_engine.dnf_probability(dnf) == pytest.approx(
            dnf.probability(distribution.as_dict()), abs=1e-12
        )


class TestEnumerationFallback:
    def test_cutoff_controls_fallback(self):
        distribution = ProbabilityDistribution(
            {f"w{i}": 0.1 * (i + 1) for i in range(6)}
        )
        # One entangled component over 6 events: with an enormous cutoff the
        # whole formula goes through enumeration; with cutoff 0 every split is
        # done by Shannon expansion.  Results must agree exactly.
        chain = disjunction(
            *(conjunction(Var(f"w{i}"), Var(f"w{i+1}")) for i in range(5))
        )
        lazy = ProbabilityEngine(distribution, enumeration_cutoff=100)
        eager = ProbabilityEngine(distribution, enumeration_cutoff=0)
        reference = ProbabilityEngine(distribution, mode="enumerate")
        assert lazy.probability(chain) == pytest.approx(
            eager.probability(chain), abs=1e-12
        )
        assert eager.probability(chain) == pytest.approx(
            reference.probability(chain), abs=1e-12
        )
        # The eager engine memoized intermediate cofactors; the lazy one only
        # the top-level formula.
        assert eager.cache_size() >= lazy.cache_size()

    def test_shannon_probability_standalone(self):
        distribution = {"a": 0.25, "b": 0.5}
        expr = disjunction(Var("a"), Var("b"))
        assert shannon_probability(expr, distribution) == pytest.approx(
            1 - 0.75 * 0.5
        )


class TestFormulaHelpers:
    def test_cofactor_substitutes_and_simplifies(self):
        expr = conjunction(Var("a"), disjunction(Var("b"), Var("a")))
        assert cofactor(expr, "a", False) == FalseExpr()
        assert cofactor(expr, "a", True) == simplify(disjunction(Var("b"), TrueExpr()))

    def test_negation_folds(self):
        assert negation(TrueExpr()) == FalseExpr()
        assert negation(Not(Var("a"))) == Var("a")

    def test_independent_components_partition(self):
        parts = independent_components(
            [Var("a"), conjunction(Var("b"), Var("c")), Var("c"), Var("d")]
        )
        events = sorted(
            tuple(sorted(set().union(*(op.events() for op in group))))
            for group in parts
        )
        assert events == [("a",), ("b", "c"), ("d",)]


class TestSharedEvents:
    def test_shared_event_couples_distant_subtrees(self, shared_event_probtree):
        probtree = shared_event_probtree
        # Both 'A' and 'B' hang on the same event w: P(query spanning both)
        # is P(w), not P(w)^2.
        from repro.queries.treepattern import TreePattern

        pattern = TreePattern("R")
        pattern.add_child(pattern.root, "A")
        pattern.add_child(pattern.root, "B")
        assert boolean_probability(pattern, probtree, engine="formula") == pytest.approx(
            0.3
        )
        assert boolean_probability(
            pattern, probtree, engine="enumerate"
        ) == pytest.approx(0.3)

    def test_presence_probability_uses_accumulated_condition(
        self, shared_event_probtree
    ):
        probtree = shared_event_probtree
        tree = probtree.tree
        (left,) = [n for n in tree.nodes() if tree.label(n) == "A"]
        (left_leaf,) = [n for n in tree.children(left)]
        assert str(presence_expr(probtree, left)) == "w"
        assert node_presence_probability(probtree, left) == pytest.approx(0.3)
        assert node_presence_probability(probtree, left_leaf) == pytest.approx(
            0.3 * 0.6
        )

    def test_formula_pwset_respects_coupling(self, shared_event_probtree):
        worlds = formula_pwset(shared_event_probtree)
        assert worlds.total_probability() == pytest.approx(1.0)
        # When w is false both subtrees disappear together: the bare root has
        # probability 1 - P(w).
        assert worlds.probability_of(DataTree("R")) == pytest.approx(0.7)

    def test_dtd_satisfaction_with_shared_events(self, shared_event_probtree):
        dtd = DTD(
            {
                "R": [ChildConstraint.optional("A"), ChildConstraint.optional("B")],
                "A": [ChildConstraint.exactly("C", 1)],
                "B": [ChildConstraint.any_number("C")],
            }
        )
        fast = dtd_satisfaction_probability(shared_event_probtree, dtd, engine="formula")
        slow = dtd_satisfaction_probability(
            shared_event_probtree, dtd, engine="enumerate"
        )
        assert fast == pytest.approx(slow, abs=1e-12)
        # A is present iff w; its C child must then be present, i.e. x.
        # P(valid) = P(not w) + P(w)P(x) = 0.7 + 0.3*0.6
        assert fast == pytest.approx(0.7 + 0.3 * 0.6)


class TestEngineSharing:
    def test_engine_for_returns_shared_instance(self, figure1):
        first = engine_for(figure1)
        second = engine_for(figure1)
        assert first is second
        assert engine_for(figure1, mode="enumerate") is not first

    def test_engine_for_invalidated_by_distribution_change(self, figure1):
        before = engine_for(figure1)
        figure1.add_event("fresh", 0.5)
        after = engine_for(figure1)
        assert after is not before
        assert "fresh" in after.distribution.events()

    def test_cache_shared_across_queries(self, figure1):
        engine = engine_for(figure1)
        evaluate_on_probtree(parse_path("//*"), figure1)
        populated = engine.cache_size()
        assert populated > 0
        assert engine_for(figure1).cache_size() == populated


class TestNormalizedWorldsDispatcher:
    def test_engines_agree(self, figure1):
        assert normalized_worlds(figure1, engine="formula").isomorphic(
            normalized_worlds(figure1, engine="enumerate")
        )

    def test_bad_engine_rejected(self, figure1):
        with pytest.raises(QueryError):
            normalized_worlds(figure1, engine="worlds")


class TestContradictoryConditions:
    def test_contradictory_node_never_appears(self):
        tree = DataTree("R")
        child = tree.add_child(tree.root, "A")
        probtree = ProbTree(tree, ProbabilityDistribution({"w": 0.5}))
        probtree.set_condition(child, Condition.of("w", "not w"))
        worlds = formula_pwset(probtree)
        assert len(worlds) == 1
        assert worlds.probability_of(DataTree("R")) == pytest.approx(1.0)
        assert boolean_probability(parse_path("/R/A"), probtree) == 0.0
        answers = evaluate_on_probtree(parse_path("/R/A"), probtree)
        assert answers == []


class TestLargeDocuments:
    def test_formula_pwset_handles_thousands_of_nodes(self):
        # Regression: the achievable-subset walk must not recurse per node —
        # a 3000-node document with one conditional node has just two worlds.
        tree = DataTree("R")
        for _ in range(3000):
            tree.add_child(tree.root, "A")
        conditional = tree.add_child(tree.root, "B")
        probtree = ProbTree(tree, ProbabilityDistribution({"w": 0.5}))
        probtree.set_condition(conditional, Condition.of("w"))
        worlds = formula_pwset(probtree)
        assert len(worlds) == 2
        assert sorted(worlds.probabilities()) == pytest.approx([0.5, 0.5])

    def test_deep_chain_document(self):
        tree = DataTree("R")
        node = tree.root
        for _ in range(2000):
            node = tree.add_child(node, "A")
        conditional = tree.add_child(node, "B")
        probtree = ProbTree(tree, ProbabilityDistribution({"w": 0.25}))
        probtree.set_condition(conditional, Condition.of("w"))
        worlds = formula_pwset(probtree)
        assert len(worlds) == 2
        assert sorted(worlds.probabilities()) == pytest.approx([0.25, 0.75])


class TestCertainEvents:
    def test_probability_one_event_handled_by_formula_engine(self):
        # An event with pi = 1 gives some worlds probability 0; the
        # enumeration path cannot even represent them (PWSet requires
        # positive probabilities) while the formula path drops them.
        tree = DataTree("R")
        child = tree.add_child(tree.root, "A")
        probtree = ProbTree(tree, ProbabilityDistribution({"e": 1.0}))
        probtree.set_condition(child, Condition.of("not e"))
        worlds = formula_pwset(probtree)
        assert len(worlds) == 1
        assert worlds.probability_of(DataTree("R")) == pytest.approx(1.0)
        assert boolean_probability(parse_path("/R/A"), probtree) == pytest.approx(0.0)


class TestDeepFormulas:
    @staticmethod
    def _star(n, probability):
        tree = DataTree("R")
        events = {}
        for i in range(n):
            tree.add_child(tree.root, "A")
            events[f"w{i}"] = probability
        probtree = ProbTree(tree, ProbabilityDistribution(events))
        for i, child in enumerate(tree.children(tree.root)):
            probtree.set_condition(child, Condition.of(f"w{i}"))
        return probtree

    def test_counting_window_dtd(self):
        # The general interval DP against an independent binomial reference.
        from repro.dtd.dtd import DTD as _DTD, ChildConstraint as _CC
        from repro.dtd.probtree_dtd import (
            dtd_satisfaction_probability,
            dtd_satisfiable,
            dtd_valid,
        )

        n = 60
        probtree = self._star(n, 0.5)
        dtd = _DTD({"R": [_CC("A", 25, 35)]})
        p = dtd_satisfaction_probability(probtree, dtd)
        row = [1.0]
        for _ in range(n):
            nxt = [0.0] * (len(row) + 1)
            for k, v in enumerate(row):
                nxt[k] += v * 0.5
                nxt[k + 1] += v * 0.5
            row = nxt
        assert p == pytest.approx(sum(row[25:36]), abs=1e-9)
        assert dtd_satisfiable(probtree, dtd)
        assert not dtd_valid(probtree, dtd)

    @pytest.mark.slow
    def test_counting_dtd_past_recursion_limit(self):
        # Regression: the DP construction used to recurse once per guard and
        # crash past ~1000 children; ">= 2" over 1100 exercises the general
        # DP with a narrow band, so it stays fast.
        from repro.dtd.dtd import DTD as _DTD, ChildConstraint as _CC
        from repro.dtd.probtree_dtd import dtd_satisfaction_probability

        n, q = 1100, 0.002
        probtree = self._star(n, q)
        p = dtd_satisfaction_probability(probtree, _DTD({"R": [_CC("A", 2, None)]}))
        none_survive = (1 - q) ** n
        one_survives = n * q * (1 - q) ** (n - 1)
        assert p == pytest.approx(1 - none_survive - one_survives, abs=1e-9)

    def test_long_chain_formula(self):
        # Regression: chain formulas recurse once per link; 500 links is past
        # the default recursion limit region the old code crashed in.
        from repro.formulas.compute import shannon_probability as _sp
        from repro.formulas.boolean import Var as _V

        links = 500
        chain = disjunction(
            *(conjunction(_V(f"w{i}"), _V(f"w{i+1}")) for i in range(links))
        )
        probabilities = {f"w{i}": 0.1 for i in range(links + 1)}
        p = _sp(chain, probabilities)
        assert 0.0 < p < 1.0
