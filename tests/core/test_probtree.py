"""Tests for the ProbTree structure (Definitions 2 and 4)."""

import pytest
from hypothesis import given, settings

from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.formulas.literals import Condition, all_worlds
from repro.trees.builders import tree
from repro.trees.datatree import DataTree
from repro.trees.isomorphism import isomorphic
from repro.utils.errors import InvalidConditionError

from tests.conftest import small_probtrees


class TestConstruction:
    def test_certain_probtree_has_no_events(self):
        probtree = ProbTree.certain(tree("A", "B"))
        assert probtree.events() == set()
        assert probtree.used_events() == set()
        assert probtree.size() == 2

    def test_conditions_default_to_true(self, figure1):
        assert figure1.condition(figure1.tree.root).is_true()
        node_d = next(iter(figure1.tree.nodes_with_label("D")))
        assert figure1.condition(node_d).is_true()

    def test_set_condition_on_root_rejected(self, figure1):
        with pytest.raises(InvalidConditionError):
            figure1.set_condition(figure1.tree.root, Condition.of("w1"))

    def test_set_condition_with_unknown_event_rejected(self, figure1):
        node_b = next(iter(figure1.tree.nodes_with_label("B")))
        with pytest.raises(InvalidConditionError):
            figure1.set_condition(node_b, Condition.of("nope"))

    def test_set_true_condition_clears_annotation(self, figure1):
        node_b = next(iter(figure1.tree.nodes_with_label("B")))
        figure1.set_condition(node_b, Condition.true())
        assert figure1.condition(node_b).is_true()
        assert node_b not in figure1.conditions()

    def test_unknown_node_raises(self, figure1):
        with pytest.raises(KeyError):
            figure1.condition(10_000)

    def test_add_child_with_condition(self, figure1):
        node_b = next(iter(figure1.tree.nodes_with_label("B")))
        new = figure1.add_child(node_b, "E", Condition.of("w2"))
        assert figure1.condition(new) == Condition.of("w2")

    def test_add_event(self, figure1):
        figure1.add_event("w9", 0.25)
        assert "w9" in figure1.events()
        assert figure1.distribution["w9"] == 0.25

    def test_event_factory_avoids_existing(self, figure1):
        factory = figure1.event_factory()
        fresh = factory.fresh()
        assert fresh not in {"w1", "w2"}


class TestSizes:
    def test_size_counts_nodes_and_literals(self, figure1):
        # 4 nodes, conditions: B has 2 literals, C has 1.
        assert figure1.node_count() == 4
        assert figure1.literal_count() == 3
        assert figure1.size() == 7

    def test_used_events(self, figure1):
        assert figure1.used_events() == {"w1", "w2"}
        figure1.add_event("w3", 0.4)
        assert figure1.used_events() == {"w1", "w2"}
        assert figure1.events() == {"w1", "w2", "w3"}


class TestValueInWorld:
    def test_figure1_worlds(self, figure1):
        # {w1} -> A with B only; {w2} -> A with C/D; {} -> A alone.
        value = figure1.value_in_world({"w1"})
        assert isomorphic(value, tree("A", "B"))
        value = figure1.value_in_world({"w2"})
        assert isomorphic(value, tree("A", tree("C", "D")))
        value = figure1.value_in_world(set())
        assert isomorphic(value, tree("A"))
        value = figure1.value_in_world({"w1", "w2"})
        assert isomorphic(value, tree("A", tree("C", "D")))

    def test_descendants_disappear_with_their_ancestor(self):
        t = DataTree("A")
        b = t.add_child(t.root, "B")
        t.add_child(b, "C")  # unconditioned, but below B
        probtree = ProbTree(t, ProbabilityDistribution({"w": 0.5}), {b: Condition.of("w")})
        assert probtree.value_in_world(set()).node_count() == 1

    def test_accumulated_condition(self, figure1):
        node_d = next(iter(figure1.tree.nodes_with_label("D")))
        assert figure1.accumulated_condition(node_d) == Condition.of("w2")
        node_b = next(iter(figure1.tree.nodes_with_label("B")))
        assert figure1.accumulated_condition(node_b) == Condition.of("w1", "not w2")

    def test_world_probability(self, figure1):
        assert figure1.world_probability({"w1"}) == pytest.approx(0.8 * 0.3)
        assert figure1.world_probability({"w1", "w2"}) == pytest.approx(0.8 * 0.7)


class TestCopyAndDistribution:
    def test_copy_is_deep(self, figure1):
        clone = figure1.copy()
        node_b = next(iter(clone.tree.nodes_with_label("B")))
        clone.set_condition(node_b, Condition.of("w2"))
        original_b = next(iter(figure1.tree.nodes_with_label("B")))
        assert figure1.condition(original_b) == Condition.of("w1", "not w2")

    def test_with_distribution_requires_used_events(self, figure1):
        with pytest.raises(InvalidConditionError):
            figure1.with_distribution(ProbabilityDistribution({"w1": 0.5}))
        swapped = figure1.with_distribution(
            ProbabilityDistribution({"w1": 0.1, "w2": 0.2})
        )
        assert swapped.distribution["w1"] == pytest.approx(0.1)

    def test_pretty_rendering_mentions_conditions(self, figure1):
        rendering = figure1.pretty()
        assert "w1" in rendering and "not w2" in rendering
        assert rendering.splitlines()[0] == "A"


class TestProperties:
    @given(small_probtrees())
    @settings(max_examples=40)
    def test_value_is_always_a_subtree_with_root(self, probtree):
        for world in all_worlds(probtree.used_events()):
            value = probtree.value_in_world(world)
            assert value.root == probtree.tree.root
            assert value.node_count() <= probtree.tree.node_count()
            assert value.root_label == probtree.tree.root_label

    @given(small_probtrees())
    @settings(max_examples=40)
    def test_node_present_iff_accumulated_condition_holds(self, probtree):
        for world in all_worlds(probtree.used_events()):
            value = probtree.value_in_world(world)
            present = set(value.nodes())
            for node in probtree.tree.nodes():
                expected = probtree.accumulated_condition(node).holds_in(world)
                assert (node in present) == expected
