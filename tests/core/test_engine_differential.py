"""Randomized differential harness: formula engine vs possible-world enumeration.

Every test generates seeded random prob-trees (through the shared generators
in ``tests/conftest.py``) and checks that the formula engine — Shannon
expansion over event formulas, never materializing worlds — agrees with the
exhaustive ``engine="enumerate"`` oracle to 1e-9.  Together the tests cover
well over 200 seeded cases across boolean query probability, Definition 8
answer probabilities, DTD satisfaction, thresholding and the normalized
possible-world semantics itself.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.probability import formula_pwset
from repro.core.semantics import possible_worlds
from repro.dtd.probtree_dtd import (
    dtd_satisfaction_probability,
    dtd_satisfiable,
    dtd_valid,
)
from repro.equivalence.semantic import semantically_equivalent
from repro.queries.evaluation import (
    boolean_probability,
    evaluate_many,
    evaluate_on_probtree,
)
from repro.threshold.threshold import most_probable_worlds, threshold_worlds

from tests.conftest import draw_dtd, draw_probtree, draw_query

pytestmark = pytest.mark.differential

TOLERANCE = 1e-9

BOOLEAN_CASES = 80
DTD_CASES = 60
THRESHOLD_CASES = 40
WORLDS_CASES = 40


def test_case_budget_is_at_least_200():
    """The harness below must keep exercising >= 200 seeded random cases."""
    assert BOOLEAN_CASES + DTD_CASES + THRESHOLD_CASES + WORLDS_CASES >= 200


@pytest.mark.parametrize("seed", range(BOOLEAN_CASES))
def test_boolean_probability_matches_enumeration(seed):
    rng = random.Random(1000 + seed)
    probtree = draw_probtree(rng)
    query = draw_query(rng, probtree.tree)
    fast = boolean_probability(query, probtree, engine="formula")
    slow = boolean_probability(query, probtree, engine="enumerate")
    assert math.isclose(fast, slow, abs_tol=TOLERANCE)
    # Cross-check against a third, fully independent implementation: run the
    # query in every explicitly materialized world.
    brute = sum(
        probability
        for world, probability in possible_worlds(
            probtree, restrict_to_used=True, normalize=False
        )
        if query.selects(world)
    )
    assert math.isclose(fast, brute, abs_tol=TOLERANCE)
    # Definition 8 answers must not depend on the engine either.
    for left, right in zip(
        evaluate_on_probtree(query, probtree, engine="formula"),
        evaluate_many([query], probtree, engine="enumerate")[0],
    ):
        assert math.isclose(left.probability, right.probability, abs_tol=TOLERANCE)
        assert left.tree.same_tree(right.tree)


@pytest.mark.parametrize("seed", range(DTD_CASES))
def test_dtd_satisfaction_matches_enumeration(seed):
    rng = random.Random(2000 + seed)
    probtree = draw_probtree(rng)
    dtd = draw_dtd(rng)
    fast = dtd_satisfaction_probability(probtree, dtd, engine="formula")
    slow = dtd_satisfaction_probability(probtree, dtd, engine="enumerate")
    assert math.isclose(fast, slow, abs_tol=TOLERANCE)
    assert -TOLERANCE <= fast <= 1.0 + TOLERANCE
    # The decision procedures must agree exactly (SAT check vs world search).
    assert dtd_satisfiable(probtree, dtd, engine="formula") == dtd_satisfiable(
        probtree, dtd, engine="enumerate"
    )
    assert dtd_valid(probtree, dtd, engine="formula") == dtd_valid(
        probtree, dtd, engine="enumerate"
    )


@pytest.mark.parametrize("seed", range(THRESHOLD_CASES))
def test_threshold_matches_enumeration(seed):
    rng = random.Random(3000 + seed)
    probtree = draw_probtree(rng)
    threshold = rng.choice((0.05, 0.1, 0.25, 0.5))
    fast = threshold_worlds(probtree, threshold, engine="formula")
    slow = threshold_worlds(probtree, threshold, engine="enumerate")
    assert fast.isomorphic(slow)
    top_fast = most_probable_worlds(probtree, count=3, engine="formula")
    top_slow = most_probable_worlds(probtree, count=3, engine="enumerate")
    assert len(top_fast) == len(top_slow)
    for (_, p_fast), (_, p_slow) in zip(top_fast, top_slow):
        assert math.isclose(p_fast, p_slow, abs_tol=TOLERANCE)


@pytest.mark.parametrize("seed", range(WORLDS_CASES))
def test_normalized_semantics_matches_enumeration(seed):
    rng = random.Random(4000 + seed)
    probtree = draw_probtree(rng)
    fast = formula_pwset(probtree)
    slow = possible_worlds(probtree, restrict_to_used=True, normalize=True)
    assert fast.isomorphic(slow)
    assert math.isclose(fast.total_probability(), 1.0, abs_tol=1e-6)
    # Semantic equivalence must agree with itself across engines: a prob-tree
    # is always equivalent to its own copy.
    assert semantically_equivalent(probtree, probtree.copy(), engine="formula")


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(40))
def test_differential_larger_instances(seed):
    """Bigger trees and event pools; slow, run with --runslow."""
    rng = random.Random(5000 + seed)
    probtree = draw_probtree(rng, max_nodes=14, event_count=8, max_literals=3)
    query = draw_query(rng, probtree.tree)
    assert math.isclose(
        boolean_probability(query, probtree, engine="formula"),
        boolean_probability(query, probtree, engine="enumerate"),
        abs_tol=TOLERANCE,
    )
    dtd = draw_dtd(rng)
    assert math.isclose(
        dtd_satisfaction_probability(probtree, dtd, engine="formula"),
        dtd_satisfaction_probability(probtree, dtd, engine="enumerate"),
        abs_tol=TOLERANCE,
    )
    assert formula_pwset(probtree).isomorphic(
        possible_worlds(probtree, restrict_to_used=True, normalize=True)
    )
