"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, parse_dtd_spec
from repro.core.engine import ProbXMLWarehouse
from repro.trees.builders import tree
from repro.utils.errors import DTDError
from repro.xmlio.serialize import probtree_to_xml


@pytest.fixture
def warehouse_file(tmp_path):
    warehouse = ProbXMLWarehouse("catalog")
    warehouse.insert("/catalog", tree("movie", tree("title", "Solaris")), confidence=0.8)
    warehouse.insert("/catalog", tree("movie", tree("title", "Stalker")), confidence=0.6)
    path = tmp_path / "warehouse.xml"
    path.write_text(probtree_to_xml(warehouse.probtree))
    return str(path)


def _run(argv):
    output = io.StringIO()
    code = main(argv, output=output)
    return code, output.getvalue()


class TestDTDSpecParsing:
    def test_operators(self):
        dtd = parse_dtd_spec("catalog: movie*, source?; movie: title")
        assert dtd.bounds("catalog", "movie") == (0, None)
        assert dtd.bounds("catalog", "source") == (0, 1)
        assert dtd.bounds("movie", "title") == (1, 1)

    def test_plus_operator(self):
        dtd = parse_dtd_spec("library: book+")
        assert dtd.bounds("library", "book") == (1, None)

    def test_malformed_specs_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd_spec("no-colon-here")
        with pytest.raises(DTDError):
            parse_dtd_spec("   ")
        with pytest.raises(DTDError):
            parse_dtd_spec(": movie*")


class TestCommands:
    def test_stats(self, warehouse_file):
        code, output = _run(["stats", warehouse_file])
        assert code == 0
        assert "events declared: 2" in output
        assert "nodes          : 7" in output

    def test_context_stats_flag_prints_formula_ir_counters(self, warehouse_file):
        code, output = _run(["probability", warehouse_file, "/catalog/movie", "--stats"])
        assert code == 0
        assert "stats.intern_misses:" in output
        assert "stats.intern_hits:" in output
        assert "stats.formulas_migrated:" in output
        misses = int(
            next(
                line for line in output.splitlines()
                if line.startswith("stats.intern_misses:")
            ).split(":")[1]
        )
        assert misses > 0  # pricing interned the answer disjunction

    def test_worlds(self, warehouse_file):
        code, output = _run(["worlds", warehouse_file, "--top", "2"])
        assert code == 0
        lines = [line for line in output.splitlines() if line.startswith("p =")]
        assert len(lines) == 2
        assert "0.48" in lines[0]  # 0.8 * 0.6

    def test_query(self, warehouse_file):
        code, output = _run(["query", warehouse_file, "/catalog/movie/title/*"])
        assert code == 0
        assert "Solaris" in output and "Stalker" in output

    def test_query_top_k(self, warehouse_file):
        code, output = _run(["query", warehouse_file, "/catalog/movie/title/*", "--top", "1"])
        assert code == 0
        assert "Solaris" in output and "Stalker" not in output

    def test_query_without_answers_returns_nonzero(self, warehouse_file):
        code, output = _run(["query", warehouse_file, "/catalog/book"])
        assert code == 1
        assert "no answers" in output

    def test_probability(self, warehouse_file):
        code, output = _run(["probability", warehouse_file, "/catalog/movie"])
        assert code == 0
        assert float(output.strip()) == pytest.approx(1 - 0.2 * 0.4)

    def test_validate(self, warehouse_file):
        code, output = _run(
            ["validate", warehouse_file, "--dtd", "catalog: movie*; movie: title"]
        )
        assert code == 0
        assert "satisfiable: True" in output
        assert "valid      : True" in output

    def test_validate_unsatisfiable(self, warehouse_file):
        code, output = _run(
            ["validate", warehouse_file, "--dtd", "catalog: movie*, book+"]
        )
        assert code == 1
        assert "satisfiable: False" in output

    def test_missing_file_reports_error(self, tmp_path):
        code, _output = _run(["stats", str(tmp_path / "missing.xml")])
        assert code == 2


class TestMatcherFlag:
    def test_matcher_choices_rejected_early(self, warehouse_file):
        with pytest.raises(SystemExit):
            _run(["query", warehouse_file, "/catalog/movie", "--matcher", "guess"])

    def test_query_same_under_both_matchers(self, warehouse_file):
        code_indexed, out_indexed = _run(
            ["query", warehouse_file, "/catalog/movie", "--matcher", "indexed"]
        )
        code_naive, out_naive = _run(
            ["query", warehouse_file, "/catalog/movie", "--matcher", "naive"]
        )
        assert code_indexed == code_naive == 0
        assert out_indexed == out_naive

    def test_probability_same_under_both_matchers(self, warehouse_file):
        code_indexed, out_indexed = _run(
            ["probability", warehouse_file, "//title", "--matcher", "indexed"]
        )
        code_naive, out_naive = _run(
            ["probability", warehouse_file, "//title", "--matcher", "naive"]
        )
        assert code_indexed == code_naive == 0
        assert out_indexed == out_naive


class TestEngineFlag:
    def test_engine_choices_rejected_early(self, warehouse_file):
        with pytest.raises(SystemExit):
            _run(["probability", warehouse_file, "/catalog/movie", "--engine", "guess"])

    def test_probability_same_under_both_engines(self, warehouse_file):
        code_formula, out_formula = _run(
            ["probability", warehouse_file, "/catalog/movie", "--engine", "formula"]
        )
        code_enumerate, out_enumerate = _run(
            ["probability", warehouse_file, "/catalog/movie", "--engine", "enumerate"]
        )
        assert code_formula == code_enumerate == 0
        assert out_formula == out_enumerate

    def test_validate_accepts_engine_flag(self, warehouse_file):
        code, output = _run(
            [
                "validate",
                warehouse_file,
                "--dtd",
                "catalog: movie*; movie: title?",
                "--engine",
                "formula",
            ]
        )
        assert code == 0
        assert "P(valid)" in output

    def test_worlds_accepts_engine_flag(self, warehouse_file):
        code_formula, out_formula = _run(
            ["worlds", warehouse_file, "--top", "2", "--engine", "formula"]
        )
        code_enumerate, out_enumerate = _run(
            ["worlds", warehouse_file, "--top", "2", "--engine", "enumerate"]
        )
        assert code_formula == code_enumerate == 0
        assert out_formula == out_enumerate
