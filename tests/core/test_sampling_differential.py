"""Differential harness for the Monte-Carlo sampling engine.

Three families of guarantees, all against independent oracles:

* **calibration** — over hundreds of seeded random formulas, the sampling
  engine's confidence interval must cover the true probability (computed by
  brute-force world enumeration, not by the exact engine under test) at
  roughly the advertised rate;
* **determinism** — estimates are a pure function of the seed: same seed,
  same backend, identical estimate/interval/sample count;
* **typed failure** — on the adversarial entangled-CNF family (no
  independent decomposition), the budgeted exact engine raises
  :class:`~repro.utils.errors.BudgetExceededError` carrying its spent/budget
  counters, and ``auto-sample`` degrades to an estimate while bumping the
  context counters.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.context import ContextStats, ExecutionContext
from repro.core.engine import ProbXMLWarehouse
from repro.core.events import ProbabilityDistribution
from repro.core.probability import ProbabilityEngine
from repro.formulas.ir import FormulaPool
from repro.formulas.sampling import PricingPolicy, SampleEstimate, sample_probability
from repro.utils.errors import BudgetExceededError, ProbXMLError
from repro.workloads.constructions import entangled_cnf_ir, figure1_probtree

CASES = 220
#: Intervals are requested at 99% confidence; over 220 independent cases the
#: expected number of misses is ~2.2, so 6 leaves comfortable slack while
#: still failing loudly on any systematic bias (the run is fully seeded, so
#: this is a deterministic threshold, not a flake budget).
MAX_COVERAGE_MISSES = 6


def _random_formula(pool: FormulaPool, rng: random.Random):
    """A random interned formula over 4-9 events plus its distribution."""
    event_count = rng.randint(4, 9)
    events = [f"w{index}" for index in range(event_count)]
    distribution = {event: rng.uniform(0.05, 0.95) for event in events}

    def build(depth: int) -> int:
        if depth == 0 or rng.random() < 0.3:
            node = pool.var(rng.choice(events))
            return pool.neg(node) if rng.random() < 0.5 else node
        operands = [build(depth - 1) for _ in range(rng.randint(2, 3))]
        combine = pool.conj if rng.random() < 0.5 else pool.disj
        node = combine(operands)
        return pool.neg(node) if rng.random() < 0.2 else node

    return build(3), distribution


def _enumeration_oracle(pool: FormulaPool, node: int, distribution) -> float:
    """Brute-force ``P(node)`` by summing over all worlds of its events."""
    events = sorted(pool.events(node))
    total = 0.0
    for values in itertools.product((False, True), repeat=len(events)):
        world = {event: value for event, value in zip(events, values)}
        weight = 1.0
        for event, value in world.items():
            probability = distribution[event]
            weight *= probability if value else 1.0 - probability
        if pool.evaluate(node, {e for e, v in world.items() if v}):
            total += weight
    return total


def _sampling_policy(seed: int) -> PricingPolicy:
    # exact_event_threshold=0 forces genuine sampling even on tiny formulas,
    # which is the code path this harness exists to calibrate.
    return PricingPolicy(
        epsilon=0.02,
        confidence=0.99,
        max_samples=30_000,
        seed=seed,
        exact_event_threshold=0,
    )


@pytest.mark.differential
def test_sample_intervals_cover_enumeration_oracle():
    misses = 0
    worst = None
    for case in range(CASES):
        rng = random.Random(1000 + case)
        pool = FormulaPool()
        node, distribution = _random_formula(pool, rng)
        truth = _enumeration_oracle(pool, node, distribution)
        estimate = sample_probability(
            pool, node, distribution, policy=_sampling_policy(seed=case)
        )
        assert isinstance(estimate, SampleEstimate)
        assert 0.0 <= estimate.low <= estimate.high <= 1.0
        assert estimate.low <= estimate.estimate <= estimate.high
        if not estimate.low <= truth <= estimate.high:
            misses += 1
            worst = (case, truth, estimate)
    assert misses <= MAX_COVERAGE_MISSES, (
        f"{misses}/{CASES} confidence intervals missed the enumeration "
        f"oracle (last miss: {worst})"
    )


@pytest.mark.differential
def test_sample_estimates_are_seed_deterministic():
    seed_changes_something = False
    for case in range(20):
        rng = random.Random(5000 + case)
        pool = FormulaPool()
        node, distribution = _random_formula(pool, rng)
        first = sample_probability(
            pool, node, distribution, policy=_sampling_policy(seed=case)
        )
        second = sample_probability(
            pool, node, distribution, policy=_sampling_policy(seed=case)
        )
        assert (first.estimate, first.low, first.high, first.samples) == (
            second.estimate,
            second.low,
            second.high,
            second.samples,
        )
        different = sample_probability(
            pool, node, distribution, policy=_sampling_policy(seed=case + 10_000)
        )
        if (first.estimate, first.low, first.high) != (
            different.estimate,
            different.low,
            different.high,
        ):
            seed_changes_something = True
    # Degenerate formulas (near-tautologies) can coincide across seeds; a
    # seed that changed *nothing* over 20 formulas would mean it is ignored.
    assert seed_changes_something


def test_budget_exceeded_is_typed_and_carries_counters():
    pool = FormulaPool()
    node, distribution = entangled_cnf_ir(pool, event_count=48, seed=7)
    with pytest.raises(BudgetExceededError) as excinfo:
        pool.probability(node, distribution, max_expansions=2000)
    error = excinfo.value
    assert isinstance(error, ProbXMLError)
    assert error.budget == 2000
    assert error.spent is not None and error.spent > error.budget


def test_formula_engine_respects_policy_budget():
    pool = FormulaPool()
    node, distribution = entangled_cnf_ir(pool, event_count=48, seed=7)
    stats = ContextStats()
    engine = ProbabilityEngine(
        ProbabilityDistribution(distribution),
        mode="formula",
        pool=pool,
        stats=stats,
        policy=PricingPolicy(max_expansions=2000),
    )
    with pytest.raises(BudgetExceededError):
        engine.probability(node)
    assert stats.exact_budget_exceeded == 1


def test_auto_sample_falls_back_and_counts():
    pool = FormulaPool()
    node, distribution = entangled_cnf_ir(pool, event_count=48, seed=7)
    stats = ContextStats()
    engine = ProbabilityEngine(
        ProbabilityDistribution(distribution),
        mode="auto-sample",
        pool=pool,
        stats=stats,
        policy=PricingPolicy(max_expansions=2000, seed=3),
    )
    value = engine.probability(node)
    assert 0.0 <= value <= 1.0
    assert stats.exact_budget_exceeded == 1
    assert stats.fallbacks == 1
    assert stats.samples_drawn > 0


def test_sample_engine_shortcircuits_small_formulas_exactly():
    pool = FormulaPool()
    distribution = {"a": 0.25, "b": 0.5}
    node = pool.disj([pool.var("a"), pool.var("b")])
    engine = ProbabilityEngine(
        ProbabilityDistribution(distribution), mode="sample", pool=pool
    )
    estimate = engine.probability_anytime(node)
    assert estimate.exact
    assert estimate.width == 0.0
    assert estimate.estimate == pytest.approx(1.0 - 0.75 * 0.5)
    assert engine.probability(node) == pytest.approx(1.0 - 0.75 * 0.5)


def test_warehouse_end_to_end_sampling_modes():
    for mode in ("sample", "auto-sample"):
        warehouse = ProbXMLWarehouse(
            figure1_probtree(), context=ExecutionContext(engine=mode)
        )
        probability = warehouse.probability("/A/B")
        # Figure 1: B is present iff w1 ∧ ¬w2 — small enough for the exact
        # short-circuit, so sampling modes return the exact value.
        assert probability == pytest.approx(0.8 * 0.3)
        estimate = warehouse.probability_anytime("/A/B")
        assert estimate.exact
        assert estimate.estimate == pytest.approx(0.8 * 0.3)
