"""ContextStats aggregation: merge() and from_dict().

These are the primitives the sharded router uses to fold per-shard counter
snapshots (shipped over the wire as plain dicts) into the one report the CLI
``--stats`` flag and the service ``/stats`` endpoint render.
"""

from __future__ import annotations

import pytest

from repro.core.context import ContextStats


def _stats(**counters) -> ContextStats:
    stats = ContextStats()
    for name, value in counters.items():
        setattr(stats, name, value)
    return stats


class TestMerge:
    def test_merges_another_stats_object_field_by_field(self):
        left = _stats(intern_hits=3, samples_drawn=100)
        right = _stats(intern_hits=4, pool_gc_runs=2)
        result = left.merge(right)
        assert result is left  # in place, chainable
        assert left.intern_hits == 7
        assert left.samples_drawn == 100
        assert left.pool_gc_runs == 2

    def test_merges_a_plain_counter_dict(self):
        left = _stats(rollbacks=1)
        left.merge({"rollbacks": 2, "evictions": 5})
        assert left.rollbacks == 3
        assert left.evictions == 5

    def test_unknown_keys_are_ignored(self):
        # A worker running a slightly newer build may ship counters this
        # build does not know; aggregation must not blow up on them.
        left = ContextStats()
        left.merge({"counter_from_the_future": 9, "intern_misses": 1})
        assert left.intern_misses == 1
        assert not hasattr(left, "counter_from_the_future")

    def test_missing_keys_contribute_nothing(self):
        left = _stats(plans_compiled=2)
        left.merge({})
        assert left.plans_compiled == 2

    def test_merge_of_full_snapshots_equals_elementwise_sum(self):
        left, right = ContextStats(), ContextStats()
        for index, name in enumerate(ContextStats.__slots__):
            setattr(left, name, index)
            setattr(right, name, 2 * index)
        merged = ContextStats().merge(left).merge(right.as_dict())
        assert merged.as_dict() == {
            name: 3 * index for index, name in enumerate(ContextStats.__slots__)
        }

    def test_values_are_coerced_to_int(self):
        left = ContextStats()
        left.merge({"samples_drawn": 7.0})  # JSON round-trips may float-ify
        assert left.samples_drawn == 7
        assert isinstance(left.samples_drawn, int)


class TestFromDict:
    def test_rebuilds_an_as_dict_snapshot(self):
        original = _stats(answer_cache_hits=11, pool_nodes_swept=42)
        rebuilt = ContextStats.from_dict(original.as_dict())
        assert rebuilt.as_dict() == original.as_dict()

    def test_partial_dict_leaves_other_counters_at_zero(self):
        rebuilt = ContextStats.from_dict({"faults_injected": 1})
        assert rebuilt.faults_injected == 1
        assert rebuilt.intern_hits == 0

    def test_round_trip_is_stable_under_repr(self):
        stats = _stats(engines_created=2)
        assert "engines_created=2" in repr(stats)
