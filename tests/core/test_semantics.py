"""Tests for the possible-world semantics ⟦T⟧ (Definition 4)."""

import pytest
from hypothesis import given, settings

from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds, world_count
from repro.trees.builders import tree
from repro.trees.isomorphism import canonical_encoding, isomorphic

from tests.conftest import small_probtrees


class TestFigure1:
    def test_matches_figure2(self, figure1):
        worlds = possible_worlds(figure1, normalize=True)
        by_shape = {
            canonical_encoding(world): probability for world, probability in worlds
        }
        assert by_shape[canonical_encoding(tree("A"))] == pytest.approx(0.06)
        assert by_shape[canonical_encoding(tree("A", "B"))] == pytest.approx(0.24)
        assert by_shape[canonical_encoding(tree("A", tree("C", "D")))] == pytest.approx(0.70)
        assert len(worlds) == 3

    def test_unnormalized_enumeration_has_one_entry_per_world(self, figure1):
        worlds = possible_worlds(figure1, normalize=False)
        assert len(worlds) == 4  # 2 used events
        assert worlds.total_probability() == pytest.approx(1.0)

    def test_world_count(self, figure1):
        assert world_count(figure1) == 4
        figure1.add_event("unused", 0.5)
        assert world_count(figure1) == 4
        assert world_count(figure1, restrict_to_used=False) == 8


class TestRestrictionToUsedEvents:
    def test_unused_events_do_not_change_semantics(self, figure1):
        full = possible_worlds(figure1, restrict_to_used=False, normalize=True)
        restricted = possible_worlds(figure1, restrict_to_used=True, normalize=True)
        assert full.isomorphic(restricted)
        figure1.add_event("noise", 0.123)
        with_noise = possible_worlds(figure1, restrict_to_used=False, normalize=True)
        assert with_noise.isomorphic(restricted)


class TestCertainTrees:
    def test_certain_tree_has_single_world(self):
        probtree = ProbTree.certain(tree("A", "B", tree("C", "D")))
        worlds = possible_worlds(probtree)
        assert len(worlds) == 1
        world, probability = next(iter(worlds))
        assert probability == pytest.approx(1.0)
        assert isomorphic(world, probtree.tree)


class TestProperties:
    @given(small_probtrees())
    @settings(max_examples=30)
    def test_probabilities_sum_to_one(self, probtree):
        worlds = possible_worlds(probtree, normalize=False)
        assert worlds.total_probability() == pytest.approx(1.0)
        assert possible_worlds(probtree, normalize=True).total_probability() == pytest.approx(1.0)

    @given(small_probtrees())
    @settings(max_examples=30)
    def test_normalization_preserves_isomorphism_class(self, probtree):
        raw = possible_worlds(probtree, normalize=False)
        normalized = possible_worlds(probtree, normalize=True)
        assert raw.isomorphic(normalized)
        assert normalized.is_normalized()

    @given(small_probtrees())
    @settings(max_examples=30)
    def test_every_world_value_appears(self, probtree):
        worlds = possible_worlds(probtree, normalize=True)
        # The all-events-true world's value must have positive probability.
        value = probtree.value_in_world(probtree.used_events())
        assert worlds.probability_of(value) > 0.0
