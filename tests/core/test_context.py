"""Tests for the session-scoped execution layer (repro.core.context)."""

import pytest

from repro.core.context import (
    AUTO_NAIVE_COST,
    ContextStats,
    ExecutionContext,
    default_context,
    resolve_context,
    set_default_context,
)
from repro.core.engine import ProbXMLWarehouse
from repro.queries.evaluation import (
    boolean_probability,
    evaluate_on_probtree,
)
from repro.queries.path import parse_path
from repro.queries.treepattern import TreePattern, descendant_anywhere
from repro.trees.builders import tree
from repro.utils.errors import QueryError
from repro.workloads.random_probtrees import random_probtree
from repro.workloads.random_queries import random_matching_pattern
from repro.workloads.random_trees import random_datatree


def _catalog() -> ProbXMLWarehouse:
    warehouse = ProbXMLWarehouse("catalog")
    warehouse.insert("/catalog", tree("movie", tree("title", "Solaris")), confidence=0.8)
    warehouse.insert("/catalog", tree("movie", tree("title", "Stalker")), confidence=0.6)
    return warehouse


class TestModeResolution:
    def test_defaults(self):
        context = ExecutionContext()
        assert context.engine == "formula"
        assert context.matcher == "indexed"

    def test_invalid_modes_rejected(self):
        with pytest.raises(QueryError):
            ExecutionContext(engine="guess")
        with pytest.raises(QueryError):
            ExecutionContext(matcher="guess")
        with pytest.raises(QueryError):
            ExecutionContext().resolve_engine("guess")
        with pytest.raises(QueryError):
            ExecutionContext().resolve_matcher("guess")

    def test_auto_is_a_valid_context_matcher(self):
        assert ExecutionContext(matcher="auto").matcher == "auto"

    def test_with_modes_shares_caches(self):
        context = ExecutionContext(engine="formula", matcher="indexed")
        view = context.with_modes(engine="enumerate", matcher="naive")
        assert view.engine == "enumerate"
        assert view.matcher == "naive"
        assert view.shares_caches_with(context)
        assert view.stats is context.stats
        # No overrides → the very same object (no pointless view allocation).
        assert context.with_modes() is context

    def test_resolve_context_precedence(self):
        session = ExecutionContext(engine="enumerate", matcher="naive")
        # 1. string overrides beat the explicit context's defaults …
        resolved = resolve_context(session, engine="formula", matcher="indexed")
        assert resolved.engine == "formula"
        assert resolved.matcher == "indexed"
        assert resolved.shares_caches_with(session)
        # 2. … the explicit context beats the module default …
        assert resolve_context(session) is session
        # 3. … and with nothing at all, the module default applies.
        assert resolve_context() is default_context()

    def test_set_default_context_roundtrip(self):
        replacement = ExecutionContext(engine="enumerate")
        previous = set_default_context(replacement)
        try:
            assert default_context() is replacement
            assert resolve_context().engine == "enumerate"
        finally:
            set_default_context(previous)
        with pytest.raises(TypeError):
            set_default_context("not a context")

    def test_per_call_override_beats_warehouse_default(self):
        warehouse = _catalog()
        warehouse.engine = "enumerate"
        warehouse.matcher = "naive"
        expected = 1 - 0.2 * 0.4
        # The warehouse default (enumerate/naive) and every per-call override
        # must agree numerically, and overrides must not disturb the default.
        assert warehouse.probability("/catalog/movie") == pytest.approx(expected)
        assert warehouse.probability(
            "/catalog/movie", engine="formula", matcher="indexed"
        ) == pytest.approx(expected)
        override = ExecutionContext(engine="formula", matcher="indexed")
        assert warehouse.probability(
            "/catalog/movie", context=override
        ) == pytest.approx(expected)
        assert warehouse.engine == "enumerate"
        assert warehouse.matcher == "naive"

    def test_warehouse_engine_setter_still_validates(self):
        warehouse = _catalog()
        with pytest.raises(QueryError):
            warehouse.engine = "guess"
        with pytest.raises(QueryError):
            warehouse.matcher = "guess"
        warehouse.matcher = "auto"  # now a legal warehouse-level mode
        assert warehouse.matcher == "auto"
        assert warehouse.probability("/catalog/movie") == pytest.approx(1 - 0.2 * 0.4)


class TestAutoMatcher:
    @pytest.mark.parametrize("seed", range(40))
    def test_auto_agrees_with_both_fixed_matchers(self, seed):
        """The cost-model choice must be observationally invisible."""
        size = 1 + (seed * 11) % 150
        doc = random_datatree(size, seed=seed)
        pattern, _ = random_matching_pattern(
            doc, seed=seed, wildcard_probability=0.3, descendant_probability=0.4
        )
        context = ExecutionContext(matcher="auto")
        auto = pattern.matches(doc, context=context)
        naive = pattern.matches(doc, matcher="naive")
        indexed = pattern.matches(doc, matcher="indexed")
        assert set(auto) == set(naive) == set(indexed)
        assert len(auto) == len(naive) == len(indexed)

    def test_auto_picks_naive_on_tiny_products(self):
        doc = random_datatree(10, seed=1)
        assert doc._index_cache is None
        pattern = descendant_anywhere("A")
        context = ExecutionContext(matcher="auto")
        assert pattern.node_count() * doc.node_count() <= AUTO_NAIVE_COST
        assert context.effective_matcher(pattern, doc) == "naive"
        assert context.stats.auto_chose_naive == 1

    def test_auto_picks_indexed_on_large_products(self):
        doc = random_datatree(600, seed=2)
        pattern = descendant_anywhere("A")
        context = ExecutionContext(matcher="auto")
        assert context.effective_matcher(pattern, doc) == "indexed"
        assert context.stats.auto_chose_indexed == 1

    def test_auto_prefers_a_fresh_cached_index(self):
        doc = random_datatree(10, seed=3)
        context = ExecutionContext(matcher="auto")
        pattern = descendant_anywhere("A")
        context.index_for(doc)  # sunk cost: the index exists and is fresh
        assert context.effective_matcher(pattern, doc) == "indexed"

    def test_auto_treats_a_patchable_stale_index_as_almost_fresh(self):
        # Journal-aware cost model: a stale index whose pending journal fits
        # under PATCH_JOURNAL_LIMIT will be patched, not rebuilt, so even a
        # tiny pattern×tree product keeps the compiled plans.
        from repro.trees.index import PATCH_JOURNAL_LIMIT

        doc = random_datatree(10, seed=3)
        context = ExecutionContext(matcher="auto")
        pattern = descendant_anywhere("A")
        context.index_for(doc)
        doc.add_child(doc.root, "Z")  # stale, one journal entry: patchable
        assert context.effective_matcher(pattern, doc) == "indexed"
        # Push the journal past the patch threshold: the cost model must fall
        # back to assuming a full rebuild, and the tiny product goes naive.
        for _ in range(PATCH_JOURNAL_LIMIT + 1):
            doc.add_child(doc.root, "Z")
        assert context.effective_matcher(pattern, doc) == "naive"

    def test_auto_patchable_index_differential(self):
        # The journal-aware decision must not change results: evaluate the
        # same query under auto (with a stale-but-patchable index) and under
        # both fixed matchers.
        doc = random_datatree(60, seed=11)
        pattern = descendant_anywhere("A")
        context = ExecutionContext(matcher="auto")
        context.index_for(doc)
        doc.add_child(doc.root, "A")  # stale but patchable
        auto = pattern.matches(doc, context=context)
        naive = pattern.matches(doc, matcher="naive")
        indexed = pattern.matches(doc, matcher="indexed")
        assert set(auto) == set(naive) == set(indexed)
        assert len(auto) == len(naive) == len(indexed)

    def test_fixed_override_bypasses_the_cost_model(self):
        doc = random_datatree(10, seed=4)
        context = ExecutionContext(matcher="auto")
        assert context.effective_matcher(descendant_anywhere("A"), doc, "indexed") == "indexed"
        assert context.stats.auto_chose_naive == 0
        assert context.stats.auto_chose_indexed == 0

    def test_auto_counts_one_decision_per_evaluation_none_on_hits(self):
        probtree = random_probtree(node_count=20, event_count=4, seed=5)
        context = ExecutionContext(matcher="auto")
        query = parse_path("//A")
        evaluate_on_probtree(query, probtree, context=context)
        decisions = context.stats.auto_chose_naive + context.stats.auto_chose_indexed
        assert decisions == 1  # cache-key resolution must not double-count
        evaluate_on_probtree(query, probtree, context=context)
        assert context.stats.answer_cache_hits == 1
        assert (
            context.stats.auto_chose_naive + context.stats.auto_chose_indexed
            == decisions  # a pure cache hit runs no matching → no decision
        )

    def test_formulas_evaluated_counts_only_pricing_work(self):
        probtree = random_probtree(node_count=30, event_count=5, seed=6)
        context = ExecutionContext()
        engine = context.engine_for(probtree)
        condition = probtree.condition(
            next(n for n in probtree.tree.nodes() if not probtree.condition(n).is_true())
        )
        engine.condition_probability(condition)
        cold = context.stats.formulas_evaluated
        assert cold == 1
        engine.condition_probability(condition)  # memoized: not a new formula
        assert context.stats.formulas_evaluated == cold


class TestAnswerSetCache:
    def test_repeated_query_hits_the_cache(self):
        probtree = random_probtree(node_count=40, event_count=6, seed=7)
        context = ExecutionContext()
        query = parse_path("//A")
        first = evaluate_on_probtree(query, probtree, context=context)
        assert context.stats.answer_cache_misses == 1
        assert context.stats.answer_cache_hits == 0
        second = evaluate_on_probtree(query, probtree, context=context)
        assert context.stats.answer_cache_hits == 1
        assert [a.probability for a in first] == [a.probability for a in second]

    def test_equal_patterns_share_cache_entries(self):
        """The key is the structural fingerprint, not object identity."""
        probtree = random_probtree(node_count=40, event_count=6, seed=8)
        context = ExecutionContext()
        evaluate_on_probtree(parse_path("//B"), probtree, context=context)
        evaluate_on_probtree(parse_path("//B"), probtree, context=context)
        assert context.stats.answer_cache_hits == 1

    def test_matcher_modes_key_separately_but_agree(self):
        probtree = random_probtree(node_count=40, event_count=6, seed=9)
        context = ExecutionContext()
        query = parse_path("//A")
        indexed = evaluate_on_probtree(query, probtree, matcher="indexed", context=context)
        naive = evaluate_on_probtree(query, probtree, matcher="naive", context=context)
        assert context.stats.answer_cache_misses == 2
        assert {round(a.probability, 9) for a in indexed} == {
            round(a.probability, 9) for a in naive
        }

    def test_engine_modes_key_separately(self):
        """engine="enumerate" must run the oracle, not hit formula's cache."""
        probtree = random_probtree(node_count=30, event_count=5, seed=16)
        context = ExecutionContext()
        query = parse_path("//A")
        formula = evaluate_on_probtree(query, probtree, engine="formula", context=context)
        enumerated = evaluate_on_probtree(
            query, probtree, engine="enumerate", context=context
        )
        assert context.stats.answer_cache_hits == 0
        assert context.stats.answer_cache_misses == 2
        assert [a.probability for a in formula] == pytest.approx(
            [a.probability for a in enumerated]
        )

    def test_queries_without_fingerprint_bypass_the_cache(self):
        from repro.queries.base import Match, Query

        class OpaqueQuery(Query):
            def matches(self, tree):
                return [Match.from_dict({0: tree.root})]

        probtree = random_probtree(node_count=10, event_count=3, seed=10)
        context = ExecutionContext()
        evaluate_on_probtree(OpaqueQuery(), probtree, context=context)
        evaluate_on_probtree(OpaqueQuery(), probtree, context=context)
        assert context.stats.answer_cache_hits == 0
        assert context.stats.answer_cache_misses == 0

    def test_oldest_style_overrides_without_matcher_kwarg_still_work(self):
        """Pre-matcher-era subclasses override results/result_node_sets(tree)."""
        from repro.queries.base import Match, Query

        class AncientQuery(Query):
            def matches(self, tree):
                return [Match.from_dict({0: tree.root})]

            def result_node_sets(self, tree):
                return [frozenset({tree.root})]

            def results(self, tree):
                return [tree.restrict({tree.root})]

        probtree = random_probtree(node_count=8, event_count=2, seed=14)
        context = ExecutionContext()
        answers = evaluate_on_probtree(AncientQuery(), probtree, context=context)
        assert len(answers) == 1
        from repro.queries.evaluation import evaluate_on_datatree

        assert len(evaluate_on_datatree(AncientQuery(), probtree.tree)) == 1

    def test_default_context_returns_fresh_answer_trees(self):
        """Anonymous legacy callers must never receive cache-aliased trees."""
        probtree = random_probtree(node_count=25, event_count=4, seed=15)
        query = parse_path("//A")
        first = evaluate_on_probtree(query, probtree)
        second = evaluate_on_probtree(query, probtree)
        for left, right in zip(first, second):
            assert left.tree is not right.tree
        # Mutating a returned answer cannot leak into later results.
        if first:
            first[0].tree.set_label(first[0].tree.root, "HACKED")
            third = evaluate_on_probtree(query, probtree)
            assert all(a.tree.root_label != "HACKED" for a in third)

    def test_in_place_mutation_invalidates(self):
        """Version bumps must start a fresh per-tree cache table."""
        probtree = random_probtree(node_count=30, event_count=4, seed=11)
        context = ExecutionContext()
        query = descendant_anywhere("A")
        before = boolean_probability(query, probtree, context=context)
        # Graft a certain A right under the root: the query now always holds.
        probtree.add_child(probtree.tree.root, "A")
        after = boolean_probability(query, probtree, context=context)
        assert after == pytest.approx(1.0)
        assert context.stats.nodeset_cache_misses == 2
        del before

    def test_stats_reset(self):
        context = ExecutionContext()
        probtree = random_probtree(node_count=20, event_count=3, seed=12)
        evaluate_on_probtree(parse_path("//A"), probtree, context=context)
        assert context.stats.formulas_evaluated > 0 or context.stats.answer_cache_misses > 0
        context.stats.reset()
        assert all(value == 0 for value in context.stats.as_dict().values())

    def test_stats_counters_observable(self):
        context = ExecutionContext()
        probtree = random_probtree(node_count=40, event_count=6, seed=13)
        evaluate_on_probtree(parse_path("//A/B"), probtree, context=context)
        snapshot = context.stats.as_dict()
        assert snapshot["plans_compiled"] >= 1
        assert snapshot["engines_created"] == 1
        assert snapshot["formulas_evaluated"] >= 0
        assert isinstance(repr(context.stats), str)


class TestUpdateInvalidation:
    """Satellite: query → update → re-query must never serve stale answers."""

    def test_warehouse_query_update_requery(self):
        warehouse = ProbXMLWarehouse("catalog")
        warehouse.insert("/catalog", tree("movie", tree("title", "Solaris")), confidence=0.8)
        first = warehouse.query("/catalog/movie")
        assert len(first) == 1
        # Cache warm: the same query again must hit …
        warehouse.query("/catalog/movie")
        assert warehouse.stats.answer_cache_hits >= 1
        # … and an update in between must invalidate, not replay.
        warehouse.insert("/catalog", tree("movie", tree("title", "Stalker")), confidence=0.6)
        second = warehouse.query("/catalog/movie")
        assert len(second) == 2

    def test_warehouse_delete_invalidates(self):
        warehouse = _catalog()
        assert len(warehouse.query("/catalog/movie")) == 2
        warehouse.delete("/catalog/movie", confidence=1.0)
        assert warehouse.query("/catalog/movie") == []

    def test_clean_and_threshold_replace_trees(self):
        warehouse = _catalog()
        baseline = warehouse.probability("/catalog/movie")
        warehouse.clean()
        assert warehouse.probability("/catalog/movie") == pytest.approx(baseline)
        warehouse.prune_below(0.3)
        worlds = warehouse.possible_worlds()
        assert worlds.total_probability() == pytest.approx(1.0)
        # The post-threshold document answers from its own (fresh) cache entry.
        assert len(warehouse.query("/catalog/movie")) >= 1

    def test_direct_apply_update_gets_fresh_tree(self):
        from repro.updates.operations import Insertion, ProbabilisticUpdate
        from repro.updates.probtree_updates import apply_update_to_probtree

        context = ExecutionContext()
        probtree = ProbXMLWarehouse("catalog").probtree
        pattern = TreePattern("catalog")
        updated = apply_update_to_probtree(
            probtree,
            ProbabilisticUpdate(
                Insertion(pattern, pattern.root, tree("movie")), confidence=0.5
            ),
            context=context,
        )
        assert updated.tree is not probtree.tree
        before = evaluate_on_probtree(
            descendant_anywhere("movie"), probtree, context=context
        )
        after = evaluate_on_probtree(
            descendant_anywhere("movie"), updated, context=context
        )
        assert before == []
        assert len(after) == 1


class TestFormulaPoolSharing:
    """Tentpole: one hash-consed intern table per context state."""

    def test_engines_share_the_context_pool(self):
        context = ExecutionContext()
        left = random_probtree(node_count=15, event_count=3, seed=21)
        right = random_probtree(node_count=15, event_count=3, seed=22)
        assert context.engine_for(left).pool is context.formula_pool
        assert context.engine_for(right).pool is context.formula_pool
        # Mode-override views share the pool too (same cache state).
        assert context.with_modes(engine="enumerate").formula_pool is (
            context.formula_pool
        )

    def test_intern_counters_surface_in_stats(self):
        probtree = random_probtree(node_count=30, event_count=5, seed=23)
        context = ExecutionContext()
        query = parse_path("//A")
        boolean_probability(query, probtree, context=context)
        cold_misses = context.stats.intern_misses
        assert cold_misses > 0
        # Re-pricing the identical question resolves to intern hits, not
        # fresh allocations.
        boolean_probability(query, probtree, context=context)
        assert context.stats.intern_misses == cold_misses
        assert context.stats.intern_hits > 0

    def test_warm_repricing_does_no_new_formula_work(self):
        # Two independently inserted movies give the boolean query a genuine
        # compound disjunction (w1 ∨ w2) that the Shannon memo retains.
        context = ExecutionContext(cache_answers=False)
        warehouse = ProbXMLWarehouse("catalog", context=context)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.8)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.6)
        query = parse_path("/catalog/movie")
        probtree = warehouse.probtree
        boolean_probability(query, probtree, context=context)
        cold = context.stats.formulas_evaluated
        boolean_probability(query, probtree, context=context)
        assert context.stats.formulas_evaluated == cold


class TestFormulaMigration:
    """Satellite of the tentpole: prices migrate across update/clean."""

    def test_update_migrates_formula_caches(self):
        context = ExecutionContext()
        warehouse = ProbXMLWarehouse("catalog", context=context)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.8)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.6)
        query = parse_path("/catalog/movie")
        baseline = boolean_probability(query, warehouse.probtree, context=context)
        assert context.stats.formulas_migrated == 0
        # A label-disjoint insert replaces the prob-tree; the (w1 ∨ w2)
        # price must ride across the replacement.
        warehouse.insert("/catalog", tree("book", "isbn"), confidence=0.9)
        assert context.stats.formulas_migrated > 0
        warm = context.stats.formulas_evaluated
        assert boolean_probability(
            query, warehouse.probtree, context=context
        ) == pytest.approx(baseline)
        assert context.stats.formulas_evaluated == warm

    def test_migrated_prices_agree_with_a_cold_context(self):
        from repro.updates.operations import Deletion, ProbabilisticUpdate
        from repro.updates.probtree_updates import apply_update_to_probtree

        warm_context = ExecutionContext()
        cold_context = ExecutionContext()
        probtree = random_probtree(node_count=25, event_count=4, seed=25)
        query, _focus = random_matching_pattern(probtree.tree, seed=3)
        boolean_probability(query, probtree, context=warm_context)
        update = ProbabilisticUpdate(
            Deletion(query, query.node_count() - 1), confidence=0.5, event="fresh"
        )
        updated_warm = apply_update_to_probtree(probtree, update, context=warm_context)
        updated_cold = apply_update_to_probtree(probtree, update, context=cold_context)
        assert boolean_probability(
            query, updated_warm, context=warm_context
        ) == pytest.approx(
            boolean_probability(query, updated_cold, context=cold_context)
        )

    def test_clean_migrates_formula_caches(self):
        from repro.core.cleaning import clean

        context = ExecutionContext()
        warehouse = ProbXMLWarehouse("catalog", context=context)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.8)
        probtree = warehouse.probtree
        # evaluate_on_probtree prices each answer's condition bundle through
        # the shared engine, populating the caches clean() must carry over.
        answers = warehouse.query("/catalog/movie")
        baseline = answers[0].probability
        cleaned = clean(probtree, context=context)
        assert context.stats.formulas_migrated > 0
        warm = evaluate_on_probtree(
            parse_path("/catalog/movie"), cleaned, context=context
        )
        assert warm[0].probability == pytest.approx(baseline)

    def test_no_migration_across_distribution_rewrites(self):
        context = ExecutionContext()
        source = random_probtree(node_count=15, event_count=3, seed=26)
        query, _focus = random_matching_pattern(source.tree, seed=4)
        boolean_probability(query, source, context=context)
        # A re-weighted distribution invalidates every price: nothing moves.
        target = source.with_distribution(
            source.distribution.with_events(
                {event: 0.123 for event in source.distribution.events()}
            )
        )
        assert context.migrate_formulas(source, target) == 0
        assert context.stats.formulas_migrated == 0

    def test_stale_engine_prices_never_migrate(self):
        # An engine cut under w=0.4 goes stale when the *source* re-weights
        # w in place; migration must validate against the engine's own
        # distribution, not the source's current one.
        from repro.formulas.literals import Condition

        context = ExecutionContext()
        warehouse = ProbXMLWarehouse("catalog", context=context)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.4)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.4)
        probtree = warehouse.probtree
        query = parse_path("/catalog/movie")
        boolean_probability(query, probtree, context=context)  # priced at 0.4
        event = sorted(probtree.distribution.events())[0]
        probtree.add_event(event, 0.9)  # re-weight in place: engine is stale
        target = probtree.copy()
        assert context.migrate_formulas(probtree, target) == 0
        fresh = ExecutionContext()
        assert boolean_probability(query, target, context=context) == pytest.approx(
            boolean_probability(query, target, context=fresh)
        )


class TestFormulaPoolRestart:
    def test_oversized_pool_is_garbage_collected_in_place(self):
        # Dead nodes past the bound are swept — warm caches survive and the
        # pool object (and every engine's reference to it) stays the same.
        from repro.core.context import FORMULA_POOL_NODE_LIMIT

        context = ExecutionContext()
        warehouse = ProbXMLWarehouse("catalog", context=context)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.8)
        probtree = warehouse.probtree
        query = parse_path("/catalog/movie")
        baseline = boolean_probability(query, probtree, context=context)
        old_pool = context.formula_pool
        assert not context._state.restart_formula_layer_if_oversized()
        # Inflate past the bound with unreachable vars; the next engine_for
        # sweeps them without touching the live formula layer.
        for i in range(FORMULA_POOL_NODE_LIMIT + 1):
            old_pool.var(f"pad{i}")
        engine = context.engine_for(probtree)
        assert context.formula_pool is old_pool
        assert engine.pool is old_pool
        assert old_pool.node_count() <= FORMULA_POOL_NODE_LIMIT
        assert context.stats.pool_gc_runs == 1
        assert context.stats.pool_nodes_swept > FORMULA_POOL_NODE_LIMIT
        assert context.stats.pool_restarts == 0
        # Pricing stays correct after the compaction remapped the memos.
        assert boolean_probability(query, probtree, context=context) == (
            pytest.approx(baseline)
        )

    def test_fully_live_pool_still_restarts_wholesale(self):
        # When GC cannot reclaim enough (every node reachable from a Shannon
        # memo), the atomic restart remains the backstop.
        context = ExecutionContext(formula_pool_node_limit=64)
        warehouse = ProbXMLWarehouse("catalog", context=context)
        for _ in range(16):
            warehouse.insert("/catalog", tree("movie", "title"), confidence=0.8)
        probtree = warehouse.probtree
        query = parse_path("/catalog/movie")
        baseline = boolean_probability(query, probtree, context=context)
        old_pool = context.formula_pool
        engine = context.engine_for(probtree)
        # Every priced conjunction lands in the engine's Shannon memo: the
        # whole pool becomes live roots no sweep can reclaim.
        events = sorted(probtree.distribution.events())
        for i, first in enumerate(events):
            for second in events[i + 1 :]:
                engine.probability(
                    old_pool.conj([old_pool.var(first), old_pool.var(second)])
                )
        assert old_pool.node_count() > 64
        assert context.engine_for(probtree).pool is not old_pool
        assert context.formula_pool is not old_pool
        assert context.stats.pool_restarts >= 1
        assert context.stats.pool_gc_runs >= 1
        # Pricing stays correct after the cold restart.
        assert boolean_probability(query, probtree, context=context) == (
            pytest.approx(baseline)
        )

    def test_sat_only_workloads_enforce_the_bound_too(self):
        # dtd_satisfiable / dtd_valid never call engine_for; the bound must
        # trigger through validity_formula_for instead.
        from repro.core.context import FORMULA_POOL_NODE_LIMIT
        from repro.dtd.dtd import DTD, ChildConstraint
        from repro.dtd.probtree_dtd import dtd_satisfiable, dtd_valid

        context = ExecutionContext()
        warehouse = ProbXMLWarehouse("catalog", context=context)
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.8)
        probtree = warehouse.probtree
        dtd = DTD({"catalog": [ChildConstraint.optional("movie")]})
        assert dtd_satisfiable(probtree, dtd, context=context)
        old_pool = context.formula_pool
        for i in range(FORMULA_POOL_NODE_LIMIT + 1):
            old_pool.var(f"pad{i}")
        assert dtd_satisfiable(probtree, dtd, context=context)
        # The pads were unreachable: swept in place, compiled formula kept.
        assert context.formula_pool is old_pool
        assert old_pool.node_count() <= FORMULA_POOL_NODE_LIMIT
        assert context.stats.pool_gc_runs == 1
        assert context.stats.pool_restarts == 0
        # Decisions after the sweep agree with the enumerate oracle.
        assert dtd_valid(probtree, dtd, context=context) == dtd_valid(
            probtree, dtd, engine="enumerate"
        )

    def test_explicit_gc_reclaims_dropped_documents(self):
        context = ExecutionContext()
        warehouse = ProbXMLWarehouse(context=context)
        warehouse.add_document("a", tree("catalog", "movie"))
        warehouse.insert("/catalog", tree("movie", "title"), confidence=0.5, name="a")
        warehouse.probability("/catalog/movie", name="a")
        grown = context.formula_pool.node_count()
        warehouse.drop("a")
        import gc

        gc.collect()  # release the weak engine registry entry
        swept = context.gc_formula_pool()
        assert swept > 0
        assert context.formula_pool.node_count() < grown
        assert context.stats.pool_nodes_swept == swept


class TestContextStatsType:
    def test_as_dict_covers_all_slots(self):
        stats = ContextStats()
        assert set(stats.as_dict()) == set(ContextStats.__slots__)
