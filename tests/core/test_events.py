"""Tests for probability distributions and the event factory."""

import pytest

from repro.core.events import EventFactory, ProbabilityDistribution
from repro.utils.errors import InvalidProbabilityError


class TestProbabilityDistribution:
    def test_empty_distribution(self):
        distribution = ProbabilityDistribution.empty()
        assert len(distribution) == 0
        assert distribution.events() == set()

    def test_lookup_and_contains(self):
        distribution = ProbabilityDistribution({"w1": 0.8, "w2": 0.7})
        assert distribution["w1"] == pytest.approx(0.8)
        assert "w2" in distribution
        assert "w3" not in distribution
        assert distribution.get("w3") is None

    def test_zero_probability_rejected(self):
        # The paper's convention: probabilities lie in ]0; 1].
        with pytest.raises(InvalidProbabilityError):
            ProbabilityDistribution({"w": 0.0})

    def test_probability_above_one_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            ProbabilityDistribution({"w": 1.5})

    def test_probability_one_allowed(self):
        assert ProbabilityDistribution({"w": 1.0})["w"] == 1.0

    def test_uniform(self):
        distribution = ProbabilityDistribution.uniform(["a", "b"], 0.25)
        assert distribution["a"] == distribution["b"] == 0.25

    def test_with_event_is_persistent(self):
        base = ProbabilityDistribution({"w1": 0.5})
        extended = base.with_event("w2", 0.6)
        assert "w2" not in base
        assert extended["w2"] == 0.6
        assert extended["w1"] == 0.5

    def test_without_event_and_restriction(self):
        distribution = ProbabilityDistribution({"a": 0.1, "b": 0.2, "c": 0.3})
        assert distribution.without_event("b").events() == {"a", "c"}
        assert distribution.restricted_to(["a", "z"]).events() == {"a"}

    def test_world_probability(self):
        distribution = ProbabilityDistribution({"w1": 0.8, "w2": 0.7})
        assert distribution.world_probability({"w1"}) == pytest.approx(0.8 * 0.3)
        assert distribution.world_probability(set()) == pytest.approx(0.2 * 0.3)
        assert distribution.world_probability({"w1", "w2"}) == pytest.approx(0.56)

    def test_world_probability_over_subset(self):
        distribution = ProbabilityDistribution({"w1": 0.8, "w2": 0.7})
        assert distribution.world_probability({"w1"}, over={"w1"}) == pytest.approx(0.8)

    def test_world_probability_unknown_event(self):
        distribution = ProbabilityDistribution({"w1": 0.8})
        with pytest.raises(KeyError):
            distribution.world_probability({"zzz"})

    def test_world_probabilities_sum_to_one(self):
        distribution = ProbabilityDistribution({"a": 0.3, "b": 0.6, "c": 0.9})
        from repro.formulas.literals import all_worlds

        total = sum(distribution.world_probability(world) for world in all_worlds(["a", "b", "c"]))
        assert total == pytest.approx(1.0)

    def test_equality_and_hash(self):
        left = ProbabilityDistribution({"a": 0.5})
        right = ProbabilityDistribution({"a": 0.5})
        assert left == right
        assert hash(left) == hash(right)


class TestEventFactory:
    def test_fresh_names_are_unique(self):
        factory = EventFactory()
        names = {factory.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_reserved_names_are_avoided(self):
        factory = EventFactory(prefix="w", reserved={"w1", "w2"})
        assert factory.fresh() == "w3"

    def test_reserve_after_construction(self):
        factory = EventFactory(prefix="u")
        factory.reserve(["u1"])
        assert factory.fresh() == "u2"

    def test_custom_prefix(self):
        factory = EventFactory(prefix="update_")
        assert factory.fresh().startswith("update_")
