"""Tests for the cleaning pass (Section 3)."""

from hypothesis import given, settings

from repro.core.cleaning import clean, is_clean
from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.formulas.literals import Condition
from repro.trees.datatree import DataTree

from tests.conftest import small_probtrees


def _chain_probtree(conditions_by_level):
    """A chain A/B/C/... with the provided conditions from the top child down."""
    tree = DataTree("N0")
    distribution = {}
    probtree_conditions = {}
    parent = tree.root
    for index, condition in enumerate(conditions_by_level, start=1):
        node = tree.add_child(parent, f"N{index}")
        if condition is not None:
            probtree_conditions[node] = condition
            for event in condition.events():
                distribution.setdefault(event, 0.5)
        parent = node
    return ProbTree(tree, ProbabilityDistribution(distribution), probtree_conditions)


class TestSuperfluousConditions:
    def test_inherited_literal_is_dropped(self):
        probtree = _chain_probtree([Condition.of("w1"), Condition.of("w1", "w2")])
        cleaned = clean(probtree)
        deep_node = [n for n in cleaned.tree.nodes() if cleaned.tree.label(n) == "N2"][0]
        assert cleaned.condition(deep_node) == Condition.of("w2")

    def test_duplicate_deep_inheritance(self):
        probtree = _chain_probtree(
            [Condition.of("w1"), Condition.of("w2"), Condition.of("w1", "w2", "w3")]
        )
        cleaned = clean(probtree)
        deepest = [n for n in cleaned.tree.nodes() if cleaned.tree.label(n) == "N3"][0]
        assert cleaned.condition(deepest) == Condition.of("w3")


class TestInconsistentConditions:
    def test_intrinsically_inconsistent_node_is_pruned(self):
        probtree = _chain_probtree([Condition.of("w1", "not w1")])
        cleaned = clean(probtree)
        assert cleaned.tree.node_count() == 1

    def test_contradiction_with_ancestor_prunes_subtree(self):
        probtree = _chain_probtree(
            [Condition.of("w1"), Condition.of("not w1"), Condition.of("w2")]
        )
        cleaned = clean(probtree)
        labels = {cleaned.tree.label(n) for n in cleaned.tree.nodes()}
        assert labels == {"N0", "N1"}


class TestIdempotenceAndSemantics:
    def test_clean_tree_is_detected(self, figure1):
        assert is_clean(figure1)
        assert is_clean(clean(figure1))

    def test_dirty_tree_is_detected(self):
        probtree = _chain_probtree([Condition.of("w1"), Condition.of("w1")])
        assert not is_clean(probtree)
        assert is_clean(clean(probtree))

    @given(small_probtrees())
    @settings(max_examples=30)
    def test_cleaning_preserves_possible_worlds(self, probtree):
        cleaned = clean(probtree)
        assert possible_worlds(probtree, normalize=True).isomorphic(
            possible_worlds(cleaned, normalize=True)
        )

    @given(small_probtrees())
    @settings(max_examples=30)
    def test_cleaning_is_idempotent(self, probtree):
        cleaned = clean(probtree)
        assert is_clean(cleaned)
        twice = clean(cleaned)
        assert possible_worlds(cleaned, normalize=True).isomorphic(
            possible_worlds(twice, normalize=True)
        )
        assert twice.size() == cleaned.size()

    @given(small_probtrees())
    @settings(max_examples=30)
    def test_cleaning_never_grows_the_tree(self, probtree):
        assert clean(probtree).size() <= probtree.size()
