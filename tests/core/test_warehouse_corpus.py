"""Tests for the multi-document warehouse corpus API."""

import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import DEFAULT_DOCUMENT, ProbXMLWarehouse
from repro.core.probtree import ProbTree
from repro.trees.builders import tree
from repro.trees.datatree import DataTree
from repro.utils.errors import ProbXMLError
from repro.xmlio.serialize import datatree_to_xml, probtree_to_xml


def _movie_doc(title: str, confidence: float) -> ProbXMLWarehouse:
    warehouse = ProbXMLWarehouse("catalog")
    warehouse.insert("/catalog", tree("movie", tree("title", title)), confidence=confidence)
    return warehouse


class TestCorpusManagement:
    def test_single_document_construction_is_implicitly_default(self):
        warehouse = ProbXMLWarehouse("catalog")
        assert warehouse.names() == (DEFAULT_DOCUMENT,)
        assert len(warehouse) == 1
        assert DEFAULT_DOCUMENT in warehouse
        assert warehouse.document.root_label == "catalog"

    def test_empty_construction_then_add(self):
        warehouse = ProbXMLWarehouse()
        assert warehouse.names() == ()
        warehouse.add_document("a", "alpha")
        warehouse.add_document("b", DataTree("beta"))
        assert warehouse.names() == ("a", "b")
        assert warehouse.get("a").tree.root_label == "alpha"
        assert warehouse.get("b").tree.root_label == "beta"

    def test_add_existing_name_raises(self):
        warehouse = ProbXMLWarehouse("catalog")
        with pytest.raises(ProbXMLError, match="already exists"):
            warehouse.add_document(DEFAULT_DOCUMENT, "other")

    def test_duplicate_error_names_both_remedies(self):
        warehouse = ProbXMLWarehouse()
        warehouse.add_document("a", "alpha")
        with pytest.raises(ProbXMLError, match="replace=True"):
            warehouse.add_document("a", "other")
        # The failed add must not have clobbered the original.
        assert warehouse.get("a").tree.root_label == "alpha"

    def test_replace_overwrites_deliberately(self):
        warehouse = ProbXMLWarehouse()
        warehouse.add_document("a", "alpha")
        stored = warehouse.add_document("a", "omega", replace=True)
        assert stored.tree.root_label == "omega"
        assert warehouse.get("a").tree.root_label == "omega"
        assert warehouse.names() == ("a",)

    def test_replace_on_a_fresh_name_is_a_plain_add(self):
        warehouse = ProbXMLWarehouse()
        warehouse.add_document("a", "alpha", replace=True)
        assert warehouse.names() == ("a",)

    def test_drop(self):
        warehouse = ProbXMLWarehouse()
        warehouse.add_document("a", "alpha")
        dropped = warehouse.drop("a")
        assert isinstance(dropped, ProbTree)
        assert warehouse.names() == ()
        with pytest.raises(ProbXMLError, match="no document"):
            warehouse.drop("a")

    def test_name_resolution(self):
        warehouse = ProbXMLWarehouse()
        with pytest.raises(ProbXMLError, match="no documents"):
            warehouse.probtree
        warehouse.add_document("only", "alpha")
        # A single document resolves without a name even if not "default".
        assert warehouse.probtree.tree.root_label == "alpha"
        warehouse.add_document("second", "beta")
        with pytest.raises(ProbXMLError, match="pass name="):
            warehouse.probtree
        assert warehouse.get("second").tree.root_label == "beta"
        with pytest.raises(ProbXMLError, match="no document named"):
            warehouse.get("missing")

    def test_repr_mentions_corpus_size(self):
        warehouse = ProbXMLWarehouse()
        warehouse.add_document("a", "alpha")
        warehouse.add_document("b", "beta")
        assert "documents=2" in repr(warehouse)


class TestXMLStringConstruction:
    """Satellite: markup-looking strings are parsed, not turned into labels."""

    def test_node_markup_is_parsed(self):
        doc = tree("catalog", tree("movie", tree("title", "Solaris")))
        warehouse = ProbXMLWarehouse(datatree_to_xml(doc))
        assert warehouse.document.root_label == "catalog"
        assert warehouse.document.node_count() == 4

    def test_probtree_markup_is_parsed_with_events(self):
        source = _movie_doc("Solaris", 0.8).probtree
        warehouse = ProbXMLWarehouse(probtree_to_xml(source))
        assert warehouse.event_count() == 1
        assert warehouse.probability("/catalog/movie") == pytest.approx(0.8)

    def test_markup_with_leading_whitespace_is_parsed(self):
        doc = tree("catalog", tree("movie"))
        warehouse = ProbXMLWarehouse("\n  " + datatree_to_xml(doc))
        assert warehouse.document.node_count() == 2

    def test_plain_label_still_means_one_node_document(self):
        warehouse = ProbXMLWarehouse("catalog")
        assert warehouse.document.node_count() == 1
        assert warehouse.document.root_label == "catalog"

    def test_malformed_markup_raises_library_error(self):
        # A '<'-leading non-XML string raises within the library's own error
        # hierarchy (never a bare ElementTree.ParseError), with a hint.
        with pytest.raises(ProbXMLError, match="not well-formed XML"):
            ProbXMLWarehouse("<not really xml")
        with pytest.raises(ProbXMLError, match="plain label"):
            ProbXMLWarehouse("<3 movies")


class TestCorpusQueries:
    def _corpus(self) -> ProbXMLWarehouse:
        warehouse = ProbXMLWarehouse()
        warehouse.add_document("left", _movie_doc("Solaris", 0.8).probtree)
        warehouse.add_document("right", _movie_doc("Stalker", 0.6).probtree)
        return warehouse

    def test_query_all_matches_per_document_loops(self):
        warehouse = self._corpus()
        fanned = warehouse.query_all("/catalog/movie/title")
        assert set(fanned) == {"left", "right"}
        for name in warehouse.names():
            looped = warehouse.query("/catalog/movie/title", name=name)
            assert [a.probability for a in fanned[name]] == pytest.approx(
                [a.probability for a in looped]
            )

    def test_probability_all(self):
        warehouse = self._corpus()
        assert warehouse.probability_all("/catalog/movie") == pytest.approx(
            {"left": 0.8, "right": 0.6}
        )

    def test_query_all_shares_one_context(self):
        warehouse = self._corpus()
        warehouse.query_all("/catalog/movie")
        misses = warehouse.stats.answer_cache_misses
        assert misses == 2  # one per document
        warehouse.query_all("/catalog/movie")
        assert warehouse.stats.answer_cache_hits == 2
        assert warehouse.stats.answer_cache_misses == misses

    def test_per_name_updates_are_isolated(self):
        warehouse = self._corpus()
        warehouse.insert(
            "/catalog", tree("movie", tree("title", "Mirror")), confidence=0.9, name="left"
        )
        assert len(warehouse.query("/catalog/movie", name="left")) == 2
        assert len(warehouse.query("/catalog/movie", name="right")) == 1

    def test_maintenance_targets_one_document(self):
        warehouse = self._corpus()
        warehouse.prune_below(0.5, name="right")
        assert warehouse.possible_worlds(name="right").total_probability() == pytest.approx(1.0)
        assert warehouse.probability("/catalog/movie", name="left") == pytest.approx(0.8)

    def test_query_many_still_batches_per_document(self):
        warehouse = self._corpus()
        batched = warehouse.query_many(
            ["/catalog/movie", "/catalog/movie/title"], name="left"
        )
        assert [len(answers) for answers in batched] == [1, 1]

    def test_shared_context_construction(self):
        session = ExecutionContext(matcher="auto")
        warehouse = ProbXMLWarehouse("catalog", context=session)
        assert warehouse.context.shares_caches_with(session)
        assert warehouse.matcher == "auto"
        # Legacy string kwargs override the supplied context's modes but
        # keep its caches.
        other = ProbXMLWarehouse("catalog", context=session, matcher="naive")
        assert other.matcher == "naive"
        assert other.context.shares_caches_with(session)

    def test_context_setter_type_checked(self):
        warehouse = ProbXMLWarehouse("catalog")
        with pytest.raises(TypeError):
            warehouse.context = "nope"
        warehouse.context = ExecutionContext(engine="enumerate")
        assert warehouse.engine == "enumerate"
