"""Concurrent interleaving harness: every read matches *some* committed version.

Reader threads hammer a shared warehouse while a writer commits a seeded
update sequence.  After the threads join, an oracle (a fresh context per
version, over the committed prob-tree chain the writer recorded) computes the
answer digest of every committed version; the harness asserts each digest a
reader observed equals the oracle's digest at some committed version — i.e.
snapshot isolation never exposes a torn or intermediate state.  A global-lock
warehouse (``isolation="lock"``) runs the same schedule as the serialized
baseline the MVCC mode must agree with.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import ProbXMLWarehouse
from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.queries.evaluation import evaluate_on_probtree
from repro.queries.treepattern import TreePattern
from repro.trees.datatree import DataTree
from repro.trees.isomorphism import canonical_encoding
from repro.workloads.random_queries import random_update

READERS = 3
UPDATES = 12
JOIN_TIMEOUT = 30.0


def _base_probtree() -> ProbTree:
    tree = DataTree("A")
    b = tree.add_child(tree.root, "B")
    tree.add_child(b, "C")
    tree.add_child(tree.root, "B")
    return ProbTree(tree, ProbabilityDistribution({"w0": 0.5}), {})


def _query() -> TreePattern:
    pattern = TreePattern("A")
    pattern.add_child(pattern.root, "B")
    return pattern


def _digest(answers) -> frozenset:
    return frozenset(
        (canonical_encoding(answer.tree), round(answer.probability, 9))
        for answer in answers
    )


def _run_schedule(isolation: str, seed: int):
    """Readers vs. one writer; returns (observed digests, committed digests)."""
    warehouse = ProbXMLWarehouse(_base_probtree(), isolation=isolation)
    query = _query()
    rng = random.Random(seed)

    commit_lock = threading.Lock()
    committed = [warehouse.get()]  # version 0
    done = threading.Event()
    observed = [set() for _ in range(READERS)]
    errors = []

    def reader(slot: int) -> None:
        try:
            while not done.is_set():
                observed[slot].add(_digest(warehouse.query(query)))
            observed[slot].add(_digest(warehouse.query(query)))  # one final read
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(("reader", slot, exc))

    def writer() -> None:
        try:
            for _ in range(UPDATES):
                update = random_update(warehouse.get().tree, seed=rng)
                warehouse.apply(update)
                with commit_lock:
                    committed.append(warehouse.get())
        except BaseException as exc:  # noqa: BLE001
            errors.append(("writer", None, exc))
        finally:
            done.set()

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(READERS)
    ]
    threads.append(threading.Thread(target=writer, daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
        assert not thread.is_alive(), "thread still running: probable hung lock"

    assert errors == []
    assert len(committed) == UPDATES + 1

    # Oracle: a fresh context per committed version — no shared-cache help.
    oracle = {
        _digest(evaluate_on_probtree(query, version, context=ExecutionContext()))
        for version in committed
    }
    seen = set().union(*observed)
    return seen, oracle


@pytest.mark.concurrency
@pytest.mark.differential
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_snapshot_reads_match_committed_versions(seed):
    seen, oracle = _run_schedule("snapshot", 31337 + seed)
    torn = seen - oracle
    assert not torn, f"reads observed states never committed: {len(torn)} digests"


@pytest.mark.concurrency
@pytest.mark.differential
def test_lock_reads_match_committed_versions():
    seen, oracle = _run_schedule("lock", 99)
    assert seen <= oracle


@pytest.mark.concurrency
def test_pinned_snapshot_survives_concurrent_commits():
    warehouse = ProbXMLWarehouse(_base_probtree())
    query = _query()
    baseline = _digest(warehouse.query(query))
    snap = warehouse.read_snapshot()
    rng = random.Random(7)

    def writer() -> None:
        for _ in range(6):
            warehouse.apply(random_update(warehouse.get().tree, seed=rng))

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    thread.join(JOIN_TIMEOUT)
    assert not thread.is_alive()

    # The pin still answers exactly like the version it captured.
    pinned = _digest(
        evaluate_on_probtree(query, snap.probtree, context=ExecutionContext())
    )
    assert pinned == baseline
    snap.release()
