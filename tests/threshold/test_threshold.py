"""Tests for threshold restriction (Theorem 4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantics import possible_worlds
from repro.threshold.constructions import theorem4_instance, theorem4_probtree
from repro.threshold.threshold import (
    most_probable_worlds,
    threshold_probtree,
    threshold_worlds,
)
from repro.trees.builders import tree
from repro.trees.isomorphism import isomorphic
from repro.utils.errors import InvalidProbabilityError

from tests.conftest import small_probtrees


class TestThresholdWorlds:
    def test_figure1_thresholds(self, figure1):
        assert len(threshold_worlds(figure1, 0.5)) == 1
        assert len(threshold_worlds(figure1, 0.2)) == 2
        assert len(threshold_worlds(figure1, 0.01)) == 3

    def test_threshold_bounds_validated(self, figure1):
        with pytest.raises(InvalidProbabilityError):
            threshold_worlds(figure1, 0.0)
        with pytest.raises(InvalidProbabilityError):
            threshold_worlds(figure1, 1.5)

    def test_threshold_of_one_keeps_certain_world_only(self):
        from repro.core.probtree import ProbTree

        certain = ProbTree.certain(tree("A", "B"))
        kept = threshold_worlds(certain, 1.0)
        assert len(kept) == 1


class TestThresholdProbTree:
    def test_lost_mass_goes_to_root_world(self, figure1):
        restricted = threshold_probtree(figure1, 0.5)
        worlds = possible_worlds(restricted, normalize=True)
        assert worlds.total_probability() == pytest.approx(1.0)
        assert worlds.probability_of(tree("A", tree("C", "D"))) == pytest.approx(0.7)
        assert worlds.probability_of(tree("A")) == pytest.approx(0.3)
        assert worlds.probability_of(tree("A", "B")) == 0.0

    def test_sub_isomorphism_contract(self, figure1):
        # ⟦T⟧≥p ∼sub ⟦T'⟧ per Definition 3.
        kept = threshold_worlds(figure1, 0.2)
        restricted = threshold_probtree(figure1, 0.2)
        assert kept.sub_isomorphic(possible_worlds(restricted, normalize=True))

    def test_no_world_above_threshold_rejected(self, figure1):
        with pytest.raises(InvalidProbabilityError):
            threshold_probtree(figure1, 0.99)

    @given(small_probtrees(), st.sampled_from([0.1, 0.25, 0.5]))
    @settings(max_examples=25, deadline=None)
    def test_restriction_preserves_kept_worlds(self, probtree, threshold):
        kept = threshold_worlds(probtree, threshold)
        if len(kept) == 0:
            return
        restricted = threshold_probtree(probtree, threshold)
        result = possible_worlds(restricted, normalize=True)
        for world, probability in kept:
            if world.node_count() == 1:
                continue  # root-only worlds merge with the lost-mass world
            assert result.probability_of(world) == pytest.approx(probability, abs=1e-6)


class TestMostProbableWorlds:
    def test_figure1_ranking(self, figure1):
        ranked = most_probable_worlds(figure1, 2)
        assert len(ranked) == 2
        assert ranked[0][1] == pytest.approx(0.7)
        assert isomorphic(ranked[0][0], tree("A", tree("C", "D")))
        assert ranked[1][1] == pytest.approx(0.24)


class TestTheorem4Construction:
    def test_probtree_shape(self):
        probtree = theorem4_probtree(3)
        assert probtree.tree.node_count() == 7
        assert len(probtree.events()) == 6
        assert probtree.literal_count() == 6

    def test_world_count_explodes_above_threshold(self):
        probtree, threshold = theorem4_instance(3)
        kept = threshold_worlds(probtree, threshold)
        # all worlds with at most n = 3 children present are kept
        expected = sum(math.comb(6, k) for k in range(0, 4))
        assert len(kept) == expected

    def test_restricted_probtree_is_much_larger(self):
        probtree, threshold = theorem4_instance(2)
        restricted = threshold_probtree(probtree, threshold)
        assert restricted.size() > probtree.size() * 2
