"""Edge cases for XML serialization: awkward labels and large documents."""

import pytest

from repro.core.engine import ProbXMLWarehouse
from repro.core.semantics import possible_worlds
from repro.trees.builders import tree
from repro.trees.isomorphism import isomorphic
from repro.workloads.random_probtrees import random_probtree
from repro.xmlio.parse import datatree_from_xml, probtree_from_xml
from repro.xmlio.serialize import datatree_to_xml, probtree_to_xml


class TestAwkwardLabels:
    @pytest.mark.parametrize(
        "label",
        [
            "with space",
            "quote\"inside",
            "apostrophe'inside",
            "ampersand&co",
            "less<than",
            "ünïcodé-标签",
            "",
        ],
    )
    def test_labels_survive_round_trip(self, label):
        document = tree("root", tree(label, "leaf"))
        rebuilt = datatree_from_xml(datatree_to_xml(document))
        assert isomorphic(document, rebuilt)

    def test_condition_rendering_round_trips_negation(self, figure1):
        rebuilt = probtree_from_xml(probtree_to_xml(figure1))
        node_b = next(iter(rebuilt.tree.nodes_with_label("B")))
        assert str(rebuilt.condition(node_b)) == "not w2 and w1" or str(
            rebuilt.condition(node_b)
        ) == "w1 and not w2"


class TestLargerDocuments:
    def test_thousand_node_round_trip(self):
        probtree = random_probtree(node_count=1000, event_count=20, seed=99)
        text = probtree_to_xml(probtree, pretty=False)
        rebuilt = probtree_from_xml(text)
        assert rebuilt.tree.node_count() == 1000
        assert rebuilt.literal_count() == probtree.literal_count()
        assert rebuilt.distribution == probtree.distribution

    def test_warehouse_round_trip_preserves_query_results(self):
        warehouse = ProbXMLWarehouse("w")
        warehouse.insert("/w", tree("item", tree("name", "a & b <c>")), confidence=0.5)
        text = probtree_to_xml(warehouse.probtree)
        reloaded = ProbXMLWarehouse(probtree_from_xml(text))
        assert possible_worlds(reloaded.probtree).isomorphic(
            possible_worlds(warehouse.probtree)
        )
