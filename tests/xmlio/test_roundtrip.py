"""Tests for XML serialization and parsing."""

import pytest
from hypothesis import given, settings

from repro.core.semantics import possible_worlds
from repro.trees.builders import tree
from repro.trees.isomorphism import isomorphic
from repro.utils.errors import InvalidTreeError
from repro.xmlio.parse import datatree_from_xml, probtree_from_xml
from repro.xmlio.serialize import datatree_to_xml, probtree_to_xml

from tests.conftest import small_datatrees, small_probtrees


class TestDataTreeRoundTrip:
    def test_simple_tree(self):
        document = tree("catalog", tree("movie", "title"), "source")
        text = datatree_to_xml(document)
        assert "<node" in text and 'label="movie"' in text
        rebuilt = datatree_from_xml(text)
        assert isomorphic(document, rebuilt)

    def test_compact_rendering(self):
        document = tree("A", "B")
        compact = datatree_to_xml(document, pretty=False)
        assert "\n" not in compact
        assert isomorphic(datatree_from_xml(compact), document)

    def test_wrong_root_element_rejected(self):
        with pytest.raises(InvalidTreeError):
            datatree_from_xml("<document label='A'/>")

    @given(small_datatrees())
    @settings(max_examples=30)
    def test_round_trip_preserves_isomorphism_class(self, document):
        rebuilt = datatree_from_xml(datatree_to_xml(document))
        assert isomorphic(document, rebuilt)


class TestProbTreeRoundTrip:
    def test_figure1(self, figure1):
        text = probtree_to_xml(figure1)
        assert 'name="w1"' in text and 'condition="w1 and not w2"' in text
        rebuilt = probtree_from_xml(text)
        assert rebuilt.distribution.as_dict() == figure1.distribution.as_dict()
        assert possible_worlds(rebuilt, normalize=True).isomorphic(
            possible_worlds(figure1, normalize=True)
        )

    def test_missing_tree_rejected(self):
        with pytest.raises(InvalidTreeError):
            probtree_from_xml("<probtree><events/></probtree>")

    def test_wrong_root_element_rejected(self):
        with pytest.raises(InvalidTreeError):
            probtree_from_xml("<node label='A'/>")

    def test_malformed_event_rejected(self):
        with pytest.raises(InvalidTreeError):
            probtree_from_xml(
                "<probtree><events><event name='w1'/></events><node label='A'/></probtree>"
            )

    @given(small_probtrees())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_semantics(self, probtree):
        rebuilt = probtree_from_xml(probtree_to_xml(probtree))
        assert possible_worlds(rebuilt, normalize=True).isomorphic(
            possible_worlds(probtree, normalize=True)
        )
        assert rebuilt.distribution.as_dict() == pytest.approx(
            probtree.distribution.as_dict()
        )
