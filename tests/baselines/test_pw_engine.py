"""Tests for the explicit possible-worlds baseline engine."""

import pytest

from repro.baselines.pw_engine import PossibleWorldsEngine
from repro.core.engine import ProbXMLWarehouse
from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD, ChildConstraint
from repro.queries.evaluation import answers_isomorphic
from repro.queries.path import parse_path
from repro.trees.builders import tree
from repro.workloads.scenarios import HiddenWebScenario


class TestBasics:
    def test_starts_with_one_certain_world(self):
        engine = PossibleWorldsEngine(tree("A", "B"))
        assert engine.world_count() == 1
        assert engine.size() == 2
        assert engine.worlds.total_probability() == pytest.approx(1.0)

    def test_from_pwset(self, figure1):
        engine = PossibleWorldsEngine.from_pwset(possible_worlds(figure1))
        assert engine.world_count() == 3

    def test_query_and_boolean_probability(self, figure1):
        engine = PossibleWorldsEngine.from_pwset(possible_worlds(figure1))
        answers = engine.query(parse_path("/A/C/D"))
        assert len(answers) == 1
        assert answers[0].probability == pytest.approx(0.7)
        assert engine.boolean_probability(parse_path("/A/B")) == pytest.approx(0.24)

    def test_prune_and_most_probable(self, figure1):
        engine = PossibleWorldsEngine.from_pwset(possible_worlds(figure1))
        assert engine.most_probable(1)[0][1] == pytest.approx(0.7)
        engine.prune_below(0.5)
        assert engine.world_count() == 1

    def test_dtd_operations(self, figure1):
        engine = PossibleWorldsEngine.from_pwset(possible_worlds(figure1))
        no_b = DTD({"A": [ChildConstraint.forbidden("B"), ChildConstraint.any_number("C")]})
        assert engine.dtd_satisfiable(no_b)
        assert not engine.dtd_valid(no_b)
        engine.dtd_restrict(no_b)
        assert engine.worlds.total_probability() == pytest.approx(0.76)


class TestAgreementWithProbTreeEngine:
    """E14: the factorized engine and the explicit baseline agree."""

    def test_scenario_replay_matches(self):
        scenario = HiddenWebScenario(source_count=2, event_count=8, seed=4)
        warehouse = ProbXMLWarehouse(scenario.initial_document())
        baseline = PossibleWorldsEngine(scenario.initial_document())

        for event in scenario.events():
            warehouse.apply(event.update)
            baseline.apply(event.update)

        assert warehouse.possible_worlds().isomorphic(baseline.worlds)
        for _description, query in scenario.queries():
            assert answers_isomorphic(warehouse.query(query), baseline.query(query))
            assert warehouse.probability(query) == pytest.approx(
                baseline.boolean_probability(query)
            )

    def test_baseline_state_is_larger_on_factorizable_workloads(self):
        scenario = HiddenWebScenario(source_count=3, event_count=10, deletion_ratio=0.0, seed=6)
        warehouse = ProbXMLWarehouse(scenario.initial_document())
        baseline = PossibleWorldsEngine(scenario.initial_document())
        for event in scenario.events():
            warehouse.apply(event.update)
            baseline.apply(event.update)
        assert baseline.size() > warehouse.size()
