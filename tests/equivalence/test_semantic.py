"""Tests for semantic equivalence and Proposition 4."""

from hypothesis import given, settings

from repro.core.events import ProbabilityDistribution
from repro.equivalence.semantic import (
    semantically_equivalent,
    semantically_equivalent_under,
)
from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.formulas.literals import Condition
from repro.trees.datatree import DataTree
from repro.core.probtree import ProbTree

from tests.conftest import small_probtrees
from tests.equivalence.test_structural import _probtree


def _section5_pair():
    """The paper's example: B[w1∧w2] vs B[w3] with π(w3) = π(w1)·π(w2)."""
    left_tree = DataTree("A")
    left_b = left_tree.add_child(left_tree.root, "B")
    left = ProbTree(
        left_tree,
        ProbabilityDistribution({"w1": 0.6, "w2": 0.5, "w3": 0.3}),
        {left_b: Condition.of("w1", "w2")},
    )
    right_tree = DataTree("A")
    right_b = right_tree.add_child(right_tree.root, "B")
    right = ProbTree(
        right_tree,
        ProbabilityDistribution({"w1": 0.6, "w2": 0.5, "w3": 0.3}),
        {right_b: Condition.of("w3")},
    )
    return left, right


class TestSection5Example:
    def test_semantically_but_not_structurally_equivalent(self):
        left, right = _section5_pair()
        assert semantically_equivalent(left, right)
        assert not structurally_equivalent_exhaustive(left, right)

    def test_semantic_equivalence_breaks_under_other_distributions(self):
        left, right = _section5_pair()
        skewed = ProbabilityDistribution({"w1": 0.9, "w2": 0.9, "w3": 0.3})
        assert not semantically_equivalent_under(left, right, skewed)


class TestProposition4:
    @given(small_probtrees(), small_probtrees())
    @settings(max_examples=25, deadline=None)
    def test_structural_implies_semantic(self, left, right):
        # Proposition 4 compares prob-trees over the same events *and the
        # same probability assignment*, so align the distributions first.
        right = right.with_distribution(left.distribution)
        if structurally_equivalent_exhaustive(left, right):
            assert semantically_equivalent(left, right)

    @given(small_probtrees())
    @settings(max_examples=20, deadline=None)
    def test_structural_equivalence_survives_distribution_swap(self, probtree):
        # Structurally equivalent trees stay semantically equivalent under
        # *any* probability assignment (Proposition 4(ii), one direction).
        other = probtree.copy()
        swapped = ProbabilityDistribution(
            {event: 0.123 for event in probtree.distribution.events()}
        )
        assert semantically_equivalent_under(probtree, other, swapped)


class TestDifferentEventSets:
    def test_trees_over_disjoint_events_can_be_equivalent(self):
        left = _probtree([("B", Condition.of("w1"))], probabilities={"w1": 0.4})
        right_tree = DataTree("A")
        right_b = right_tree.add_child(right_tree.root, "B")
        right = ProbTree(
            right_tree, ProbabilityDistribution({"u": 0.4}), {right_b: Condition.of("u")}
        )
        assert semantically_equivalent(left, right)

    def test_probability_mismatch_is_detected(self):
        left = _probtree([("B", Condition.of("w1"))], probabilities={"w1": 0.4})
        right = _probtree([("B", Condition.of("w1"))], probabilities={"w1": 0.5})
        assert not semantically_equivalent(left, right)
