"""Tests for the Figure 3 randomized equivalence algorithm (Theorem 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleaning import clean
from repro.equivalence.randomized import (
    RandomizedEquivalenceParameters,
    structurally_equivalent_randomized,
)
from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.workloads.constructions import figure1_probtree, wide_independent_probtree

from tests.conftest import small_probtrees
from tests.equivalence.test_structural import _probtree
from repro.formulas.literals import Condition


class TestParameters:
    def test_parameters_scale_with_size(self):
        small = figure1_probtree()
        large = wide_independent_probtree(30)
        small_params = RandomizedEquivalenceParameters.for_trees(small, small)
        large_params = RandomizedEquivalenceParameters.for_trees(large, large)
        assert large_params.sample_size > small_params.sample_size
        assert small_params.trials >= 1

    def test_lower_target_error_needs_larger_samples(self):
        probtree = figure1_probtree()
        loose = RandomizedEquivalenceParameters.for_trees(probtree, probtree, target_error=0.5)
        tight = RandomizedEquivalenceParameters.for_trees(probtree, probtree, target_error=0.01)
        assert tight.sample_size >= loose.sample_size


class TestKnownCases:
    def test_equivalent_pairs_always_accepted(self):
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree(
            [("B", Condition.of("w1", "w2")), ("B", Condition.of("w1", "not w2"))]
        )
        for seed in range(10):
            assert structurally_equivalent_randomized(left, right, seed=seed)

    def test_count_difference_rejected(self):
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree([("B", Condition.of("w1")), ("B", Condition.of("w1"))])
        rejections = sum(
            0 if structurally_equivalent_randomized(left, right, seed=seed) else 1
            for seed in range(10)
        )
        assert rejections >= 5  # co-RP guarantee is 1/2; in practice it's 10/10

    def test_label_difference_rejected_deterministically(self, figure1):
        other = figure1.copy()
        node_b = next(iter(other.tree.nodes_with_label("B")))
        other.tree.set_label(node_b, "Z")
        assert not structurally_equivalent_randomized(figure1, other, seed=0)

    def test_unclean_inputs_are_cleaned_first(self):
        left = _probtree([("B", Condition.of("w1", "not w1"))])
        right = _probtree([], probabilities={"w1": 0.5})
        assert structurally_equivalent_randomized(left, right, seed=1)

    def test_pre_clean_can_be_disabled(self):
        left = _probtree([("B", Condition.of("w1"))])
        assert structurally_equivalent_randomized(left, left.copy(), seed=0, pre_clean=False)


class TestAgainstExhaustiveOracle:
    @given(small_probtrees(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_equivalent_inputs_never_rejected(self, probtree, seed):
        # One-sided error: on genuinely equivalent pairs the algorithm must
        # answer True (the pair below is equivalent by construction).
        variant = clean(probtree)
        assert structurally_equivalent_randomized(probtree, variant, seed=seed)

    @given(small_probtrees(), small_probtrees(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle_on_random_pairs(self, left, right, seed):
        exact = structurally_equivalent_exhaustive(left, right)
        randomized = structurally_equivalent_randomized(left, right, seed=seed)
        if exact:
            assert randomized
        else:
            # The randomized test may err towards True with probability < 1/2;
            # with the default (huge) sample sets a false accept is
            # practically impossible, so we assert the strict answer.
            assert not randomized
