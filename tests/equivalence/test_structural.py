"""Tests for exhaustive structural equivalence (Definition 9, Proposition 3)."""

from hypothesis import given, settings

from repro.core.cleaning import clean
from repro.core.events import ProbabilityDistribution
from repro.core.probtree import ProbTree
from repro.equivalence.structural import (
    counterexample_world,
    structurally_equivalent_exhaustive,
)
from repro.formulas.literals import Condition
from repro.trees.builders import tree
from repro.trees.datatree import DataTree
from repro.trees.isomorphism import isomorphic

from tests.conftest import small_probtrees


def _probtree(conditions_by_child, probabilities=None, root="A"):
    """Root with one child per (label, condition) pair."""
    data = DataTree(root)
    mapping = {}
    events = {}
    for label, condition in conditions_by_child:
        node = data.add_child(data.root, label)
        if condition is not None:
            mapping[node] = condition
            for event in condition.events():
                events.setdefault(event, 0.5)
    if probabilities:
        events.update(probabilities)
    return ProbTree(data, ProbabilityDistribution(events), mapping)


class TestBasicCases:
    def test_identical_trees_are_equivalent(self, figure1):
        assert structurally_equivalent_exhaustive(figure1, figure1.copy())

    def test_renaming_changes_equivalence(self, figure1):
        other = figure1.copy()
        node_b = next(iter(other.tree.nodes_with_label("B")))
        other.tree.set_label(node_b, "Z")
        assert not structurally_equivalent_exhaustive(figure1, other)

    def test_swapping_sibling_annotations_is_detected(self):
        left = _probtree([("B", Condition.of("w1")), ("C", Condition.of("w2"))])
        right = _probtree([("B", Condition.of("w2")), ("C", Condition.of("w1"))])
        assert not structurally_equivalent_exhaustive(left, right)

    def test_same_label_siblings_with_swapped_conditions_are_equivalent(self):
        left = _probtree([("B", Condition.of("w1")), ("B", Condition.of("w2"))])
        right = _probtree([("B", Condition.of("w2")), ("B", Condition.of("w1"))])
        assert structurally_equivalent_exhaustive(left, right)

    def test_splitting_a_condition_preserves_equivalence(self):
        # B[w1]  ≡struct  B[w1∧w2] + B[w1∧¬w2]  (count-preserving refinement)
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree(
            [("B", Condition.of("w1", "w2")), ("B", Condition.of("w1", "not w2"))]
        )
        assert structurally_equivalent_exhaustive(left, right)

    def test_duplicate_vs_single_child_not_equivalent(self):
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree([("B", Condition.of("w1")), ("B", Condition.of("w1"))])
        assert not structurally_equivalent_exhaustive(left, right)

    def test_inconsistent_condition_equals_missing_node(self):
        left = _probtree([("B", Condition.of("w1", "not w1"))])
        right = _probtree([], probabilities={"w1": 0.5})
        assert structurally_equivalent_exhaustive(left, right)

    def test_counterexample_world_is_a_real_counterexample(self):
        left = _probtree([("B", Condition.of("w1"))])
        right = _probtree([("B", Condition.of("w2"))])
        world = counterexample_world(left, right)
        assert world is not None
        assert not isomorphic(left.value_in_world(world), right.value_in_world(world))
        assert counterexample_world(left, left.copy()) is None


class TestProperties:
    @given(small_probtrees())
    @settings(max_examples=25, deadline=None)
    def test_reflexive_and_cleaning_invariant(self, probtree):
        assert structurally_equivalent_exhaustive(probtree, probtree.copy())
        assert structurally_equivalent_exhaustive(probtree, clean(probtree))

    @given(small_probtrees(), small_probtrees())
    @settings(max_examples=25, deadline=None)
    def test_symmetric(self, left, right):
        assert structurally_equivalent_exhaustive(
            left, right
        ) == structurally_equivalent_exhaustive(right, left)
