"""Tests for event independence and its interreduction with equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantics import possible_worlds
from repro.equivalence.independence import (
    condition_on,
    equivalence_via_independence,
    is_independent_of,
)
from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.formulas.literals import Condition
from repro.utils.errors import InvalidConditionError

from tests.conftest import small_probtrees
from tests.equivalence.test_structural import _probtree


class TestConditioning:
    def test_fixing_true_drops_positive_literal(self, figure1):
        fixed = condition_on(figure1, "w2", True)
        assert "w2" not in fixed.events()
        labels = {fixed.tree.label(n) for n in fixed.tree.nodes()}
        # B requires ¬w2, so it disappears; C stays unconditionally.
        assert labels == {"A", "C", "D"}

    def test_fixing_false_prunes_positive_literal(self, figure1):
        fixed = condition_on(figure1, "w2", False)
        labels = {fixed.tree.label(n) for n in fixed.tree.nodes()}
        assert labels == {"A", "B"}
        node_b = next(iter(fixed.tree.nodes_with_label("B")))
        assert fixed.condition(node_b) == Condition.of("w1")

    def test_unknown_event_rejected(self, figure1):
        with pytest.raises(InvalidConditionError):
            condition_on(figure1, "zzz", True)

    def test_conditioning_matches_world_filtering(self, figure1):
        for value in (True, False):
            fixed = condition_on(figure1, "w1", value)
            for world in ({"w2"}, set()):
                full_world = set(world) | ({"w1"} if value else set())
                assert (
                    fixed.value_in_world(world).to_nested()
                    == figure1.value_in_world(full_world).to_nested()
                )


class TestIndependence:
    def test_dependent_event_detected(self, figure1):
        assert not is_independent_of(figure1, "w1", method="exhaustive")
        assert not is_independent_of(figure1, "w2", method="exhaustive")

    def test_unused_event_is_independent(self, figure1):
        figure1.add_event("noise", 0.5)
        assert is_independent_of(figure1, "noise", method="exhaustive")
        assert is_independent_of(figure1, "noise", method="randomized", seed=0)

    def test_cancelled_event_is_independent(self):
        # Two complementary copies make the tree independent of w2.
        probtree = _probtree(
            [("B", Condition.of("w1", "w2")), ("B", Condition.of("w1", "not w2"))]
        )
        assert is_independent_of(probtree, "w2", method="exhaustive")
        assert is_independent_of(probtree, "w2", method="randomized", seed=3)
        assert not is_independent_of(probtree, "w1", method="exhaustive")

    def test_unknown_method_rejected(self, figure1):
        with pytest.raises(ValueError):
            is_independent_of(figure1, "w1", method="guess")


class TestReduction:
    def test_equivalence_via_independence_on_known_pairs(self):
        left = _probtree([("B", Condition.of("w1"))])
        right_equiv = _probtree(
            [("B", Condition.of("w1", "w2")), ("B", Condition.of("w1", "not w2"))]
        )
        right_different = _probtree([("B", Condition.of("w2"))])
        assert equivalence_via_independence(left, right_equiv)
        assert not equivalence_via_independence(left, right_different)

    def test_root_label_mismatch(self):
        left = _probtree([("B", Condition.of("w1"))], root="A")
        right = _probtree([("B", Condition.of("w1"))], root="Z")
        assert not equivalence_via_independence(left, right)

    @given(small_probtrees(max_nodes=4), small_probtrees(max_nodes=4))
    @settings(max_examples=15, deadline=None)
    def test_reduction_agrees_with_direct_equivalence(self, left, right):
        assert equivalence_via_independence(left, right) == (
            structurally_equivalent_exhaustive(left, right)
        )
