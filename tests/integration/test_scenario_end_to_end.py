"""End-to-end warehouse lifecycle: extract, query, prune, validate, persist."""

import pytest

from repro.baselines.pw_engine import PossibleWorldsEngine
from repro.core.engine import ProbXMLWarehouse
from repro.dtd.dtd import DTD, ChildConstraint
from repro.queries.evaluation import answers_isomorphic
from repro.trees.builders import tree
from repro.workloads.scenarios import HiddenWebScenario
from repro.xmlio.parse import probtree_from_xml
from repro.xmlio.serialize import probtree_to_xml


class TestWarehouseLifecycle:
    def test_full_pipeline(self):
        scenario = HiddenWebScenario(source_count=2, event_count=6, seed=13)
        warehouse = ProbXMLWarehouse(scenario.initial_document())

        # 1. Ingest the extraction stream.
        for event in scenario.events():
            warehouse.apply(event.update)
        assert warehouse.event_count() > 0

        # 2. Ask analyst queries; probabilities must be proper.
        for _description, query in scenario.queries():
            for answer in warehouse.query(query):
                assert 0.0 < answer.probability <= 1.0 + 1e-9

        # 3. Serialize and reload: the persisted warehouse answers identically.
        text = probtree_to_xml(warehouse.probtree)
        reloaded = ProbXMLWarehouse(probtree_from_xml(text))
        for _description, query in scenario.queries():
            assert answers_isomorphic(warehouse.query(query), reloaded.query(query))

        # 4. Validation against a schema for the warehouse.
        dtd = DTD(
            {
                "warehouse": [
                    ChildConstraint.any_number(f"source{i}") for i in (1, 2)
                ]
            }
        )
        assert warehouse.dtd_satisfiable(dtd)
        assert 0.0 <= warehouse.dtd_probability(dtd) <= 1.0 + 1e-9

        # 5. Prune improbable worlds and re-check consistency of the mass.
        worlds_before = warehouse.possible_worlds()
        threshold = max(p for _t, p in worlds_before) / 2
        warehouse.prune_below(threshold)
        worlds_after = warehouse.possible_worlds()
        assert worlds_after.total_probability() == pytest.approx(1.0)

    def test_engine_matches_baseline_through_the_lifecycle(self):
        scenario = HiddenWebScenario(source_count=2, event_count=5, seed=21)
        warehouse = ProbXMLWarehouse(scenario.initial_document())
        baseline = PossibleWorldsEngine(scenario.initial_document())

        for step, event in enumerate(scenario.events()):
            warehouse.apply(event.update)
            baseline.apply(event.update)
            if step % 2 == 0:
                assert warehouse.possible_worlds().isomorphic(baseline.worlds)

        best_engine = warehouse.most_probable_worlds(1)[0]
        best_baseline = baseline.most_probable(1)[0]
        assert best_engine[1] == pytest.approx(best_baseline[1])

    def test_manual_curation_workflow(self):
        warehouse = ProbXMLWarehouse("warehouse")
        warehouse.insert("/warehouse", tree("source", tree("movie", "title")), confidence=1.0)
        warehouse.insert("/warehouse/source/movie", tree("year", "1972"), confidence=0.7)
        warehouse.insert("/warehouse/source/movie", tree("year", "1973"), confidence=0.4)

        # The two year annotations are independent claims; the document may
        # contain both, one, or none.
        assert warehouse.probability("/warehouse/source/movie/year") == pytest.approx(
            1 - 0.3 * 0.6
        )

        # A curator decides years are untrustworthy and retracts them with
        # high confidence.
        warehouse.delete("//year", confidence=0.9)
        assert warehouse.probability("/warehouse/source/movie/year") == pytest.approx(
            (1 - 0.3 * 0.6) * 0.1, abs=1e-6
        )
