"""End-to-end checks of the worked examples and claims of the paper."""

import pytest

from repro.core.semantics import possible_worlds
from repro.equivalence.randomized import structurally_equivalent_randomized
from repro.equivalence.semantic import semantically_equivalent
from repro.equivalence.structural import structurally_equivalent_exhaustive
from repro.queries.evaluation import (
    answers_isomorphic,
    evaluate_on_probtree,
    evaluate_on_pwset,
)
from repro.queries.treepattern import root_has_child
from repro.trees.builders import tree
from repro.updates.probtree_updates import apply_update_to_probtree
from repro.updates.pw_updates import apply_update_to_pwset
from repro.workloads.constructions import (
    figure1_probtree,
    theorem3_deletion,
    theorem3_probtree,
)


class TestSection2:
    def test_figure1_semantics_is_figure2(self):
        worlds = possible_worlds(figure1_probtree(), normalize=True)
        expected = {
            ("A", ()): 0.06,
            ("A", (("B", ()),)): 0.24,
            ("A", (("C", (("D", ()),)),)): 0.70,
        }
        assert len(worlds) == len(expected)
        for world, probability in worlds:
            nested = world.to_nested()
            key = _freeze(nested)
            assert key in expected
            assert probability == pytest.approx(expected[key])

    def test_theorem1_on_the_running_example(self):
        probtree = figure1_probtree()
        query = root_has_child("A", "C")
        assert answers_isomorphic(
            evaluate_on_probtree(query, probtree),
            evaluate_on_pwset(query, possible_worlds(probtree)),
        )


class TestSection4:
    def test_theorem3_lower_bound_shape(self):
        """The d0 deletion forces ≥ 2^n literals on the Theorem 3 family."""
        sizes = []
        for n in (2, 3, 4, 5):
            probtree = theorem3_probtree(n)
            updated = apply_update_to_probtree(probtree, theorem3_deletion())
            sizes.append(updated.literal_count())
            assert updated.literal_count() >= 2 ** n
            # Semantics stays correct despite the blow-up.
            if n <= 3:
                lhs = possible_worlds(updated, normalize=True)
                rhs = apply_update_to_pwset(
                    possible_worlds(probtree), theorem3_deletion(), normalize=True
                )
                assert lhs.isomorphic(rhs)
        assert sizes == sorted(sizes)
        # Growth is at least geometric with ratio ~2.
        assert sizes[-1] >= 1.8 * sizes[-2]


class TestSection5:
    def test_structural_vs_semantic_equivalence_gap(self):
        # Figure-less example of Section 5: different prob-trees, same worlds.
        from repro.core.events import ProbabilityDistribution
        from repro.core.probtree import ProbTree
        from repro.formulas.literals import Condition
        from repro.trees.datatree import DataTree

        left_tree = DataTree("A")
        b_left = left_tree.add_child(left_tree.root, "B")
        left = ProbTree(
            left_tree,
            ProbabilityDistribution({"w1": 0.5, "w2": 0.4, "w3": 0.2}),
            {b_left: Condition.of("w1", "w2")},
        )
        right_tree = DataTree("A")
        b_right = right_tree.add_child(right_tree.root, "B")
        right = ProbTree(
            right_tree,
            ProbabilityDistribution({"w1": 0.5, "w2": 0.4, "w3": 0.2}),
            {b_right: Condition.of("w3")},
        )
        assert semantically_equivalent(left, right)
        assert not structurally_equivalent_exhaustive(left, right)
        assert not structurally_equivalent_randomized(left, right, seed=0)


def _freeze(nested):
    label, children = nested
    return (label, tuple(sorted(_freeze(child) for child in children)))
