"""Tests for lazy top-k possible-world enumeration."""

import pytest
from hypothesis import given, settings

from repro.core.probtree import ProbTree
from repro.core.semantics import possible_worlds
from repro.ranking.topk_worlds import (
    iter_worlds_by_probability,
    top_k_as_pwset,
    top_k_worlds,
)
from repro.trees.builders import tree
from repro.trees.isomorphism import canonical_encoding, isomorphic
from repro.workloads.constructions import wide_independent_probtree

from tests.conftest import small_probtrees


class TestOrderedEnumeration:
    def test_certain_tree_yields_one_world(self):
        probtree = ProbTree.certain(tree("A", "B"))
        worlds = list(iter_worlds_by_probability(probtree))
        assert len(worlds) == 1
        assert worlds[0][2] == pytest.approx(1.0)

    def test_figure1_order(self, figure1):
        worlds = list(iter_worlds_by_probability(figure1))
        probabilities = [probability for _w, _t, probability in worlds]
        assert probabilities == sorted(probabilities, reverse=True)
        assert sum(probabilities) == pytest.approx(1.0)
        assert probabilities[0] == pytest.approx(0.56)  # w1 ∧ w2 world

    @given(small_probtrees())
    @settings(max_examples=30, deadline=None)
    def test_enumeration_is_sorted_and_complete(self, probtree):
        worlds = list(iter_worlds_by_probability(probtree))
        probabilities = [probability for _w, _t, probability in worlds]
        assert probabilities == sorted(probabilities, reverse=True)
        assert len(worlds) == 2 ** len(probtree.used_events())
        assert sum(probabilities) == pytest.approx(1.0)

    @given(small_probtrees())
    @settings(max_examples=30, deadline=None)
    def test_values_match_direct_evaluation(self, probtree):
        for world, value, probability in iter_worlds_by_probability(probtree):
            assert isomorphic(value, probtree.value_in_world(world))
            assert probability == pytest.approx(
                probtree.distribution.world_probability(
                    world, over=probtree.used_events()
                )
            )


class TestTopK:
    def test_k_must_be_positive(self, figure1):
        with pytest.raises(ValueError):
            top_k_worlds(figure1, 0)

    def test_figure1_top1_and_top2(self, figure1):
        (best,) = top_k_worlds(figure1, 1)
        assert best[1] == pytest.approx(0.70)
        assert isomorphic(best[0], tree("A", tree("C", "D")))
        top2 = top_k_worlds(figure1, 2)
        assert [round(p, 2) for _t, p in top2] == [0.70, 0.24]

    def test_unmerged_variant_keeps_world_granularity(self, figure1):
        unmerged = top_k_worlds(figure1, 2, merge_isomorphic=False)
        assert [round(p, 2) for _t, p in unmerged] == [0.56, 0.24]

    @given(small_probtrees())
    @settings(max_examples=25, deadline=None)
    def test_matches_full_normalization(self, probtree):
        expected = possible_worlds(probtree, normalize=True).most_probable(3)
        actual = top_k_worlds(probtree, 3)
        assert len(actual) == min(3, len(expected))
        for (expected_tree, expected_p), (actual_tree, actual_p) in zip(expected, actual):
            assert actual_p == pytest.approx(expected_p)
            # Trees may differ when probabilities tie; classes must agree then.
            if abs(expected_p - actual_p) < 1e-12 and expected_p != actual_p:
                continue

    def test_lazy_enumeration_avoids_full_expansion(self):
        # With strongly skewed probabilities the best world is found after
        # exploring a single chain of prefixes; just check it is correct and
        # fast enough to run on 18 events (2^18 worlds would be expensive).
        probtree = wide_independent_probtree(18, probability=0.99)
        (best,) = top_k_worlds(probtree, 1, merge_isomorphic=False)
        assert best[1] == pytest.approx(0.99 ** 18)
        assert best[0].node_count() == 19

    def test_as_pwset(self, figure1):
        kept = top_k_as_pwset(figure1, 2)
        assert kept.total_probability() == pytest.approx(0.94)


class TestEnumerationLaziness:
    def test_values_materialized_only_for_yielded_worlds(self, monkeypatch):
        # The best-first search must not build V(T) for heap entries that are
        # never popped as complete worlds: materialization is the expensive
        # step the lazy stream exists to avoid.
        probtree = wide_independent_probtree(12, probability=0.9)
        calls = []
        original = ProbTree.value_in_world

        def counting(self, world):
            calls.append(frozenset(world))
            return original(self, world)

        monkeypatch.setattr(ProbTree, "value_in_world", counting)
        stream = iter_worlds_by_probability(probtree)
        yielded = [next(stream) for _ in range(3)]
        assert len(calls) == 3
        assert calls == [world for world, _tree, _p in yielded]

    def test_heap_entries_share_immutable_worlds(self):
        # The frozen valuations flowing out of the stream stay usable as set
        # keys and compare equal across identical prefixes (the defensive
        # re-freezing at push time was dropped; worlds are frozen already).
        probtree = wide_independent_probtree(6, probability=0.5)
        worlds = [world for world, _tree, _p in iter_worlds_by_probability(probtree)]
        assert all(isinstance(world, frozenset) for world in worlds)
        assert len(set(worlds)) == 2 ** 6
