"""Tests for ranked query answers."""

import pytest

from repro.core.semantics import possible_worlds
from repro.queries.evaluation import QueryAnswer, evaluate_on_probtree
from repro.queries.treepattern import TreePattern
from repro.ranking.topk_answers import rank_answers, top_k_answers
from repro.trees.builders import tree


@pytest.fixture
def star_query():
    pattern = TreePattern("A")
    pattern.add_child(pattern.root, "*")
    return pattern


class TestRankAnswers:
    def test_orders_by_probability(self):
        answers = [
            QueryAnswer(tree("A", "B"), 0.2),
            QueryAnswer(tree("A", "C"), 0.9),
            QueryAnswer(tree("A", "D"), 0.5),
        ]
        ranked = rank_answers(answers)
        assert [a.probability for a in ranked] == [0.9, 0.5, 0.2]

    def test_aggregation_merges_isomorphic_answers(self):
        answers = [
            QueryAnswer(tree("A", "B"), 0.2),
            QueryAnswer(tree("A", "B"), 0.3),
            QueryAnswer(tree("A", "C"), 0.4),
        ]
        ranked = rank_answers(answers)
        assert ranked[0].probability == pytest.approx(0.5)
        unaggregated = rank_answers(answers, aggregate_isomorphic=False)
        assert unaggregated[0].probability == pytest.approx(0.4)

    def test_k_truncation(self):
        answers = [QueryAnswer(tree("A", str(i)), 0.1 * i) for i in range(1, 6)]
        assert len(rank_answers(answers, k=2)) == 2


class TestTopKAnswers:
    def test_on_probtree(self, figure1, star_query):
        ranked = top_k_answers(star_query, figure1, k=1)
        assert len(ranked) == 1
        assert ranked[0].probability == pytest.approx(0.7)

    def test_on_pwset_matches_probtree(self, figure1, star_query):
        from_probtree = top_k_answers(star_query, figure1, k=2)
        from_pwset = top_k_answers(star_query, possible_worlds(figure1), k=2)
        assert [round(a.probability, 6) for a in from_probtree] == [
            round(a.probability, 6) for a in from_pwset
        ]

    def test_minimum_probability_filter(self, figure1, star_query):
        kept = top_k_answers(star_query, figure1, k=5, minimum_probability=0.5)
        assert len(kept) == 1
        assert kept[0].probability == pytest.approx(0.7)

    def test_invalid_k(self, figure1, star_query):
        with pytest.raises(ValueError):
            top_k_answers(star_query, figure1, k=0)

    def test_consistent_with_plain_evaluation(self, figure1, star_query):
        everything = top_k_answers(star_query, figure1, k=10)
        plain = evaluate_on_probtree(star_query, figure1)
        assert sum(a.probability for a in everything) == pytest.approx(
            sum(a.probability for a in plain)
        )
