"""Tests for DTD satisfiability / validity / restriction over prob-trees."""

import pytest
from hypothesis import given, settings

from repro.core.semantics import possible_worlds
from repro.dtd.dtd import DTD, ChildConstraint
from repro.dtd.probtree_dtd import (
    dtd_restriction_probtree,
    dtd_restriction_pwset,
    dtd_satisfaction_probability,
    dtd_satisfiable,
    dtd_valid,
    satisfying_world,
    violating_world,
)
from repro.dtd.validation import validates

from tests.conftest import small_probtrees


@pytest.fixture
def no_b_children():
    return DTD({"A": [ChildConstraint.forbidden("B"), ChildConstraint.any_number("C")]})


@pytest.fixture
def at_least_one_b():
    return DTD(
        {"A": [ChildConstraint.at_least_one("B"), ChildConstraint.any_number("C")]}
    )


class TestFigure1:
    def test_satisfiability(self, figure1, no_b_children, at_least_one_b):
        assert dtd_satisfiable(figure1, no_b_children)
        assert dtd_satisfiable(figure1, at_least_one_b)
        impossible = DTD({"A": [ChildConstraint.exactly("B", 2)]})
        assert not dtd_satisfiable(figure1, impossible)

    def test_validity(self, figure1, no_b_children, at_least_one_b):
        assert not dtd_valid(figure1, no_b_children)
        assert not dtd_valid(figure1, at_least_one_b)
        anything = DTD(
            {
                "A": [
                    ChildConstraint.any_number("B"),
                    ChildConstraint.any_number("C"),
                ]
            }
        )
        assert dtd_valid(figure1, anything)

    def test_witness_worlds(self, figure1, no_b_children):
        witness = satisfying_world(figure1, no_b_children)
        assert witness is not None
        assert validates(no_b_children, figure1.value_in_world(witness))
        counterexample = violating_world(figure1, no_b_children)
        assert counterexample is not None
        assert not validates(no_b_children, figure1.value_in_world(counterexample))

    def test_satisfaction_probability(self, figure1, no_b_children, at_least_one_b):
        # no B child ⇔ not (w1 ∧ ¬w2) ⇔ probability 1 − 0.24
        assert dtd_satisfaction_probability(figure1, no_b_children) == pytest.approx(0.76)
        assert dtd_satisfaction_probability(figure1, at_least_one_b) == pytest.approx(0.24)

    def test_restriction_pwset(self, figure1, no_b_children):
        restricted = dtd_restriction_pwset(figure1, no_b_children)
        assert restricted.total_probability() == pytest.approx(0.76)
        assert all(validates(no_b_children, world) for world in restricted.trees())

    def test_restriction_probtree(self, figure1, no_b_children):
        restricted = dtd_restriction_probtree(figure1, no_b_children)
        worlds = possible_worlds(restricted, normalize=True)
        # ∼sub: valid worlds keep their probability, the root-only world
        # absorbs the remaining 0.24 (on top of its own 0.06).
        assert worlds.total_probability() == pytest.approx(1.0)
        target = dtd_restriction_pwset(figure1, no_b_children).completed("A")
        assert worlds.isomorphic(target)


class TestRelationsBetweenProblems:
    @given(small_probtrees(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_valid_implies_satisfiable(self, probtree):
        dtd = DTD({probtree.tree.root_label: [ChildConstraint.any_number(label) for label in "ABCDE"]})
        if dtd_valid(probtree, dtd):
            assert dtd_satisfiable(probtree, dtd)

    @given(small_probtrees(max_nodes=5))
    @settings(max_examples=20, deadline=None)
    def test_probability_bounds_match_decisions(self, probtree):
        dtd = DTD({probtree.tree.root_label: [ChildConstraint.at_least_one("B")]})
        probability = dtd_satisfaction_probability(probtree, dtd)
        assert (probability > 0.0) == dtd_satisfiable(probtree, dtd)
        assert (abs(probability - 1.0) < 1e-9) == dtd_valid(probtree, dtd)


class TestCompiledValidityCache:
    """The context memoizes compiled validity formulas; mutations must bust it."""

    def _catalog(self):
        from repro.core.events import ProbabilityDistribution
        from repro.core.probtree import ProbTree
        from repro.formulas.literals import Condition
        from repro.trees.builders import tree

        doc = tree("A", tree("B"), tree("C"))
        probtree = ProbTree(doc, ProbabilityDistribution({"w": 0.4, "v": 0.7}))
        children = doc.children(doc.root)
        probtree.set_condition(children[0], Condition.of("w"))
        probtree.set_condition(children[1], Condition.of("v"))
        return probtree

    def test_warm_check_skips_recompilation(self):
        from repro.core.context import ExecutionContext

        context = ExecutionContext()
        probtree = self._catalog()
        dtd = DTD({"A": [ChildConstraint.optional("B"), ChildConstraint.any_number("C")]})
        cold = dtd_satisfaction_probability(probtree, dtd, context=context)
        misses = context.stats.intern_misses
        assert dtd_satisfaction_probability(probtree, dtd, context=context) == cold
        assert context.stats.intern_misses == misses  # no new nodes: cached id

    def test_structural_mutation_recompiles(self):
        from repro.core.context import ExecutionContext

        context = ExecutionContext()
        probtree = self._catalog()
        dtd = DTD({"A": [ChildConstraint.optional("B"), ChildConstraint.any_number("C")]})
        before = dtd_satisfaction_probability(probtree, dtd, context=context)
        # A second unconditioned B violates "at most one B" in every world.
        probtree.tree.add_child(probtree.tree.root, "B")
        after = dtd_satisfaction_probability(probtree, dtd, context=context)
        assert after == pytest.approx(
            dtd_satisfaction_probability(probtree, dtd, engine="enumerate")
        )
        assert after != pytest.approx(before)
        # Valid iff the conditioned B stays out: P(not w) = 0.6.
        assert after == pytest.approx(0.6)

    def test_condition_mutation_recompiles(self):
        from repro.core.context import ExecutionContext
        from repro.formulas.literals import Condition

        context = ExecutionContext()
        probtree = self._catalog()
        dtd = DTD({"A": [ChildConstraint.at_least_one("B"), ChildConstraint.any_number("C")]})
        before = dtd_satisfaction_probability(probtree, dtd, context=context)
        assert before == pytest.approx(0.4)  # P(w): the B child must survive
        b_child = probtree.tree.children(probtree.tree.root)[0]
        probtree.set_condition(b_child, Condition.of("v"))
        after = dtd_satisfaction_probability(probtree, dtd, context=context)
        assert after == pytest.approx(0.7)
        assert after == pytest.approx(
            dtd_satisfaction_probability(probtree, dtd, engine="enumerate")
        )

    def test_dtd_mutation_changes_fingerprint(self):
        from repro.core.context import ExecutionContext

        context = ExecutionContext()
        probtree = self._catalog()
        dtd = DTD({"A": [ChildConstraint.any_number("B"), ChildConstraint.any_number("C")]})
        assert dtd_satisfaction_probability(probtree, dtd, context=context) == (
            pytest.approx(1.0)
        )
        dtd.add_constraint("A", ChildConstraint.at_least_one("D"))
        assert dtd_satisfaction_probability(probtree, dtd, context=context) == (
            pytest.approx(0.0)
        )

    def test_decisions_share_the_pool_sat_cache(self):
        from repro.core.context import ExecutionContext

        context = ExecutionContext()
        probtree = self._catalog()
        dtd = DTD({"A": [ChildConstraint.at_least_one("B"), ChildConstraint.any_number("C")]})
        assert dtd_satisfiable(probtree, dtd, context=context)
        assert not dtd_valid(probtree, dtd, context=context)
        # Warm repeats of both decisions allocate nothing new.
        misses = context.stats.intern_misses
        assert dtd_satisfiable(probtree, dtd, context=context)
        assert not dtd_valid(probtree, dtd, context=context)
        assert context.stats.intern_misses == misses
