"""Tests for the Theorem 5 SAT reductions and the restriction blow-up family."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtd.probtree_dtd import (
    dtd_restriction_probtree,
    dtd_satisfiable,
    dtd_valid,
)
from repro.dtd.reductions import (
    restriction_blowup_instance,
    sat_to_dtd_satisfiability,
    sat_to_dtd_validity,
)
from repro.formulas.cnf import CNF, random_3cnf
from repro.formulas.sat import is_satisfiable


class TestSatisfiabilityReduction:
    def test_satisfiable_formula(self):
        theta = CNF.of(["x1", "x2"], ["not x1"])
        probtree, dtd = sat_to_dtd_satisfiability(theta)
        assert is_satisfiable(theta)
        assert dtd_satisfiable(probtree, dtd)

    def test_unsatisfiable_formula(self):
        theta = CNF.of(["x1"], ["not x1"])
        probtree, dtd = sat_to_dtd_satisfiability(theta)
        assert not is_satisfiable(theta)
        assert not dtd_satisfiable(probtree, dtd)

    def test_instance_size_is_linear(self):
        theta = random_3cnf(8, 20, seed=0)
        probtree, dtd = sat_to_dtd_satisfiability(theta)
        assert probtree.tree.node_count() == len(theta) + 1
        assert probtree.literal_count() == sum(len(clause) for clause in theta)
        assert dtd.size() == 1  # constant-size DTD, as in the paper

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_reduction_is_correct_on_random_3cnf(self, seed):
        theta = random_3cnf(4, 6, seed=seed)
        probtree, dtd = sat_to_dtd_satisfiability(theta)
        assert dtd_satisfiable(probtree, dtd) == is_satisfiable(theta)


class TestValidityReduction:
    def test_unsatisfiable_formula_gives_valid_instance(self):
        theta = CNF.of(["x1"], ["not x1"])
        probtree, dtd = sat_to_dtd_validity(theta)
        assert dtd_valid(probtree, dtd)

    def test_satisfiable_formula_gives_invalid_instance(self):
        theta = CNF.of(["x1", "x2"])
        probtree, dtd = sat_to_dtd_validity(theta)
        assert not dtd_valid(probtree, dtd)

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_reduction_is_correct_on_random_3cnf(self, seed):
        theta = random_3cnf(4, 6, seed=seed)
        probtree, dtd = sat_to_dtd_validity(theta)
        assert dtd_valid(probtree, dtd) == (not is_satisfiable(theta))


class TestRestrictionBlowup:
    def test_instance_shape(self):
        probtree, dtd = restriction_blowup_instance(3)
        assert probtree.tree.node_count() == 1 + 2 * 3 * 2  # root + 2n C/D pairs
        assert len(probtree.events()) == 6
        assert dtd.bounds("A", "C") == (0, 3)

    def test_restriction_grows_quickly(self):
        small_tree, small_dtd = restriction_blowup_instance(1)
        large_tree, large_dtd = restriction_blowup_instance(3)
        small_restricted = dtd_restriction_probtree(small_tree, small_dtd)
        large_restricted = dtd_restriction_probtree(large_tree, large_dtd)
        small_ratio = small_restricted.size() / small_tree.size()
        large_ratio = large_restricted.size() / large_tree.size()
        assert large_ratio > small_ratio > 1.0
