"""Tests for the DTD model (Definition 12)."""

import pytest

from repro.dtd.dtd import DTD, ChildConstraint
from repro.utils.errors import DTDError


class TestChildConstraint:
    def test_bounds_validation(self):
        with pytest.raises(DTDError):
            ChildConstraint("B", -1, 2)
        with pytest.raises(DTDError):
            ChildConstraint("B", 3, 2)

    def test_allows(self):
        constraint = ChildConstraint("B", 1, 3)
        assert not constraint.allows(0)
        assert constraint.allows(1)
        assert constraint.allows(3)
        assert not constraint.allows(4)

    def test_unbounded_maximum(self):
        constraint = ChildConstraint.at_least_one("B")
        assert constraint.allows(1_000_000)
        assert not constraint.allows(0)

    def test_operator_constructors(self):
        assert ChildConstraint.optional("B").allows(0)
        assert ChildConstraint.optional("B").allows(1)
        assert not ChildConstraint.optional("B").allows(2)
        assert ChildConstraint.any_number("B").allows(0)
        assert ChildConstraint.exactly("B", 2).allows(2)
        assert not ChildConstraint.exactly("B", 2).allows(1)
        assert ChildConstraint.forbidden("B").allows(0)
        assert not ChildConstraint.forbidden("B").allows(1)


class TestDTD:
    def test_domain_and_bounds(self):
        dtd = DTD(
            {
                "A": [ChildConstraint("B", 1, 2), ChildConstraint.any_number("C")],
                "B": [ChildConstraint.optional("D")],
            }
        )
        assert dtd.domain() == {"A", "B"}
        assert dtd.constrains("A")
        assert not dtd.constrains("Z")
        assert dtd.bounds("A", "B") == (1, 2)
        assert dtd.bounds("A", "C") == (0, None)
        # Unlisted child labels default to the forbidden (0, 0) bounds.
        assert dtd.bounds("A", "Z") == (0, 0)
        assert dtd.size() == 3

    def test_duplicate_identical_constraint_is_noop(self):
        dtd = DTD()
        dtd.add_constraint("A", ChildConstraint("B", 0, 1))
        dtd.add_constraint("A", ChildConstraint("B", 0, 1))
        assert dtd.size() == 1

    def test_conflicting_constraint_rejected(self):
        # Definition 12: at most one triple per (parent, child) label pair.
        dtd = DTD()
        dtd.add_constraint("A", ChildConstraint("B", 0, 1))
        with pytest.raises(DTDError):
            dtd.add_constraint("A", ChildConstraint("B", 1, 2))
