"""Tests for validating data trees against DTDs (Definition 13)."""

from repro.dtd.dtd import DTD, ChildConstraint
from repro.dtd.validation import validates, violations
from repro.trees.builders import tree


def _library_dtd():
    return DTD(
        {
            "library": [ChildConstraint.at_least_one("book")],
            "book": [
                ChildConstraint.exactly("title", 1),
                ChildConstraint.any_number("author"),
            ],
        }
    )


class TestValidates:
    def test_valid_document(self):
        document = tree(
            "library",
            tree("book", "title", "author", "author"),
            tree("book", "title"),
        )
        assert validates(_library_dtd(), document)
        assert violations(_library_dtd(), document) == []

    def test_missing_required_child(self):
        document = tree("library", tree("book", "author"))
        assert not validates(_library_dtd(), document)
        found = violations(_library_dtd(), document)
        assert any(v.child_label == "title" and v.count == 0 for v in found)

    def test_too_many_children(self):
        document = tree("library", tree("book", "title", "title"))
        assert not validates(_library_dtd(), document)

    def test_unlisted_children_are_forbidden(self):
        document = tree("library", tree("book", "title", "index"))
        assert not validates(_library_dtd(), document)
        found = violations(_library_dtd(), document)
        assert any(v.child_label == "index" and v.maximum == 0 for v in found)

    def test_labels_outside_domain_are_unconstrained(self):
        document = tree(
            "library",
            tree("book", "title", tree("author", "bio", "bio", "homepage")),
        )
        assert validates(_library_dtd(), document)

    def test_empty_root_violates_at_least_one(self):
        assert not validates(_library_dtd(), tree("library"))

    def test_root_outside_domain(self):
        assert validates(_library_dtd(), tree("archive", "anything"))

    def test_violation_rendering(self):
        document = tree("library", tree("book", "author"))
        found = violations(_library_dtd(), document)
        assert "title" in str(found[0])

    def test_validates_agrees_with_violations(self):
        documents = [
            tree("library"),
            tree("library", tree("book", "title")),
            tree("library", tree("book")),
            tree("library", "junk"),
        ]
        dtd = _library_dtd()
        for document in documents:
            assert validates(dtd, document) == (violations(dtd, document) == [])
